"""Persistent worker pool: equivalence, lifecycle and failure injection.

The pool's contract has three parts, and each gets direct coverage:

* **equivalence** — pooled collection is bit-identical to the lockstep
  batched collector (and the fuzz harness in
  ``test_differential_equivalence.py`` extends this across ~50 random
  configs);
* **lifecycle** — pools are reusable across epochs with weight deltas
  broadcast only when weights changed, survive zero-episode epochs,
  close idempotently, and refuse work after close;
* **failure injection** — a worker killed mid-epoch (SIGKILL, no chance
  to flush results) surfaces as a prompt :class:`TrainingError` naming
  the dead worker, never a hang and never a partial merge, and the pool
  refuses further work instead of silently misbehaving.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.drl.a2c import A2CConfig, A2CTrainer
from repro.drl.parallel import ParallelRolloutCollector
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector, derive_episode_streams
from repro.drl.worker_pool import PersistentWorkerPool
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError, TrainingError


@pytest.fixture
def reward_config():
    return RewardConfig(mode="per_step_penalty")


def _assert_identical(reference, other):
    assert reference.trace_name == other.trace_name
    assert reference.makespan == other.makespan
    assert reference.truncated == other.truncated
    np.testing.assert_array_equal(reference.observations(), other.observations())
    np.testing.assert_array_equal(reference.actions(), other.actions())
    np.testing.assert_array_equal(reference.rewards(), other.rewards())
    np.testing.assert_array_equal(
        reference.value_estimates(), other.value_estimates()
    )
    np.testing.assert_array_equal(
        reference.hidden_states_after(), other.hidden_states_after()
    )


class TestPoolEquivalenceAndReuse:
    def test_pool_reuse_across_epochs_is_bit_identical(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        """One pool, several epochs with weight updates in between; every
        epoch matches a fresh lockstep-batched collection."""
        batched = BatchedRolloutCollector(
            VectorStorageAllocationEnv(system_config, reward_config)
        )
        with PersistentWorkerPool(
            system_config, reward_config, num_workers=2
        ) as pool:
            for epoch in range(3):
                base_seed = 900 + epoch
                episode_rngs, action_rngs = derive_episode_streams(
                    base_seed, len(real_traces)
                )
                reference = batched.collect_batch(
                    tiny_policy, real_traces, epsilon=0.1, greedy=False,
                    episode_rngs=episode_rngs, action_rngs=action_rngs,
                )
                pooled = pool.collect(
                    tiny_policy, real_traces, base_seed=base_seed,
                    epsilon=0.1, greedy=False,
                )
                assert len(pooled) == len(reference)
                for ref, got in zip(reference, pooled):
                    _assert_identical(ref, got)
                # Perturb the weights like a gradient step would.
                for param in tiny_policy.parameters():
                    param.data += 1e-3

    def test_weight_deltas_only_sent_when_changed(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        with PersistentWorkerPool(
            system_config, reward_config, num_workers=2
        ) as pool:
            pool.collect(tiny_policy, real_traces[:2], base_seed=0, greedy=True)
            version_after_first = pool.weights_version
            # Unchanged weights: no new broadcast.
            pool.collect(tiny_policy, real_traces[:2], base_seed=1, greedy=True)
            assert pool.weights_version == version_after_first
            tiny_policy.gru.b_r.data += 0.5
            pool.collect(tiny_policy, real_traces[:2], base_seed=2, greedy=True)
            assert pool.weights_version == version_after_first + 1

    def test_zero_episode_epoch_is_a_noop(
        self, system_config, reward_config, tiny_policy, real_traces
    ):
        with PersistentWorkerPool(
            system_config, reward_config, num_workers=2
        ) as pool:
            assert pool.collect(tiny_policy, [], base_seed=5) == []
            # The pool stays healthy for real epochs afterwards.
            result = pool.collect(
                tiny_policy, real_traces[:2], base_seed=5, greedy=True
            )
            assert len(result) == 2

    def test_architecture_change_rejected(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        with PersistentWorkerPool(
            system_config, reward_config, num_workers=2
        ) as pool:
            pool.collect(tiny_policy, real_traces[:2], base_seed=0, greedy=True)
            other = RecurrentPolicyValueNet(PolicyConfig(hidden_size=8), rng=0)
            with pytest.raises(TrainingError, match="architecture"):
                pool.collect(other, real_traces[:2], base_seed=1, greedy=True)


class TestPoolLifecycle:
    def test_double_close_is_idempotent(self, system_config, reward_config):
        pool = PersistentWorkerPool(system_config, reward_config, num_workers=2)
        pool.close()
        pool.close()  # second close must be a clean no-op
        assert pool.closed

    def test_close_after_use_then_collect_raises(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        pool = PersistentWorkerPool(system_config, reward_config, num_workers=2)
        pool.collect(tiny_policy, real_traces[:2], base_seed=0, greedy=True)
        pool.close()
        pool.close()
        with pytest.raises(TrainingError, match="closed"):
            pool.collect(tiny_policy, real_traces[:2], base_seed=1, greedy=True)

    def test_invalid_worker_count_rejected(self, system_config):
        with pytest.raises(TrainingError):
            PersistentWorkerPool(system_config, num_workers=0)

    def test_collector_context_manager_closes_pool(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        with ParallelRolloutCollector(
            system_config, reward_config, num_workers=2, persistent=True
        ) as collector:
            collector.collect(tiny_policy, real_traces[:2], base_seed=3, greedy=True)
            assert collector._pool is not None
        assert collector._pool is None


class TestFailureInjection:
    def test_worker_killed_between_epochs_raises_clearly(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        pool = PersistentWorkerPool(system_config, reward_config, num_workers=2)
        try:
            pool.collect(tiny_policy, real_traces, base_seed=0, greedy=True)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(TrainingError, match=r"worker 0"):
                pool.collect(tiny_policy, real_traces, base_seed=1, greedy=True)
            # The pool is broken, not wedged: further use raises cleanly.
            with pytest.raises(TrainingError, match="broken"):
                pool.collect(tiny_policy, real_traces, base_seed=2, greedy=True)
        finally:
            pool.close()

    def test_worker_killed_mid_epoch_raises_without_hang(
        self, system_config, reward_config, standard_suite, tiny_policy
    ):
        """SIGKILL a worker while its shard is in flight; the parent must
        raise within the liveness-poll interval instead of waiting on a
        result that will never arrive."""
        # Long traces keep the shard busy well past the kill.
        traces = [next(iter(standard_suite.values()))] * 4
        pool = PersistentWorkerPool(system_config, reward_config, num_workers=2)
        try:
            # Warm the pool so worker pids exist and weights are resident.
            pool.collect(tiny_policy, traces[:2], base_seed=0, greedy=True)
            victim = pool.worker_pids()[0]
            outcome = {}

            def kill_soon():
                time.sleep(0.05)
                os.kill(victim, signal.SIGKILL)

            killer = threading.Thread(target=kill_soon)
            killer.start()
            start = time.perf_counter()
            try:
                with pytest.raises(TrainingError, match="worker"):
                    # Many episodes so the shard outlives the kill delay.
                    pool.collect(
                        tiny_policy, traces * 60, base_seed=1, greedy=False,
                        epsilon=0.2,
                    )
            finally:
                killer.join()
            outcome["elapsed"] = time.perf_counter() - start
            # "No hang": detection is bounded by kill delay + poll beats,
            # far below any plausible full-collection time wouldn't be —
            # use a generous ceiling to stay unflaky.
            assert outcome["elapsed"] < 30.0
        finally:
            pool.close()

    def test_worker_exception_aborts_epoch_with_no_partial_merge(
        self, system_config, reward_config, real_traces
    ):
        """A policy whose observation width cannot run in the workers
        makes every shard fail; the error names a shard and the pool
        refuses further work (no partial trajectory list escapes)."""
        bad_policy = RecurrentPolicyValueNet(
            PolicyConfig(observation_dim=5, hidden_size=8), rng=0
        )
        pool = PersistentWorkerPool(system_config, reward_config, num_workers=2)
        try:
            with pytest.raises(TrainingError, match=r"shard \d"):
                pool.collect(bad_policy, real_traces, base_seed=0, greedy=True)
        finally:
            pool.close()


class TestTrainerIntegration:
    def test_persistent_pool_training_bit_identical(
        self, system_config, reward_config, real_traces
    ):
        """A2C with persistent_pool=True reproduces the fork-per-epoch
        parallel run (and hence the in-process batched run) bit for bit."""
        histories = []
        policies = []
        for persistent in (False, True):
            env = StorageAllocationEnv(system_config, reward_config=reward_config)
            policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=3)
            with A2CTrainer(
                policy, env,
                A2CConfig(
                    episodes_per_epoch=3, n_step=4, rollout_workers=2,
                    persistent_pool=persistent,
                ),
                rng=0,
            ) as trainer:
                histories.append(trainer.train(real_traces[:2], epochs=2))
            policies.append(policy)
        reference, pooled = policies
        for name, value in reference.state_dict().items():
            np.testing.assert_array_equal(
                value, pooled.state_dict()[name], err_msg=name
            )
        for ref_record, pool_record in zip(
            histories[0].records, histories[1].records
        ):
            assert ref_record.makespan == pool_record.makespan
            assert ref_record.total_reward == pool_record.total_reward
            assert ref_record.policy_loss == pool_record.policy_loss

    def test_persistent_pool_requires_workers(self):
        with pytest.raises(ConfigurationError, match="persistent_pool"):
            A2CConfig(persistent_pool=True)
