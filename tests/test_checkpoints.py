"""Checkpoint roundtrip: a reloaded policy is bit-identical and resumable."""

import numpy as np
import pytest

from repro.drl.a2c import A2CConfig, A2CTrainer
from repro.drl.checkpoints import load_policy, save_policy
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import SerializationError


@pytest.fixture
def checkpoint_path(tmp_path):
    return tmp_path / "policy.npz"


@pytest.fixture
def trained_ish_policy():
    """A policy with non-initial weights (perturbed, not all-zero biases)."""
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
    rng = np.random.default_rng(21)
    for param in policy.parameters():
        param.data += 0.01 * rng.standard_normal(param.data.shape)
    return policy


class TestCheckpointRoundtrip:
    def test_state_dict_roundtrips_exactly(self, checkpoint_path, trained_ish_policy):
        save_policy(checkpoint_path, trained_ish_policy)
        reloaded = load_policy(checkpoint_path)
        assert reloaded.config == trained_ish_policy.config
        original_state = trained_ish_policy.state_dict()
        reloaded_state = reloaded.state_dict()
        assert set(original_state) == set(reloaded_state)
        for name, value in original_state.items():
            np.testing.assert_array_equal(value, reloaded_state[name], err_msg=name)

    def test_act_bit_identical_after_reload(self, checkpoint_path, trained_ish_policy):
        save_policy(checkpoint_path, trained_ish_policy)
        reloaded = load_policy(checkpoint_path)
        rng = np.random.default_rng(3)
        observation = rng.random(trained_ish_policy.config.observation_dim)
        hidden = trained_ish_policy.initial_state().numpy()
        original = trained_ish_policy.act(
            observation, hidden, rng=np.random.default_rng(9), greedy=False, epsilon=0.1
        )
        restored = reloaded.act(
            observation, hidden, rng=np.random.default_rng(9), greedy=False, epsilon=0.1
        )
        assert original.action == restored.action
        assert original.value == restored.value
        np.testing.assert_array_equal(original.log_probs, restored.log_probs)
        np.testing.assert_array_equal(original.probabilities, restored.probabilities)
        np.testing.assert_array_equal(original.hidden_state, restored.hidden_state)

    def test_act_batch_bit_identical_after_reload(
        self, checkpoint_path, trained_ish_policy
    ):
        save_policy(checkpoint_path, trained_ish_policy)
        reloaded = load_policy(checkpoint_path)
        rng = np.random.default_rng(4)
        batch = 5
        observations = rng.random((batch, trained_ish_policy.config.observation_dim))
        hiddens = rng.random((batch, trained_ish_policy.config.hidden_size)) * 0.1
        original = trained_ish_policy.act_batch(
            observations, hiddens,
            rngs=[np.random.default_rng(i) for i in range(batch)], greedy=False,
        )
        restored = reloaded.act_batch(
            observations, hiddens,
            rngs=[np.random.default_rng(i) for i in range(batch)], greedy=False,
        )
        np.testing.assert_array_equal(original.actions, restored.actions)
        np.testing.assert_array_equal(original.log_probs, restored.log_probs)
        np.testing.assert_array_equal(original.values, restored.values)
        np.testing.assert_array_equal(original.hidden_states, restored.hidden_states)

    def test_reloaded_policy_resumes_a2c_training(
        self, checkpoint_path, system_config, real_traces
    ):
        """Training continues from a checkpoint exactly as from the live policy."""
        env_factory = lambda: StorageAllocationEnv(
            system_config, reward_config=RewardConfig(mode="per_step_penalty")
        )
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=7)
        A2CTrainer(policy, env_factory(), A2CConfig(), rng=0).train(
            real_traces[:2], epochs=1
        )
        save_policy(checkpoint_path, policy)
        reloaded = load_policy(checkpoint_path)

        resumed_live = A2CTrainer(policy, env_factory(), A2CConfig(), rng=1)
        resumed_ckpt = A2CTrainer(reloaded, env_factory(), A2CConfig(), rng=1)
        history_live = resumed_live.train(real_traces[:2], epochs=1)
        history_ckpt = resumed_ckpt.train(real_traces[:2], epochs=1)

        assert len(history_ckpt) == 1
        assert history_ckpt.records[0].makespan == history_live.records[0].makespan
        assert history_ckpt.records[0].policy_loss == history_live.records[0].policy_loss
        for name, value in policy.state_dict().items():
            np.testing.assert_array_equal(
                value, reloaded.state_dict()[name], err_msg=name
            )

    def test_missing_config_rejected(self, tmp_path):
        from repro.utils.serialization import save_npz

        bogus = tmp_path / "not_a_policy.npz"
        save_npz(bogus, {"weights": np.zeros(3)})
        with pytest.raises(SerializationError):
            load_policy(bogus)
