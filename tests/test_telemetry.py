"""Tests for the unified telemetry subsystem (metrics registry + tracer).

Covers the registry semantics (get-or-create instruments, labels,
snapshot/merge/pickle, Prometheus text), the bounded span ring, the
process-default switchboard (``configure``), the ``LatencyHistogram``
promotion shim, and the serving integration: instruments moving under
broker traffic and the ``metrics`` socket op of a live netserver —
including the flush-loop health fields that used to be drop-only.
"""

from __future__ import annotations

import asyncio
import json
import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.drl.rollout import BatchedRolloutCollector
from repro.drl.worker_pool import PersistentWorkerPool
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ServingError
from repro.telemetry import (
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
)


@pytest.fixture
def fresh_defaults():
    """Swap in fresh process defaults; restore enabled defaults after."""
    telemetry.configure(enabled=True)
    try:
        yield
    finally:
        telemetry.configure(enabled=True)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("requests_total", help="Requests")
        assert registry.counter("requests_total") is counter
        counter.inc()
        counter.inc(4)
        assert registry.snapshot().value("requests_total") == 5

    def test_labeled_series_are_distinct(self):
        registry = MetricsRegistry(enabled=True)
        ok = registry.counter("replies_total", code="OK")
        bad = registry.counter("replies_total", code="BAD_REQUEST")
        assert ok is not bad
        ok.inc(2)
        bad.inc()
        snapshot = registry.snapshot()
        assert snapshot.value("replies_total", code="OK") == 2
        assert snapshot.value("replies_total", code="BAD_REQUEST") == 1
        # Label order does not matter for lookup.
        multi = registry.counter("multi_total", b="2", a="1")
        assert registry.counter("multi_total", a="1", b="2") is multi

    def test_gauge_aggregations(self):
        registry = MetricsRegistry(enabled=True)
        last = registry.gauge("depth")
        last.set(3)
        last.set(1)
        assert registry.snapshot().value("depth") == 1.0
        peak = registry.gauge("depth_peak", aggregation="max")
        peak.set(5)
        peak.set(2)  # max-gauge ignores lower values
        assert registry.snapshot().value("depth_peak") == 5.0
        total = registry.gauge("load", aggregation="sum")
        total.inc(2.5)
        total.inc(1.5)
        assert registry.snapshot().value("load") == 4.0

    def test_histogram_records_and_custom_bucketing(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("batch_size", num_buckets=8, base=1.0, factor=2.0)
        assert registry.histogram(
            "batch_size", num_buckets=8, base=1.0, factor=2.0
        ) is hist
        for size in (1, 2, 4, 64):
            hist.observe(size)
        assert hist.total == 4
        with pytest.raises(ValueError):
            registry.histogram("batch_size")  # default bucketing mismatch

    def test_invalid_names_and_kind_clashes(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.counter("bad name")
        registry.counter("taken_total")
        with pytest.raises(ValueError):
            registry.gauge("taken_total")

    def test_disabled_registry_hands_out_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        a = registry.counter("x_total")
        b = registry.counter("y_total")
        assert a is b  # shared singleton
        a.inc()
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.5)
        assert registry.snapshot().names() == []
        assert registry.to_prometheus_text() == ""


class TestSnapshotMergeAndExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("decisions_total", help="Decisions", backend="fsm").inc(7)
        registry.gauge("depth_peak", aggregation="max").set(4)
        registry.histogram("latency_seconds").record(0.001)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        first = self._populated().snapshot()
        second = self._populated().snapshot()
        first.merge(second)
        assert first.value("decisions_total", backend="fsm") == 14
        assert first.value("latency_seconds")["total"] == 2
        assert first.value("depth_peak") == 4.0

    def test_merge_into_registry(self):
        registry = self._populated()
        registry.merge_snapshot(self._populated().snapshot())
        snapshot = registry.snapshot()
        assert snapshot.value("decisions_total", backend="fsm") == 14
        assert snapshot.value("latency_seconds")["total"] == 2

    def test_snapshot_pickles(self):
        snapshot = self._populated().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.value("decisions_total", backend="fsm") == 7
        assert clone.as_dict() == snapshot.as_dict()

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus_text()
        assert "# HELP decisions_total Decisions" in text
        assert "# TYPE decisions_total counter" in text
        assert 'decisions_total{backend="fsm"} 7' in text
        assert "# TYPE depth_peak gauge" in text
        # Histograms render as Prometheus summaries, not 64 buckets.
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.99"}' in text
        assert "latency_seconds_count 1" in text
        assert "latency_seconds_max" in text
        assert "_bucket" not in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("odd_total", kind='quo"te\\path').inc()
        text = registry.to_prometheus_text()
        assert 'kind="quo\\"te\\\\path"' in text

    def test_drain_snapshot_keeps_instruments_attached(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("work_total")
        hist = registry.histogram("lat_seconds")
        total = registry.gauge("load", aggregation="sum")
        counter.inc(3)
        hist.record(0.01)
        total.inc(2.0)
        first = registry.drain_snapshot()
        assert first.value("work_total") == 3
        # The SAME instrument objects keep recording post-drain...
        counter.inc()
        hist.record(0.02)
        second = registry.drain_snapshot()
        # ...and the second drain carries only the delta.
        assert second.value("work_total") == 1
        assert second.value("lat_seconds")["total"] == 1
        assert second.value("load") == 0.0


# ----------------------------------------------------------------------
# LatencyHistogram (promoted) + shim
# ----------------------------------------------------------------------
class TestLatencyHistogramPromotion:
    def test_serving_reexport_is_the_telemetry_class(self):
        # The shim pins backward compatibility for every pre-PR-10
        # import site (loadgen, benchmarks, user code).
        from repro.serving import LatencyHistogram as from_pkg
        from repro.serving.server import LatencyHistogram as from_server

        assert from_server is LatencyHistogram
        assert from_pkg is LatencyHistogram

    def test_default_bucketing_unchanged(self):
        hist = LatencyHistogram()
        assert hist._bucketing() == (64, 1e-6, 1.5)
        hist.record(0.003)
        hist.record_many(np.array([0.001, 0.01]))
        assert hist.total == 3
        assert hist.as_dict()["count"] == 3

    def test_state_roundtrip_and_reset(self):
        hist = LatencyHistogram(num_buckets=8, base=0.5, factor=3.0)
        hist.record(1.0)
        hist.record(5.0)
        clone = LatencyHistogram.from_state(hist.state_dict())
        assert clone.total == 2
        assert clone.sum_seconds == hist.sum_seconds
        with pytest.raises(ValueError):
            LatencyHistogram().merge_state(hist.state_dict())
        hist.reset()
        assert hist.total == 0 and hist.max_seconds == 0.0
        assert hist._bucketing() == (8, 0.5, 3.0)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer(capacity=16)
        with tracer.span("unit.op", batch=4) as span:
            span.set("backend", "fsm")
        (record,) = tracer.records()
        assert record["name"] == "unit.op"
        assert record["duration_s"] >= 0.0
        assert record["attributes"] == {"batch": 4, "backend": "fsm"}

    def test_span_name_attribute_does_not_collide(self):
        tracer = Tracer(capacity=4)
        with tracer.span("fleet.phase", name="warmup"):
            pass
        (record,) = tracer.records()
        assert record["name"] == "fleet.phase"
        assert record["attributes"] == {"name": "warmup"}

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer(capacity=4)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer) == 1

    def test_ring_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r["name"] for r in tracer.records()] == ["op2", "op3", "op4"]

    def test_ingest_stamps_extra_attributes(self):
        worker, parent = Tracer(capacity=8), Tracer(capacity=8)
        with worker.span("rollout.collect_batch", traces=2):
            pass
        shipped = worker.drain()
        assert len(worker) == 0
        assert parent.ingest(shipped, worker=3) == 1
        (record,) = parent.records()
        assert record["attributes"]["worker"] == 3
        assert record["attributes"]["traces"] == 2

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer(capacity=8)
        with tracer.span("a"):
            pass
        with tracer.span("b", phase="x"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = path.read_text().strip().split("\n")
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(capacity=4, enabled=False)
        with tracer.span("ignored", key="value") as span:
            span.set("more", 1)  # null span: no-op
        assert len(tracer) == 0
        assert tracer.ingest([{"name": "x"}]) == 0


# ----------------------------------------------------------------------
# Process defaults
# ----------------------------------------------------------------------
class TestProcessDefaults:
    def test_configure_swaps_fresh_defaults(self, fresh_defaults):
        before_registry = telemetry.registry()
        before_tracer = telemetry.tracer()
        telemetry.configure(enabled=False)
        assert telemetry.registry() is not before_registry
        assert telemetry.tracer() is not before_tracer
        assert not telemetry.enabled()
        with telemetry.span("ignored"):
            pass
        assert len(telemetry.tracer()) == 0
        telemetry.configure(enabled=True, trace_capacity=7)
        assert telemetry.enabled()
        assert telemetry.tracer().capacity == 7

    def test_module_span_helper_hits_default_tracer(self, fresh_defaults):
        with telemetry.span("helper.op", n=1):
            pass
        names = [r["name"] for r in telemetry.tracer().records()]
        assert "helper.op" in names


# ----------------------------------------------------------------------
# Instrumented components (construction picks up the current defaults)
# ----------------------------------------------------------------------
class TestComponentIntegration:
    def test_rollout_collector_records_spans_and_counters(
        self, fresh_defaults, system_config, reward_config, real_traces, tiny_policy
    ):
        collector = BatchedRolloutCollector(
            VectorStorageAllocationEnv(system_config, reward_config), rng=0
        )
        trajectories = collector.collect_batch(tiny_policy, real_traces[:2])
        assert len(trajectories) == 2
        snapshot = telemetry.registry().snapshot()
        assert snapshot.value("rollout_batches_total") == 1
        assert snapshot.value("rollout_episodes_total") == 2
        assert snapshot.value("rollout_steps_total") > 0
        kernel_total = sum(
            series["value"]
            for series in snapshot.data["nn_kernel_dispatch_total"]["series"].values()
        )
        assert kernel_total > 0
        spans = [
            r for r in telemetry.tracer().records()
            if r["name"] == "rollout.collect_batch"
        ]
        assert spans and spans[-1]["attributes"]["traces"] == 2

    def test_worker_pool_merges_worker_telemetry(
        self, fresh_defaults, system_config, reward_config, real_traces, tiny_policy
    ):
        with PersistentWorkerPool(
            system_config, reward_config, num_workers=2
        ) as pool:
            pool.collect(tiny_policy, real_traces[:2], base_seed=5)
        snapshot = telemetry.registry().snapshot()
        # The parent never ran a rollout itself: these series arrived
        # via worker snapshots merged at the epoch boundary.
        assert snapshot.value("rollout_episodes_total") == 2
        worker_spans = [
            r for r in telemetry.tracer().records()
            if r["name"] == "rollout.collect_batch"
        ]
        assert worker_spans
        assert all("worker" in r["attributes"] for r in worker_spans)


@pytest.fixture
def reward_config():
    from repro.env.reward import RewardConfig

    return RewardConfig(mode="per_step_penalty")
