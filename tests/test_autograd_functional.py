"""Tests for repro.autograd.functional (softmax, losses, entropy)."""

import numpy as np
import pytest

from repro.autograd import check_gradients
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError


def _param(values):
    return Tensor(np.asarray(values, dtype=float), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).random((4, 7)))
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-12)
        assert np.all(probs >= 0)

    def test_invariant_to_constant_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(logits)).numpy()
        b = F.softmax(Tensor(logits + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerical_stability_large_logits(self):
        probs = F.softmax(Tensor([[1e4, 0.0, -1e4]])).numpy()
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_gradient(self):
        logits = _param(np.random.default_rng(1).random((3, 4)))
        check_gradients(lambda: (F.softmax(logits) * np.arange(4)).sum(), {"logits": logits})


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(2).random((5, 3)))
        np.testing.assert_allclose(
            F.log_softmax(logits).numpy(), np.log(F.softmax(logits).numpy()), atol=1e-10
        )

    def test_gradient(self):
        logits = _param(np.random.default_rng(3).random((2, 5)))
        check_gradients(lambda: F.log_softmax(logits).sum(), {"logits": logits})


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, [0, 1])
        assert loss.item() < 1e-4

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((3, 4)))
        assert F.cross_entropy(logits, [0, 1, 2]).item() == pytest.approx(np.log(4))

    def test_requires_2d(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros(4)), [0])

    def test_target_length_mismatch(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), [0])

    def test_gradient(self):
        logits = _param(np.random.default_rng(4).random((4, 3)))
        check_gradients(lambda: F.cross_entropy(logits, [0, 2, 1, 1]), {"logits": logits})


class TestNllOfActions:
    def test_picks_correct_entries(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        nll = F.nll_of_actions(log_probs, [0, 1]).numpy()
        np.testing.assert_allclose(nll, [-np.log(0.7), -np.log(0.8)], atol=1e-12)

    def test_gradient(self):
        logits = _param(np.random.default_rng(5).random((3, 4)))
        check_gradients(
            lambda: F.nll_of_actions(F.log_softmax(logits), [1, 0, 3]).sum(),
            {"logits": logits},
        )


class TestMseHuber:
    def test_mse_zero_for_equal(self):
        pred = Tensor([1.0, 2.0])
        assert F.mse_loss(pred, [1.0, 2.0]).item() == 0.0

    def test_mse_value(self):
        pred = Tensor([1.0, 3.0])
        assert F.mse_loss(pred, [0.0, 0.0]).item() == pytest.approx(5.0)

    def test_mse_gradient(self):
        pred = _param([1.0, -2.0, 0.5])
        check_gradients(lambda: F.mse_loss(pred, [0.0, 1.0, 0.5]), {"pred": pred})

    def test_huber_quadratic_region_matches_half_mse(self):
        pred = Tensor([0.5])
        target = [0.0]
        assert F.huber_loss(pred, target, delta=1.0).item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        pred = Tensor([3.0])
        # |diff| = 3 > delta=1: loss = 0.5*1 + (3-1)*1 = 2.5
        assert F.huber_loss(pred, [0.0], delta=1.0).item() == pytest.approx(2.5)

    def test_huber_gradient(self):
        pred = _param([0.3, 2.5, -4.0])
        check_gradients(lambda: F.huber_loss(pred, [0.0, 0.0, 0.0]), {"pred": pred})


class TestEntropy:
    def test_uniform_maximizes(self):
        uniform = Tensor(np.full((1, 4), 0.25))
        peaked = Tensor(np.array([[0.97, 0.01, 0.01, 0.01]]))
        assert F.entropy(uniform).item() > F.entropy(peaked).item()

    def test_uniform_value(self):
        uniform = Tensor(np.full((1, 8), 1 / 8))
        assert F.entropy(uniform).item() == pytest.approx(np.log(8), abs=1e-6)

    def test_gradient(self):
        logits = _param(np.random.default_rng(6).random((2, 5)))
        check_gradients(lambda: F.entropy(F.softmax(logits)), {"logits": logits})
