"""Tests for the autograd Tensor: forward values and backward gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import check_gradients
from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad
from repro.errors import AutogradError, ShapeError


def _param(values):
    return Tensor(np.asarray(values, dtype=float), requires_grad=True)


class TestTensorBasics:
    def test_shape_and_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_item_scalar(self):
        assert Tensor(3.0).item() == 3.0

    def test_item_non_scalar_raises(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros(3)).item()

    def test_detach_drops_graph(self):
        a = _param([1.0, 2.0])
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4
        with pytest.raises(ShapeError):
            len(Tensor(1.0))

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_backward_requires_grad(self):
        with pytest.raises(AutogradError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = _param([1.0, 2.0])
        out = t * 2
        with pytest.raises(AutogradError):
            out.backward()

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones(3).data == 1)


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = _param([1.0])
        with no_grad():
            assert not is_grad_enabled()
            out = a * 3
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0])
        check_gradients(lambda: (a + b).sum(), {"a": a, "b": b})

    def test_sub(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0])
        check_gradients(lambda: (a - b * 2).sum(), {"a": a, "b": b})

    def test_mul(self):
        a, b = _param([1.5, -2.0]), _param([0.5, 3.0])
        check_gradients(lambda: (a * b).sum(), {"a": a, "b": b})

    def test_div(self):
        a, b = _param([1.0, 2.0]), _param([4.0, 5.0])
        check_gradients(lambda: (a / b).sum(), {"a": a, "b": b})

    def test_neg_and_rsub(self):
        a = _param([1.0, -2.0])
        check_gradients(lambda: (5.0 - (-a)).sum(), {"a": a})

    def test_scalar_rsub_gate(self):
        # The GRU convex-combination gate: (1 - z) * n + z * h, exercised
        # through the allocation-free scalar rsub path.
        update = _param([0.2, 0.7, -0.3])
        candidate = _param([1.0, -1.0, 0.5])
        hidden = _param([0.1, 0.2, 0.3])
        check_gradients(
            lambda: ((1.0 - update) * candidate + update * hidden).sum(),
            {"update": update, "candidate": candidate, "hidden": hidden},
        )
        gate = 1.0 - update
        # The scalar constant must not be materialised as a graph parent.
        assert gate._parents == (update,)
        np.testing.assert_allclose(gate.data, 1.0 - update.data)

    def test_pow(self):
        a = _param([1.5, 2.0, 0.5])
        check_gradients(lambda: (a ** 3).sum(), {"a": a})

    def test_scalar_broadcast(self):
        a = _param([[1.0, 2.0], [3.0, 4.0]])
        check_gradients(lambda: (a * 2.5 + 1.0).sum(), {"a": a})

    def test_broadcast_row_vector(self):
        a = _param(np.ones((3, 2)))
        b = _param([10.0, 20.0])
        check_gradients(lambda: (a * b).sum(), {"a": a, "b": b})
        # Gradient of the broadcast operand is reduced to its shape.
        assert b.grad.shape == (2,)

    def test_rtruediv(self):
        a = _param([2.0, 4.0])
        check_gradients(lambda: (1.0 / a).sum(), {"a": a})

    def test_tensor_exponent_rejected(self):
        a = _param([2.0])
        with pytest.raises(AutogradError):
            a ** Tensor([2.0])


class TestMatmulGradients:
    def test_matrix_matrix(self):
        a = _param(np.random.default_rng(0).random((3, 4)))
        b = _param(np.random.default_rng(1).random((4, 2)))
        check_gradients(lambda: (a @ b).sum(), {"a": a, "b": b})

    def test_vector_matrix(self):
        a = _param(np.random.default_rng(2).random(4))
        b = _param(np.random.default_rng(3).random((4, 3)))
        check_gradients(lambda: (a @ b).sum(), {"a": a, "b": b})

    def test_vector_vector(self):
        a = _param([1.0, 2.0, 3.0])
        b = _param([0.5, -1.0, 2.0])
        check_gradients(lambda: (a @ b), {"a": a, "b": b})

    def test_transpose(self):
        a = _param(np.random.default_rng(4).random((2, 3)))
        check_gradients(lambda: (a.T @ a).sum(), {"a": a})

    def test_transpose_requires_2d(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros(3)).transpose()


class TestReductionGradients:
    def test_sum_all(self):
        a = _param(np.arange(6.0).reshape(2, 3))
        check_gradients(lambda: a.sum(), {"a": a})

    def test_sum_axis(self):
        a = _param(np.arange(6.0).reshape(2, 3))
        check_gradients(lambda: a.sum(axis=0).sum(), {"a": a})
        check_gradients(lambda: a.sum(axis=1, keepdims=True).sum(), {"a": a})

    def test_mean(self):
        a = _param(np.arange(8.0).reshape(2, 4))
        check_gradients(lambda: a.mean(), {"a": a})
        check_gradients(lambda: a.mean(axis=1).sum(), {"a": a})

    def test_max(self):
        a = _param([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        check_gradients(lambda: a.max(), {"a": a})
        check_gradients(lambda: a.max(axis=1).sum(), {"a": a})


class TestShapeOps:
    def test_reshape_gradient(self):
        a = _param(np.arange(6.0))
        check_gradients(lambda: (a.reshape(2, 3) * 2).sum(), {"a": a})

    def test_getitem_gradient(self):
        a = _param(np.arange(10.0))
        check_gradients(lambda: a[2:5].sum(), {"a": a})

    def test_getitem_fancy_index(self):
        a = _param(np.arange(12.0).reshape(3, 4))
        rows = np.array([0, 1, 2])
        cols = np.array([1, 2, 0])
        check_gradients(lambda: a[rows, cols].sum(), {"a": a})

    def test_concat_gradient(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0, 5.0])
        check_gradients(lambda: Tensor.concat([a, b], axis=0).sum(), {"a": a, "b": b})

    def test_stack_gradient(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0])
        check_gradients(lambda: (Tensor.stack([a, b], axis=0) * 2).sum(), {"a": a, "b": b})

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            Tensor.concat([])


class TestNonlinearityGradients:
    def test_exp_log(self):
        a = _param([0.5, 1.0, 2.0])
        check_gradients(lambda: a.exp().sum(), {"a": a})
        check_gradients(lambda: a.log().sum(), {"a": a})

    def test_tanh_sigmoid(self):
        a = _param([-1.0, 0.0, 2.0])
        check_gradients(lambda: a.tanh().sum(), {"a": a})
        check_gradients(lambda: a.sigmoid().sum(), {"a": a})

    def test_relu(self):
        a = _param([-1.0, 0.5, 2.0])
        check_gradients(lambda: a.relu().sum(), {"a": a})
        assert np.all(a.relu().data >= 0)

    def test_abs(self):
        a = _param([-1.5, 2.0, -0.5])
        check_gradients(lambda: a.abs().sum(), {"a": a})

    def test_clip_values_and_grad_mask(self):
        a = _param([-2.0, 0.5, 3.0])
        clipped = a.clip(-1.0, 1.0)
        np.testing.assert_allclose(clipped.data, [-1.0, 0.5, 1.0])
        clipped.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestGradientAccumulation:
    def test_reused_tensor_accumulates(self):
        a = _param([2.0])
        out = a * a  # a appears twice
        out.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(4.0)

    def test_zero_grad(self):
        a = _param([1.0])
        (a * 2).backward(np.array([1.0]))
        a.zero_grad()
        assert a.grad is None

    def test_two_backward_passes_accumulate(self):
        a = _param([1.0])
        (a * 3).backward(np.array([1.0]))
        (a * 3).backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(6.0)


class TestPropertyBased:
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, values):
        t = Tensor(values)
        assert t.sum().item() == pytest.approx(float(np.sum(values)), abs=1e-9)

    @given(
        st.lists(st.floats(-5, 5), min_size=2, max_size=6),
        st.lists(st.floats(-5, 5), min_size=2, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes(self, xs, ys):
        n = min(len(xs), len(ys))
        a, b = Tensor(xs[:n]), Tensor(ys[:n])
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_tanh_bounded(self, values):
        out = Tensor(values).tanh().data
        assert np.all(np.abs(out) <= 1.0)
