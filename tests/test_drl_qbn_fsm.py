"""Tests for the DRL stack, QBNs, FSM extraction/interpretation and the pipeline.

The heavier integration paths reuse the session-scoped ``tiny_pipeline_result``
fixture (one tiny end-to-end pipeline run) instead of retraining per test.
"""

import numpy as np
import pytest

from repro.agents import GreedyUtilizationPolicy
from repro.drl.a2c import A2CConfig, A2CTrainer, TrainingHistory
from repro.drl.agent import DRLPolicyAgent
from repro.drl.checkpoints import load_policy, save_policy
from repro.drl.curriculum import CurriculumConfig, CurriculumTrainer
from repro.drl.exploration import EpsilonSchedule
from repro.drl.imitation import BehaviorCloningTrainer, ImitationConfig
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import RolloutCollector, Trajectory, Transition
from repro.errors import ConfigurationError, ExtractionError, TrainingError
from repro.fsm.agent import FSMPolicyAgent
from repro.fsm.generalize import NearestObservationMatcher
from repro.fsm.interpretation import (
    capacity_ratio,
    fan_in_out_statistics,
    history_profile,
    read_intensity_kb,
    write_intensity_kb,
)
from repro.fsm.machine import FiniteStateMachine
from repro.fsm.minimize import merge_equivalent_states, prune_rare_states
from repro.fsm.render import fsm_summary_table, fsm_to_dot
from repro.pipeline.evaluation import compare_agents, comparison_table, evaluate_agent, relative_reduction
from repro.qbn.autoencoder import QBNConfig, QuantizedBottleneckNetwork
from repro.qbn.dataset import TransitionDataset
from repro.qbn.quantize import code_key, codes_to_values, quantization_levels, quantize_ste, values_to_codes
from repro.qbn.trainer import QBNTrainer, QBNTrainingConfig
from repro.storage.migration import MigrationAction
from repro.autograd.tensor import Tensor


# ----------------------------------------------------------------------
# Policy network and rollouts
# ----------------------------------------------------------------------
class TestPolicyNetwork:
    def test_step_shapes(self, tiny_policy):
        logits, value, hidden = tiny_policy.step(
            Tensor(np.zeros(tiny_policy.config.observation_dim)), tiny_policy.initial_state()
        )
        assert logits.shape == (7,)
        assert value.shape == (1,)
        assert hidden.shape == (16,)

    def test_act_output(self, tiny_policy):
        out = tiny_policy.act(
            np.zeros(tiny_policy.config.observation_dim),
            tiny_policy.initial_state().numpy(),
            rng=0,
        )
        assert 0 <= out.action < 7
        assert out.probabilities.shape == (7,)
        assert np.isclose(out.probabilities.sum(), 1.0)
        assert out.hidden_state.shape == (16,)

    def test_epsilon_one_gives_random_actions(self, tiny_policy):
        actions = {
            tiny_policy.act(
                np.zeros(tiny_policy.config.observation_dim),
                tiny_policy.initial_state().numpy(),
                rng=i,
                epsilon=1.0,
            ).action
            for i in range(40)
        }
        assert len(actions) > 3

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PolicyConfig(hidden_size=0)

    def test_checkpoint_roundtrip(self, tmp_path, tiny_policy):
        path = tmp_path / "policy.npz"
        save_policy(path, tiny_policy)
        loaded = load_policy(path)
        assert loaded.config == tiny_policy.config
        obs = np.random.default_rng(0).random(tiny_policy.config.observation_dim)
        h = tiny_policy.initial_state().numpy()
        np.testing.assert_allclose(
            tiny_policy.act(obs, h, rng=0).log_probs, loaded.act(obs, h, rng=0).log_probs
        )


class TestRollout:
    def test_collect_records_full_episode(self, env, short_trace, tiny_policy):
        collector = RolloutCollector(env, rng=0)
        trajectory = collector.collect(tiny_policy, short_trace, greedy=True, episode_seed=0)
        assert len(trajectory) == trajectory.makespan
        assert trajectory.observations().shape == (len(trajectory), 35)
        assert trajectory.hidden_states_before().shape == (len(trajectory), 16)
        assert trajectory.actions().min() >= 0 and trajectory.actions().max() < 7
        assert trajectory.transitions[-1].done

    def test_hidden_states_chain(self, env, short_trace, tiny_policy):
        collector = RolloutCollector(env, rng=0)
        trajectory = collector.collect(tiny_policy, short_trace, greedy=True, episode_seed=0)
        np.testing.assert_allclose(
            trajectory.transitions[0].hidden_after, trajectory.transitions[1].hidden_before
        )

    def test_discounted_returns(self):
        trajectory = Trajectory(trace_name="t")
        for reward in [1.0, 1.0, 1.0]:
            trajectory.transitions.append(
                Transition(np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2), 0, reward, 0.0, False)
            )
        np.testing.assert_allclose(
            trajectory.discounted_returns(0.5), [1.75, 1.5, 1.0]
        )
        with pytest.raises(TrainingError):
            trajectory.discounted_returns(1.5)


class TestEpsilonSchedule:
    def test_constant(self):
        schedule = EpsilonSchedule(start=0.1, end=0.1, decay_epochs=0)
        assert schedule.value(0) == schedule.value(1000) == 0.1

    def test_linear_decay(self):
        schedule = EpsilonSchedule(start=1.0, end=0.0, decay_epochs=10)
        assert schedule.value(0) == 1.0
        assert schedule.value(5) == pytest.approx(0.5)
        assert schedule.value(100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(start=1.5)


class TestA2CTrainer:
    def test_training_runs_and_updates_parameters(self, env, real_traces, tiny_policy):
        before = {k: v.copy() for k, v in tiny_policy.state_dict().items()}
        trainer = A2CTrainer(tiny_policy, env, A2CConfig(n_step=5), rng=0)
        history = trainer.train(real_traces[:2], epochs=2, phase="unit")
        assert len(history) == 2
        assert all(r.phase == "unit" for r in history.records)
        after = tiny_policy.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_history_utilities(self):
        history = TrainingHistory()
        assert len(history) == 0
        with pytest.raises(TrainingError):
            history.final_makespan()

    def test_invalid_inputs(self, env, tiny_policy, real_traces):
        trainer = A2CTrainer(tiny_policy, env, rng=0)
        with pytest.raises(TrainingError):
            trainer.train([], epochs=1)
        with pytest.raises(TrainingError):
            trainer.train(real_traces, epochs=0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            A2CConfig(gamma=1.5)
        with pytest.raises(ConfigurationError):
            A2CConfig(n_step=-1)

    def test_n_step_returns_match_monte_carlo_when_long(self, env, tiny_policy):
        trainer = A2CTrainer(tiny_policy, env, A2CConfig(gamma=0.9, n_step=100), rng=0)
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.zeros(3)
        returns = trainer._n_step_returns(rewards, values)
        expected = [1.0 + 0.9 * 2 + 0.81 * 3, 2.0 + 0.9 * 3, 3.0]
        np.testing.assert_allclose(returns, expected)

    def test_n_step_bootstrap_uses_value(self, env, tiny_policy):
        trainer = A2CTrainer(tiny_policy, env, A2CConfig(gamma=1.0, n_step=1), rng=0)
        returns = trainer._n_step_returns(np.array([1.0, 1.0]), np.array([5.0, 7.0]))
        np.testing.assert_allclose(returns, [1.0 + 7.0, 1.0])


class TestCurriculumAndImitation:
    def test_curriculum_phases_labelled(self, env, standard_suite, real_traces):
        trainer = CurriculumTrainer(
            env, policy_config=PolicyConfig(hidden_size=12), a2c_config=A2CConfig(n_step=5), rng=0
        )
        policy, history = trainer.train_with_curriculum(
            list(standard_suite.values())[:2],
            real_traces[:1],
            CurriculumConfig(standard_epochs=1, real_epochs=1),
        )
        phases = history.phases()
        assert phases[0] == "pretrain_standard" and phases[-1] == "finetune_real"
        assert isinstance(policy, RecurrentPolicyValueNet)

    def test_from_scratch(self, env, real_traces):
        trainer = CurriculumTrainer(
            env, policy_config=PolicyConfig(hidden_size=12), a2c_config=A2CConfig(n_step=5), rng=0
        )
        _, history = trainer.train_from_scratch(real_traces[:1], epochs=2)
        assert len(history) == 2
        assert set(history.phases()) == {"from_scratch_real"}

    def test_curriculum_config_validation(self):
        with pytest.raises(ConfigurationError):
            CurriculumConfig(standard_epochs=0, real_epochs=0)

    def test_behaviour_cloning_learns_teacher_actions(self, env, standard_suite):
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=24), rng=3)
        trainer = BehaviorCloningTrainer(env, ImitationConfig(epochs=6), rng=0)
        demos = trainer.collect_demonstrations(
            GreedyUtilizationPolicy(), list(standard_suite.values())[:3]
        )
        assert all(len(d) >= len_trace for d, len_trace in zip(demos, [1, 1, 1]))
        result = trainer.fit(policy, demos)
        assert len(result.losses) == 6
        assert result.losses[-1] < result.losses[0]
        assert 0.0 <= result.accuracy <= 1.0

    def test_imitation_validation(self, env):
        trainer = BehaviorCloningTrainer(env, ImitationConfig(epochs=1), rng=0)
        with pytest.raises(TrainingError):
            trainer.collect_demonstrations(GreedyUtilizationPolicy(), [])


# ----------------------------------------------------------------------
# QBN
# ----------------------------------------------------------------------
class TestQuantization:
    def test_levels(self):
        np.testing.assert_allclose(quantization_levels(3), [-1.0, 0.0, 1.0])
        np.testing.assert_allclose(quantization_levels(2), [-1.0, 1.0])

    def test_quantize_values(self):
        x = Tensor(np.array([-0.9, -0.2, 0.1, 0.8]))
        np.testing.assert_allclose(quantize_ste(x, 3).numpy(), [-1.0, 0.0, 0.0, 1.0])

    def test_straight_through_gradient(self):
        x = Tensor(np.array([0.3, -0.7]), requires_grad=True)
        quantize_ste(x, 3).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_codes_roundtrip(self):
        values = np.array([-1.0, 0.0, 1.0, 1.0])
        codes = values_to_codes(values, 3)
        np.testing.assert_array_equal(codes, [0, 1, 2, 2])
        np.testing.assert_allclose(codes_to_values(codes, 3), values)

    def test_code_key_hashable(self):
        key = code_key(np.array([0, 1, 2]))
        assert key == (0, 1, 2)
        assert hash(key) is not None

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            quantization_levels(1)


class TestQBNAutoencoderAndTrainer:
    def test_latent_is_quantized(self):
        qbn = QuantizedBottleneckNetwork(QBNConfig(input_dim=6, latent_dim=4, hidden_dim=8), rng=0)
        latent = qbn.encode(Tensor(np.random.default_rng(0).random((5, 6)))).numpy()
        assert set(np.unique(latent)) <= {-1.0, 0.0, 1.0}

    def test_reconstruction_shape_and_error(self):
        qbn = QuantizedBottleneckNetwork(QBNConfig(input_dim=6, latent_dim=4, hidden_dim=8), rng=0)
        data = np.random.default_rng(0).random((10, 6))
        assert qbn.reconstruct(data).shape == (10, 6)
        assert qbn.reconstruction_error(data) >= 0.0

    def test_discrete_code_shape(self):
        qbn = QuantizedBottleneckNetwork(QBNConfig(input_dim=6, latent_dim=4, hidden_dim=8), rng=0)
        codes = qbn.discrete_code(np.zeros(6))
        assert codes.shape == (4,)
        assert codes.dtype == np.int64

    def test_training_reduces_reconstruction_loss(self, tiny_pipeline_result):
        losses = tiny_pipeline_result.qbn_result.observation_losses
        assert losses[-1] <= losses[0]

    def test_dataset_from_trajectories(self, env, short_trace, tiny_policy):
        collector = RolloutCollector(env, rng=0)
        trajectories = [collector.collect(tiny_policy, short_trace, greedy=True, episode_seed=0)]
        dataset = TransitionDataset.from_trajectories(trajectories)
        assert len(dataset) == len(trajectories[0])
        assert dataset.observation_dim == 35
        assert dataset.hidden_dim == 16
        train, held = dataset.split(0.8, rng=0)
        assert len(train) + len(held) == len(dataset)
        episodes = dataset.episodes()
        assert len(episodes) == 1

    def test_dataset_validation(self):
        with pytest.raises(ExtractionError):
            TransitionDataset.from_trajectories([])

    def test_qbn_training_config_validation(self):
        with pytest.raises(ConfigurationError):
            QBNTrainingConfig(epochs=0)


# ----------------------------------------------------------------------
# FSM structure, minimisation, generalisation, interpretation
# ----------------------------------------------------------------------
def _toy_fsm():
    fsm = FiniteStateMachine()
    s0, s1, s2 = (0,), (1,), (2,)
    fsm.add_state(s0, MigrationAction.NOOP).visit_count = 10
    fsm.add_state(s1, MigrationAction.NORMAL_TO_KV).visit_count = 5
    fsm.add_state(s2, MigrationAction.NORMAL_TO_KV).visit_count = 1
    obs_a, obs_b = (0, 0), (1, 1)
    fsm.add_transition(s0, obs_a, s0, np.zeros(3))
    fsm.add_transition(s0, obs_b, s1, np.ones(3))
    fsm.add_transition(s1, obs_a, s0, np.zeros(3))
    fsm.add_transition(s2, obs_a, s0, np.zeros(3))
    fsm.initial_state = s0
    return fsm


class TestFiniteStateMachine:
    def test_counts(self):
        fsm = _toy_fsm()
        assert fsm.num_states == 3
        assert fsm.num_transitions == 4
        fsm.validate()

    def test_step_known_and_unknown_observation(self):
        fsm = _toy_fsm()
        next_state, action = fsm.step((0,), (1, 1))
        assert next_state == (1,)
        assert action is MigrationAction.NORMAL_TO_KV
        # Unknown observation keeps the current state.
        same_state, action = fsm.step((0,), (9, 9))
        assert same_state == (0,)

    def test_step_unknown_state_raises(self):
        with pytest.raises(ExtractionError):
            _toy_fsm().step((9,), (0, 0))

    def test_successors(self):
        successors = _toy_fsm().successors((0,))
        assert successors[(0,)] == 1 and successors[(1,)] == 1

    def test_relabel_orders_by_visits(self):
        fsm = _toy_fsm()
        fsm.relabel()
        labels = {state.code: state.label for state in fsm.states.values()}
        assert labels[(0,)] == "S0"

    def test_merge_equivalent_states(self):
        fsm = _toy_fsm()
        mapping = merge_equivalent_states(fsm)
        # s1 and s2 emit the same action and go to the same partition -> merged.
        assert fsm.num_states == 2
        assert (2,) in mapping
        fsm.validate()

    def test_prune_rare_states(self):
        fsm = _toy_fsm()
        mapping = prune_rare_states(fsm, min_visits=2)
        assert (2,) in mapping
        assert fsm.num_states == 2
        fsm.validate()

    def test_render_outputs(self):
        fsm = _toy_fsm()
        dot = fsm_to_dot(fsm)
        assert dot.startswith("digraph") and "S0" in dot
        table = fsm_summary_table(fsm)
        assert "Noop" in table


class TestGeneralization:
    def test_exact_match_preferred(self):
        prototypes = {(0, 0): np.zeros(3), (1, 1): np.ones(3)}
        matcher = NearestObservationMatcher(
            prototypes, metric="euclidean", encoder=lambda v: (1, 1)
        )
        assert matcher.match(np.ones(3)) == (1, 1)

    def test_euclidean_nearest(self):
        prototypes = {(0,): np.array([0.0, 0.0]), (1,): np.array([1.0, 1.0])}
        matcher = NearestObservationMatcher(prototypes, metric="euclidean")
        assert matcher.match(np.array([0.9, 0.8])) == (1,)
        assert matcher.match(np.array([0.1, 0.0])) == (0,)

    def test_cosine_metric(self):
        prototypes = {(0,): np.array([1.0, 0.0]), (1,): np.array([0.0, 1.0])}
        matcher = NearestObservationMatcher(prototypes, metric="cosine")
        assert matcher.match(np.array([0.9, 0.1])) == (0,)

    def test_invalid_metric(self):
        with pytest.raises(ExtractionError):
            NearestObservationMatcher({(0,): np.zeros(2)}, metric="manhattan")

    def test_empty_prototypes(self):
        with pytest.raises(ExtractionError):
            NearestObservationMatcher({})


class TestExtractionIntegration:
    def test_extraction_produces_consistent_fsm(self, tiny_pipeline_result):
        extraction = tiny_pipeline_result.extraction
        fsm = extraction.fsm
        assert fsm.num_states >= 1
        fsm.validate()
        assert extraction.num_raw_states >= fsm.num_states
        assert len(extraction.records) == len(tiny_pipeline_result.transition_dataset)
        # Every record endpoint is a surviving state.
        for record in extraction.records[:50]:
            assert record.destination_state in fsm.states

    def test_fsm_agent_runs_episode(self, tiny_pipeline_result, tiny_pipeline_config):
        from repro.env.environment import StorageAllocationEnv

        env = StorageAllocationEnv(tiny_pipeline_config.system)
        agent = FSMPolicyAgent.from_extraction(
            tiny_pipeline_result.extraction,
            env.observation_encoder,
            tiny_pipeline_result.qbn_result.observation_qbn,
        )
        result = evaluate_agent(agent, tiny_pipeline_result.eval_traces[:1],
                                system_config=tiny_pipeline_config.system)
        assert result.makespans[0] >= len(tiny_pipeline_result.eval_traces[0])

    def test_drl_agent_runs_episode(self, tiny_pipeline_result, tiny_pipeline_config):
        from repro.env.environment import StorageAllocationEnv

        env = StorageAllocationEnv(tiny_pipeline_config.system)
        agent = DRLPolicyAgent(tiny_pipeline_result.policy, env.observation_encoder)
        result = evaluate_agent(agent, tiny_pipeline_result.eval_traces[:1],
                                system_config=tiny_pipeline_config.system)
        assert result.makespans[0] > 0

    def test_interpretation_bundle(self, tiny_pipeline_result):
        interpretation = tiny_pipeline_result.interpretation
        assert len(interpretation) == tiny_pipeline_result.extraction.fsm.num_states
        for label, info in interpretation.items():
            assert "fan_in_out" in info and "history" in info
            assert info["history"].window == tiny_pipeline_result.extraction.fsm.num_states * 0 + 10

    def test_fan_in_out_statistics(self, tiny_pipeline_result):
        stats = fan_in_out_statistics(
            tiny_pipeline_result.extraction.fsm, tiny_pipeline_result.extraction.records
        )
        assert set(stats) == {
            s.label for s in tiny_pipeline_result.extraction.fsm.states_by_id()
        }

    def test_history_profile_unknown_state(self, tiny_pipeline_result):
        with pytest.raises(ExtractionError):
            history_profile(
                tiny_pipeline_result.extraction.fsm,
                tiny_pipeline_result.extraction.records,
                "S999",
            )

    def test_raw_observation_helpers(self, tiny_pipeline_result):
        raw = tiny_pipeline_result.extraction.records[0].raw_observation
        assert read_intensity_kb(raw) >= 0.0
        assert write_intensity_kb(raw) >= 0.0
        assert capacity_ratio(raw) > 0.0


# ----------------------------------------------------------------------
# Evaluation harness and pipeline
# ----------------------------------------------------------------------
class TestEvaluationHarness:
    def test_compare_agents_matched_seeds(self, system_config, real_traces):
        from repro.agents import DefaultPolicy, HandcraftedFSMPolicy

        results = compare_agents(
            [DefaultPolicy(), HandcraftedFSMPolicy()], real_traces[:2],
            system_config=system_config, episode_seed=0,
        )
        assert set(results) == {"default", "handcrafted_fsm"}
        assert len(results["default"].makespans) == 2
        table = comparison_table(results)
        assert "MEAN" in table

    def test_relative_reduction(self, system_config, real_traces):
        from repro.agents import DefaultPolicy

        a = evaluate_agent(DefaultPolicy(), real_traces[:1], system_config=system_config)
        assert relative_reduction(a, a) == pytest.approx(0.0)

    def test_evaluate_agent_validation(self, system_config):
        from repro.agents import DefaultPolicy

        with pytest.raises(ConfigurationError):
            evaluate_agent(DefaultPolicy(), [], system_config=system_config)


class TestPipeline:
    def test_pipeline_result_contents(self, tiny_pipeline_result, tiny_pipeline_config):
        assert len(tiny_pipeline_result.standard_traces) == 12
        assert len(tiny_pipeline_result.real_traces) == tiny_pipeline_config.num_real_traces
        assert len(tiny_pipeline_result.eval_traces) == tiny_pipeline_config.num_eval_traces
        assert len(tiny_pipeline_result.training_history) == (
            tiny_pipeline_config.curriculum.total_epochs
        )
        assert tiny_pipeline_result.qbn_result.action_agreement is not None

    def test_pipeline_config_validation(self, tiny_pipeline_config):
        from dataclasses import replace

        bad = replace(tiny_pipeline_config, num_eval_traces=0)
        with pytest.raises(ConfigurationError):
            bad.validate()
        bad2 = replace(tiny_pipeline_config, bc_teacher="unknown_teacher")
        with pytest.raises(ConfigurationError):
            bad2.validate()
