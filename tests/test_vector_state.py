"""Equivalence suite for the struct-of-arrays simulator core.

The contract: slot ``i`` of a :class:`VectorSimulatorState` episode is
bit-identical to a scalar :class:`StorageSimulator` episode on the same
trace with the same rng stream, for every batch size, kernel choice and
batch composition (partial batches of different-length traces, fully
finished batches).  These tests also pin the numerical foundations the
vectorized kernels stand on — numpy's row-wise reductions matching
standalone vector reductions, and the replayed pairwise-summation
order — so a numpy upgrade that changes them fails loudly here instead
of silently drifting a golden trace.
"""

import numpy as np
import pytest

from repro.agents.default import DefaultPolicy
from repro.agents.greedy import GreedyUtilizationPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import SimulationError
from repro.storage.cores import CorePool
from repro.storage.dispatcher import pairwise_sum_ragged, replicated_pairwise_sum
from repro.storage.simulator import StorageSimulator, StorageSystemConfig
from repro.storage.vector_state import VectorSimulatorState


def _batch_traces(real_traces, batch):
    """``batch`` traces of heterogeneous lengths from the fixture set."""
    traces = list(real_traces)
    return [traces[i % len(traces)] for i in range(batch)]


def _drive_and_compare(config, traces, seeds, kernel, action_seed=101):
    """Step a vector state and per-slot scalar simulators in lockstep.

    Actions are drawn per-slot from independent seeded generators (only
    for unfinished slots, exactly like a collector would), and every
    per-interval quantity is compared bitwise.
    """
    batch = len(traces)
    state = VectorSimulatorState(config, record_metrics=False)
    if kernel == "grouped":
        state._grouped_min_rows = 1
    elif kernel == "reference":
        state._grouped_min_rows = 10**9
    state.reset(traces, rngs=list(seeds))
    scalars = []
    for trace, seed in zip(traces, seeds):
        simulator = StorageSimulator(config, rng=seed, record_metrics=False)
        simulator.reset(trace)
        scalars.append(simulator)
    action_rngs = [np.random.default_rng(action_seed + i) for i in range(batch)]

    steps = 0
    while not state.done.all():
        was_done = state.done.copy()
        actions = np.zeros(batch, dtype=np.int64)
        for i in range(batch):
            if not was_done[i]:
                actions[i] = int(action_rngs[i].integers(0, 7))
        state.step(actions)
        for i in range(batch):
            if was_done[i]:
                continue
            scalar = scalars[i]
            scalar.step(int(actions[i]))
            values = scalar.last_step_values
            assert tuple(state.incoming[i]) == values.incoming_kb
            assert tuple(state.processed[i]) == values.processed_kb
            assert tuple(state.capacity[i]) == values.capacity_kb
            assert tuple(state.utilization[i]) == values.utilization
            assert tuple(state.backlog[i]) == values.backlog_kb
            assert list(state.counts[i]) == list(scalar.core_counts().values())
            assert bool(state.done[i]) == scalar.is_done
        steps += 1
        assert steps < 10_000, "episodes did not converge"
    for i, scalar in enumerate(scalars):
        assert int(state.steps_taken[i]) == scalar.makespan
        assert bool(state.truncated[i]) == scalar.episode_metrics.truncated
    return state


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", ["grouped", "reference"])
    @pytest.mark.parametrize("batch", [1, 3, 8])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_matches_scalar_simulator(self, real_traces, kernel, batch, seed):
        config = StorageSystemConfig()
        traces = _batch_traces(real_traces, batch)
        _drive_and_compare(
            config, traces, [seed + i for i in range(batch)], kernel
        )

    @pytest.mark.parametrize("kernel", ["grouped", "reference"])
    def test_zero_idle_rate(self, real_traces, kernel):
        config = StorageSystemConfig(idle_rate=0.0)
        _drive_and_compare(config, _batch_traces(real_traces, 4), [5, 6, 7, 8], kernel)

    @pytest.mark.parametrize("kernel", ["grouped", "reference"])
    def test_heavy_penalty_config(self, real_traces, kernel):
        config = StorageSystemConfig(
            migration_penalty=0.5, migration_cooldown_intervals=3, idle_rate=0.1
        )
        _drive_and_compare(config, _batch_traces(real_traces, 4), [1, 2, 3, 4], kernel)

    def test_grouped_supported_flag_respects_dispatcher(self):
        state = VectorSimulatorState(StorageSystemConfig(dispatcher="proportional"))
        assert not state._grouped_supported

    def test_proportional_dispatcher_matches_scalar(self, real_traces):
        config = StorageSystemConfig(dispatcher="proportional")
        _drive_and_compare(
            config, _batch_traces(real_traces, 3), [0, 1, 2], "reference"
        )


class TestBatchLifecycle:
    def test_all_finished_mask_is_a_noop(self, real_traces):
        state = VectorSimulatorState(StorageSystemConfig())
        traces = _batch_traces(real_traces, 3)
        state.reset(traces, rngs=[0, 1, 2])
        while not state.done.all():
            state.step(np.zeros(3, dtype=np.int64))
        makespans = state.steps_taken.copy()
        backlog = state.backlog.copy()
        stepped = state.step(np.ones(3, dtype=np.int64))
        assert not stepped.any()
        np.testing.assert_array_equal(state.steps_taken, makespans)
        np.testing.assert_array_equal(state.backlog, backlog)

    def test_partial_batch_slots_freeze(self, real_traces):
        """Shorter episodes stop consuming randomness once finished."""
        traces = sorted(list(real_traces), key=len)[:2]
        config = StorageSystemConfig()
        # Lone run of the longer trace with its own stream.
        lone = VectorSimulatorState(config)
        lone.reset([traces[1]], rngs=[42])
        while not lone.done.all():
            lone.step(np.zeros(1, dtype=np.int64))
        # Same trace sharing a batch with a shorter one that finishes first.
        pair = VectorSimulatorState(config)
        pair.reset(traces, rngs=[7, 42])
        while not pair.done.all():
            pair.step(np.zeros(2, dtype=np.int64))
        assert int(pair.steps_taken[1]) == int(lone.steps_taken[0])

    def test_reset_validations(self, real_traces):
        state = VectorSimulatorState(StorageSystemConfig())
        with pytest.raises(SimulationError):
            state.reset([])
        with pytest.raises(SimulationError):
            state.reset(list(real_traces)[:2], rngs=[0])
        with pytest.raises(SimulationError):
            state.step(np.zeros(1, dtype=np.int64))

    @pytest.mark.parametrize("action", [-1, 7, 99])
    def test_out_of_range_actions_rejected(self, real_traces, action):
        """Negative indices must not wrap through fancy indexing into a
        silent (wrong) migration; out-of-range raises cleanly instead."""
        state = VectorSimulatorState(StorageSystemConfig())
        state.reset(list(real_traces)[:2], rngs=[0, 1])
        counts_before = state.counts.copy()
        with pytest.raises(SimulationError):
            state.step(np.array([action, 0], dtype=np.int64))
        np.testing.assert_array_equal(state.counts, counts_before)
        # The scalar B=1 view rejects the same inputs.
        simulator = StorageSimulator(StorageSystemConfig(), rng=0)
        simulator.reset(list(real_traces)[0])
        with pytest.raises(SimulationError):
            simulator.step(action)

    def test_level_major_roundtrip_preserves_pool(self):
        """CorePool -> level-major arrays -> CorePool is the identity,
        including after migrations scrambled ids across levels."""
        pool = CorePool.create({"NORMAL": 3, "KV": 2, "RV": 2})
        pool.migrate_one(pool.cores[0].level, pool.cores[-1].level, cooldown_intervals=2)
        pool.migrate_one(pool.cores[-1].level, pool.cores[0].level, cooldown_intervals=1)
        ids, cooldowns, counts = pool.to_level_major()
        rebuilt = CorePool.from_level_major(ids, cooldowns, counts)
        assert rebuilt.counts_vector() == pool.counts_vector()
        for original, copy in zip(pool.cores, rebuilt.cores):
            assert original.core_id == copy.core_id
            assert original.level is copy.level
            assert original.migration_cooldown == copy.migration_cooldown
        # Within each level group, ids ascend (the layout invariant the
        # vectorized migration kernel maintains).
        offset = 0
        for count in counts:
            group = ids[offset : offset + count]
            assert list(group) == sorted(group)
            offset += count

    def test_vector_state_maintains_level_major_invariant(self, real_traces):
        """After many random migrations the padded positional arrays still
        hold each level's cores id-sorted with clean sentinel padding."""
        state = VectorSimulatorState(StorageSystemConfig())
        state.reset(list(real_traces)[:2], rngs=[0, 1])
        rng = np.random.default_rng(5)
        sentinel = state._id_sentinel
        assert sentinel >= 2 * state.num_cores
        for _ in range(30):
            if state.done.all():
                break
            actions = rng.integers(0, 7, size=2)
            actions[state.done] = 0
            state.step(actions)
            for slot in range(2):
                counts = state.counts[slot]
                seen = []
                for level in range(3):
                    count = int(counts[level])
                    row = state.pos_ids[slot, level]
                    group = list(row[:count])
                    assert group == sorted(group), (slot, level, row)
                    assert all(id_ == sentinel for id_ in row[count:]), (slot, level, row)
                    assert not state.pos_cooldown[slot, level, count:].any()
                    seen.extend(group)
                assert sorted(seen) == list(range(state.num_cores))
                pool = state.core_pool_view(slot)
                assert pool.counts_vector() == list(counts)

    def test_core_pool_view_is_a_snapshot(self, real_traces):
        state = VectorSimulatorState(StorageSystemConfig())
        state.reset(list(real_traces)[:1], rngs=[0])
        pool = state.core_pool_view(0)
        assert pool.counts_vector() == list(state.counts[0])
        pool.migrate_one(pool.cores[0].level, pool.cores[-1].level)
        # Mutating the snapshot does not write back into the arrays.
        assert state.core_pool_view(0).counts_vector() == list(state.counts[0])


class TestAgentEquivalence:
    """Baseline agents drive the vector env and the sequential env to
    bit-identical episodes for every batch composition."""

    @pytest.mark.parametrize("batch", [1, 4])
    @pytest.mark.parametrize(
        "agent_factory",
        [
            lambda config: DefaultPolicy(),
            lambda config: GreedyUtilizationPolicy(),
            lambda config: ProportionalAllocationPolicy(config),
        ],
        ids=["default", "greedy", "proportional"],
    )
    def test_vector_env_matches_sequential(
        self, system_config, real_traces, batch, agent_factory
    ):
        traces = _batch_traces(real_traces, batch)
        venv = VectorStorageAllocationEnv(system_config, record_metrics=True)
        observations = venv.reset(traces, rngs=list(range(batch)))
        agents = [agent_factory(system_config) for _ in range(batch)]
        for agent in agents:
            agent.reset()
        encoder = venv.observation_encoder
        vector_rewards = [[] for _ in range(batch)]
        while not venv.all_done:
            raw = venv.raw_observations()
            dones = venv.dones
            actions = np.zeros(batch, dtype=np.int64)
            for i in range(batch):
                if not dones[i]:
                    actions[i] = int(agents[i].act(encoder.split_raw(raw[i])))
            result = venv.step(actions)
            for i in range(batch):
                if result.stepped[i]:
                    vector_rewards[i].append(float(result.rewards[i]))

        for i, trace in enumerate(traces):
            env = StorageAllocationEnv(system_config)
            observation = env.reset(trace, rng=i)
            agent = agent_factory(system_config)
            agent.reset()
            rewards = []
            while True:
                step = env.step(agent.act(observation))
                observation = step.observation
                rewards.append(step.reward)
                if step.done:
                    break
            assert env.simulator.makespan == int(
                venv.simulator_state.steps_taken[i]
            )
            assert rewards == vector_rewards[i]


class TestPairwiseFoundations:
    """Pins of the numpy reduction behaviours the kernels rely on."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 8, 9, 12, 15, 16, 31])
    def test_rowwise_sum_matches_vector_sum(self, n):
        rng = np.random.default_rng(n)
        matrix = np.ascontiguousarray(rng.uniform(0.0, 1e6, size=(64, n)))
        np.testing.assert_array_equal(
            matrix.sum(axis=1),
            np.array([matrix[i].sum() for i in range(matrix.shape[0])]),
        )

    @pytest.mark.parametrize("n_max", [1, 4, 7, 8, 12, 15, 20, 40])
    def test_pairwise_sum_ragged_matches_prefix_sums(self, n_max):
        rng = np.random.default_rng(n_max)
        values = rng.uniform(0.0, 1e6, size=(128, n_max))
        lengths = rng.integers(0, n_max + 1, size=128)
        result = pairwise_sum_ragged(values, lengths)
        expected = np.array(
            [values[i, : lengths[i]].sum() for i in range(values.shape[0])]
        )
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("n_max", [0, 1, 4, 7, 8, 12, 15])
    def test_replicated_pairwise_sum_matches_numpy(self, n_max):
        """The uniform-cell fast path's reduction: k copies of one value
        sum exactly like ``np.full(k, v).sum()`` for every k <= 15."""
        rng = np.random.default_rng(n_max)
        values = rng.uniform(0.0, 1e6, size=(256,))
        lengths = rng.integers(0, n_max + 1, size=256)
        result = replicated_pairwise_sum(values, lengths, n_max)
        expected = np.array(
            [np.full(k, v).sum() for v, k in zip(values, lengths)]
        )
        np.testing.assert_array_equal(result, expected)

    def test_replicated_pairwise_sum_matches_ragged_spec(self):
        """Consistency with the general executable spec on constant rows."""
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 1e6, size=(64,))
        lengths = rng.integers(0, 16, size=64)
        tiled = np.tile(values[:, None], (1, 15))
        np.testing.assert_array_equal(
            replicated_pairwise_sum(values, lengths, 15),
            pairwise_sum_ragged(tiled, lengths),
        )

    def test_replicated_pairwise_sum_rejects_wide_rows(self):
        with pytest.raises(SimulationError):
            replicated_pairwise_sum(np.ones(4), np.full(4, 16), 16)

    def test_argsort_of_constant_rows_is_identity(self):
        for n in range(1, 13):
            np.testing.assert_array_equal(
                np.argsort(np.full(n, -40000.0)), np.arange(n)
            )

    def test_rowwise_argsort_matches_vector_argsort(self):
        rng = np.random.default_rng(0)
        values = rng.choice([40000.0, 32000.0, 0.0], size=(200, 9))
        np.testing.assert_array_equal(
            np.argsort(-values, axis=1),
            np.stack([np.argsort(-values[i]) for i in range(values.shape[0])]),
        )

    def test_masked_poisson_matches_scalar_draws(self):
        lam = np.array([0.24, 0.12, 0.48])
        for seed in range(10):
            vector_rng = np.random.default_rng(seed)
            scalar_rng = np.random.default_rng(seed)
            vector_draws = vector_rng.poisson(lam)
            scalar_draws = np.array([scalar_rng.poisson(l) for l in lam])
            np.testing.assert_array_equal(vector_draws, scalar_draws)
            assert vector_rng.integers(1 << 30) == scalar_rng.integers(1 << 30)
