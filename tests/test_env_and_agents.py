"""Tests for the MDP environment (observation/action/reward) and baseline agents."""

import numpy as np
import pytest

from repro.agents import DefaultPolicy, GreedyUtilizationPolicy, HandcraftedFSMPolicy, RandomPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.env.action import ActionSpace
from repro.env.environment import StorageAllocationEnv
from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.env.reward import RewardConfig, compute_step_reward, compute_terminal_reward
from repro.errors import ConfigurationError, EnvironmentError_
from repro.storage.cores import CorePool
from repro.storage.levels import Level
from repro.storage.migration import MigrationAction
from repro.storage.simulator import StorageSystemConfig


class TestObservationEncoder:
    def test_dimension_is_35(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        assert encoder.dimension == OBSERVATION_DIM == 35

    def test_build_and_raw_roundtrip(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 0.5, Level.KV: 0.2, Level.RV: 0.9},
            uniform_interval,
        )
        raw = obs.raw()
        assert raw.shape == (35,)
        rebuilt = encoder.split_raw(raw)
        np.testing.assert_allclose(rebuilt.core_counts, obs.core_counts)
        np.testing.assert_allclose(rebuilt.ratio_vector, obs.ratio_vector)
        assert rebuilt.total_requests == obs.total_requests

    def test_normalized_range(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 1.0, Level.KV: 0.0, Level.RV: 0.5},
            uniform_interval,
        )
        normalized = encoder.normalize(obs)
        assert normalized.shape == (35,)
        assert np.all(np.abs(normalized) <= 1.5)

    def test_capacity_ratio_and_intensities(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 2, Level.RV: 2},
            {Level.NORMAL: 0.5, Level.KV: 0.5, Level.RV: 0.5},
            uniform_interval,
        )
        assert obs.capacity_ratio() == pytest.approx(6 / 4)
        assert obs.read_intensity_kb() > 0
        assert obs.write_intensity_kb() > 0
        total = obs.read_intensity_kb() + obs.write_intensity_kb()
        assert total == pytest.approx(uniform_interval.total_kb(), rel=1e-9)

    def test_split_raw_validation(self, system_config):
        encoder = ObservationEncoder(system_config)
        with pytest.raises(EnvironmentError_):
            encoder.split_raw(np.zeros(10))


class TestActionSpaceAndReward:
    def test_action_space_size(self):
        space = ActionSpace()
        assert space.size == 7
        assert len(space.names()) == 7
        assert space.contains(6) and not space.contains(7)

    def test_valid_mask(self):
        space = ActionSpace()
        pool = CorePool.create({"NORMAL": 2, "KV": 1, "RV": 1}, min_cores_per_level=1)
        mask = space.valid_mask(pool)
        assert mask[int(MigrationAction.NOOP)]
        assert mask[int(MigrationAction.NORMAL_TO_KV)]
        assert not mask[int(MigrationAction.KV_TO_NORMAL)]

    def test_sample_in_range(self):
        space = ActionSpace()
        for _ in range(20):
            assert space.contains(int(space.sample(rng=3)))

    def test_reward_modes(self):
        from repro.storage.metrics import IntervalMetrics

        metrics = IntervalMetrics(
            interval=0,
            action=MigrationAction.NOOP,
            migration_applied=False,
            core_counts={Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            utilization={Level.NORMAL: 1.0, Level.KV: 0.4, Level.RV: 0.6},
            incoming_kb={Level.NORMAL: 100.0, Level.KV: 50.0, Level.RV: 30.0},
            processed_kb={Level.NORMAL: 80.0, Level.KV: 50.0, Level.RV: 30.0},
            backlog_kb={Level.NORMAL: 20.0, Level.KV: 0.0, Level.RV: 0.0},
            capacity_kb={Level.NORMAL: 80.0, Level.KV: 120.0, Level.RV: 120.0},
            cache_miss_rate=0.3,
            idle_cores={Level.NORMAL: 0, Level.KV: 0, Level.RV: 0},
        )
        assert compute_step_reward(RewardConfig(mode="inverse_makespan"), metrics) == 0.0
        assert compute_step_reward(
            RewardConfig(mode="per_step_penalty", step_penalty=1.0), metrics
        ) == -1.0
        backlog = compute_step_reward(
            RewardConfig(mode="backlog_penalty", step_penalty=0.0, backlog_scale=0.1), metrics
        )
        assert backlog == pytest.approx(-2.0)
        delta = compute_step_reward(
            RewardConfig(mode="backlog_delta", step_penalty=0.0, backlog_scale=0.1), metrics
        )
        assert delta == pytest.approx(-2.0)
        balance = compute_step_reward(
            RewardConfig(mode="utilization_balance", step_penalty=0.0, balance_scale=1.0), metrics
        )
        assert balance == pytest.approx(-0.6)
        pressure = compute_step_reward(
            RewardConfig(mode="bottleneck_pressure", step_penalty=0.0, balance_scale=1.0), metrics
        )
        assert pressure == pytest.approx(-(20.0 / 80.0))

    def test_terminal_reward(self):
        config = RewardConfig(mode="inverse_makespan", makespan_scale=100.0)
        assert compute_terminal_reward(config, 50) == pytest.approx(2.0)
        assert compute_terminal_reward(RewardConfig(mode="per_step_penalty"), 50) == 0.0
        with pytest.raises(ConfigurationError):
            compute_terminal_reward(config, 0)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            RewardConfig(mode="nope")


class TestEnvironment:
    def test_reset_returns_observation(self, env, short_trace):
        obs = env.reset(short_trace)
        assert obs.raw().shape == (35,)
        assert env.observation_dim == 35
        assert env.num_actions == 7

    def test_step_before_reset_raises(self, system_config):
        env = StorageAllocationEnv(system_config)
        with pytest.raises(EnvironmentError_):
            env.step(0)

    def test_episode_terminates_and_reward_signs(self, env, short_trace):
        obs = env.reset(short_trace, rng=0)
        total_reward = 0.0
        steps = 0
        done = False
        while not done:
            result = env.step(MigrationAction.NOOP)
            total_reward += result.reward
            done = result.done
            steps += 1
            assert steps < 10_000
        assert steps == env.simulator.makespan
        assert steps >= len(short_trace)
        assert total_reward < 0  # per-step penalty mode

    def test_step_after_done_raises(self, env, short_trace):
        env.reset(short_trace, rng=0)
        while True:
            if env.step(0).done:
                break
        with pytest.raises(EnvironmentError_):
            env.step(0)

    def test_info_contents(self, env, short_trace):
        env.reset(short_trace, rng=0)
        result = env.step(MigrationAction.NORMAL_TO_KV)
        assert result.info["action_name"] == "N=>K"
        assert "interval_metrics" in result.info
        assert result.normalized_observation.shape == (35,)

    def test_valid_action_mask(self, env, short_trace):
        env.reset(short_trace, rng=0)
        mask = env.valid_action_mask()
        assert mask.shape == (7,)
        assert mask[0]

    def test_matched_seeds_reproducible(self, system_config, short_trace):
        makespans = []
        for _ in range(2):
            env = StorageAllocationEnv(system_config, rng=1)
            env.reset(short_trace, rng=5)
            while True:
                if env.step(0).done:
                    break
            makespans.append(env.simulator.makespan)
        assert makespans[0] == makespans[1]


class TestBaselineAgents:
    def _final_makespan(self, agent, env, trace, seed=0):
        obs = env.reset(trace, rng=seed)
        agent.reset()
        while True:
            result = env.step(agent.act(obs))
            obs = result.observation
            if result.done:
                return env.simulator.makespan

    def test_default_always_noop(self, env, short_trace):
        agent = DefaultPolicy()
        obs = env.reset(short_trace)
        assert agent.act(obs) is MigrationAction.NOOP

    def test_random_policy_in_range(self, env, short_trace):
        agent = RandomPolicy(rng=0)
        obs = env.reset(short_trace)
        actions = {int(agent.act(obs)) for _ in range(50)}
        assert actions <= set(range(7))
        assert len(actions) > 1

    def test_handcrafted_reacts_to_imbalance(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        agent = HandcraftedFSMPolicy(gap_threshold=0.1, cooldown=0)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 0.95, Level.KV: 0.2, Level.RV: 0.5},
            uniform_interval,
        )
        action = agent.act(obs)
        assert action.destination is Level.NORMAL
        assert action.source is Level.KV

    def test_handcrafted_noop_when_balanced(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        agent = HandcraftedFSMPolicy(gap_threshold=0.2, cooldown=0)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 0.5, Level.KV: 0.45, Level.RV: 0.55},
            uniform_interval,
        )
        assert agent.act(obs) is MigrationAction.NOOP

    def test_handcrafted_cooldown(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        agent = HandcraftedFSMPolicy(gap_threshold=0.1, cooldown=2)
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 0.95, Level.KV: 0.1, Level.RV: 0.5},
            uniform_interval,
        )
        assert agent.act(obs) is not MigrationAction.NOOP
        assert agent.act(obs) is MigrationAction.NOOP  # cooling down
        assert agent.act(obs) is MigrationAction.NOOP
        assert agent.act(obs) is not MigrationAction.NOOP

    def test_handcrafted_respects_min_cores(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        agent = HandcraftedFSMPolicy(gap_threshold=0.1, cooldown=0)
        obs = encoder.build(
            {Level.NORMAL: 10, Level.KV: 1, Level.RV: 1},
            {Level.NORMAL: 0.2, Level.KV: 0.9, Level.RV: 0.3},
            uniform_interval,
        )
        action = agent.act(obs)
        assert action.source is not Level.KV or action is MigrationAction.NOOP

    def test_greedy_moves_toward_hottest(self, system_config, uniform_interval):
        encoder = ObservationEncoder(system_config)
        agent = GreedyUtilizationPolicy()
        obs = encoder.build(
            {Level.NORMAL: 6, Level.KV: 3, Level.RV: 3},
            {Level.NORMAL: 0.3, Level.KV: 0.9, Level.RV: 0.6},
            uniform_interval,
        )
        assert agent.act(obs).destination is Level.KV

    def test_proportional_targets_demand(self, system_config, uniform_interval):
        agent = ProportionalAllocationPolicy(system_config)
        encoder = ObservationEncoder(system_config)
        obs = encoder.build(
            {Level.NORMAL: 4, Level.KV: 4, Level.RV: 4},
            {Level.NORMAL: 0.9, Level.KV: 0.2, Level.RV: 0.2},
            uniform_interval,
        )
        target = agent.target_allocation(obs)
        assert target[0] > target[1] and target[0] > target[2]
        action = agent.act(obs)
        assert action is MigrationAction.NOOP or action.destination is Level.NORMAL

    def test_all_baselines_finish_episode(self, system_config, env, short_trace):
        for agent in [
            DefaultPolicy(),
            HandcraftedFSMPolicy(),
            GreedyUtilizationPolicy(),
            ProportionalAllocationPolicy(system_config),
            RandomPolicy(rng=1),
        ]:
            makespan = self._final_makespan(agent, env, short_trace, seed=2)
            assert makespan >= len(short_trace)

    def test_handcrafted_validation(self):
        with pytest.raises(ConfigurationError):
            HandcraftedFSMPolicy(gap_threshold=2.0)
        with pytest.raises(ConfigurationError):
            HandcraftedFSMPolicy(cooldown=-1)
