"""Tests for repro.nn: Module, Linear, activations, Sequential, state dicts."""

import numpy as np
import pytest

from repro.autograd import check_gradients
from repro.autograd.tensor import Tensor
from repro.errors import SerializationError, ShapeError
from repro.nn import Linear, Module, Parameter, ReLU, Sequential, Sigmoid, Tanh, Identity
from repro.nn import init


class TestParameterDiscovery:
    def test_linear_has_weight_and_bias(self):
        layer = Linear(3, 2, rng=0)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 3 * 2 + 2

    def test_nested_modules(self):
        model = Sequential(Linear(4, 3, rng=0), Tanh(), Linear(3, 2, rng=1))
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names and "layers.2.bias" in names
        assert len(model.parameters()) == 4

    def test_zero_grad_clears(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones(2))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_flags_propagate(self):
        model = Sequential(Linear(2, 2, rng=0), ReLU())
        model.eval()
        assert not model.training
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training


class TestStateDict:
    def test_roundtrip(self):
        a = Linear(3, 2, rng=0)
        b = Linear(3, 2, rng=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_missing_key_raises(self):
        a = Linear(3, 2, rng=0)
        state = a.state_dict()
        state.pop("bias")
        with pytest.raises(SerializationError):
            Linear(3, 2).load_state_dict(state)

    def test_shape_mismatch_raises(self):
        a = Linear(3, 2, rng=0)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(SerializationError):
            Linear(3, 2).load_state_dict(state)

    def test_copy_from(self):
        a, b = Linear(2, 2, rng=0), Linear(2, 2, rng=3)
        b.copy_from(a)
        np.testing.assert_allclose(a.bias.data, b.bias.data)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=0)
        assert layer(Tensor(np.zeros(5))).shape == (3,)
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_wrong_input_dim_raises(self):
        with pytest.raises(ShapeError):
            Linear(4, 2, rng=0)(Tensor(np.zeros(3)))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ShapeError):
            Linear(0, 2)

    def test_gradients(self):
        layer = Linear(3, 2, rng=0)
        x = np.random.default_rng(0).random((4, 3))
        check_gradients(
            lambda: (layer(Tensor(x)) ** 2).sum(),
            dict(layer.named_parameters()),
        )

    def test_known_affine_result(self):
        layer = Linear(2, 1, rng=0)
        layer.weight.data[...] = np.array([[2.0], [3.0]])
        layer.bias.data[...] = np.array([1.0])
        out = layer(Tensor([1.0, 1.0]))
        assert out.numpy()[0] == pytest.approx(6.0)


class TestActivationsAndSequential:
    def test_activation_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(Tanh()(x).numpy(), np.tanh(x.data))
        np.testing.assert_allclose(Sigmoid()(x).numpy(), 1 / (1 + np.exp(-x.data)))
        np.testing.assert_allclose(ReLU()(x).numpy(), [0.0, 0.0, 2.0])
        np.testing.assert_allclose(Identity()(x).numpy(), x.data)

    def test_sequential_composition(self):
        model = Sequential(Linear(3, 4, rng=0), Tanh(), Linear(4, 2, rng=1))
        out = model(Tensor(np.ones(3)))
        assert out.shape == (2,)
        assert len(model) == 3
        assert isinstance(model[1], Tanh)

    def test_sequential_gradients(self):
        model = Sequential(Linear(3, 4, rng=0), ReLU(), Linear(4, 1, rng=1))
        x = np.random.default_rng(1).random((5, 3)) + 0.1
        check_gradients(
            lambda: model(Tensor(x)).sum(), dict(model.named_parameters())
        )


class TestInit:
    def test_xavier_bounds(self):
        w = init.xavier_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert w.shape == (100, 50)

    def test_he_bounds(self):
        w = init.he_uniform((64, 32), rng=0)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 64))

    def test_orthogonal_is_orthonormal(self):
        w = init.orthogonal((16, 16), rng=0)
        np.testing.assert_allclose(w @ w.T, np.eye(16), atol=1e-8)

    def test_orthogonal_rectangular(self):
        w = init.orthogonal((8, 4), rng=0)
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-8)

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0)
