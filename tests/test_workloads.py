"""Tests for workload profiles, the generator, the real-trace sampler and trace IO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.storage.iorequest import NUM_IO_TYPES
from repro.storage.simulator import StorageSystemConfig
from repro.workloads import (
    GeneratorConfig,
    RealTraceSampler,
    SamplerConfig,
    StandardWorkloadGenerator,
    STANDARD_PROFILES,
    get_profile,
    load_trace,
    load_trace_bundle,
    profile_names,
    save_trace,
    save_trace_bundle,
)
from repro.workloads.spec import IntensityModel, WorkloadProfile


class TestProfiles:
    def test_twelve_standard_profiles(self):
        assert len(STANDARD_PROFILES) == 12
        assert len(profile_names()) == 12

    def test_lookup(self):
        assert get_profile("oltp_database").name == "oltp_database"
        with pytest.raises(WorkloadError):
            get_profile("does_not_exist")

    def test_base_ratios_sum_to_one(self):
        for profile in STANDARD_PROFILES.values():
            assert profile.base_ratios().sum() == pytest.approx(1.0)
            assert profile.base_ratios().shape == (NUM_IO_TYPES,)

    def test_read_fraction_respected(self):
        for profile in STANDARD_PROFILES.values():
            read_share = profile.base_ratios()[:7].sum()
            assert read_share == pytest.approx(profile.read_fraction, abs=1e-9)

    def test_profiles_are_diverse_in_write_fraction(self):
        fractions = [p.write_byte_fraction() for p in STANDARD_PROFILES.values()]
        assert min(fractions) < 0.2
        assert max(fractions) > 0.6

    def test_backup_is_write_heavy_streaming_is_read_heavy(self):
        assert get_profile("backup").write_byte_fraction() > 0.7
        assert get_profile("video_streaming").write_byte_fraction() < 0.15

    def test_profile_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad",
                description="",
                read_fraction=1.5,
                read_size_weights=[1] * 7,
                write_size_weights=[1] * 7,
            )
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad",
                description="",
                read_fraction=0.5,
                read_size_weights=[1] * 6,
                write_size_weights=[1] * 7,
            )

    def test_as_dict_roundtrippable_fields(self):
        payload = get_profile("vdi").as_dict()
        assert payload["name"] == "vdi"
        assert len(payload["read_size_weights"]) == 7


class TestIntensityModel:
    def test_constant(self):
        model = IntensityModel(base=1.0, amplitude=0.0)
        assert model.level(0) == model.level(13) == 1.0

    def test_periodicity(self):
        model = IntensityModel(base=1.0, amplitude=0.5, period=24)
        np.testing.assert_allclose(model.level(0), model.level(24), atol=1e-12)

    def test_trend(self):
        model = IntensityModel(base=1.0, amplitude=0.0, trend=0.01)
        assert model.level(100) == pytest.approx(2.0)

    def test_never_negative(self):
        model = IntensityModel(base=0.1, amplitude=1.0, trend=-0.05)
        assert all(model.level(t) >= 0.0 for t in range(200))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            IntensityModel(base=0.0)
        with pytest.raises(WorkloadError):
            IntensityModel(amplitude=2.0)


class TestGenerator:
    def test_trace_length_and_metadata(self, generator):
        trace = generator.generate("oltp_database", duration=30, rng=0)
        assert len(trace) == 30
        assert trace.metadata["kind"] == "standard"
        assert trace.metadata["profile"] == "oltp_database"

    def test_suite_covers_all_profiles(self, standard_suite):
        assert set(standard_suite) == set(profile_names())

    def test_calibration_hits_target_load(self):
        cfg = StorageSystemConfig(idle_rate=0.0)
        generator = StandardWorkloadGenerator(cfg, GeneratorConfig(target_load=0.8), rng=0)
        profile = get_profile("file_server")
        requests = generator.nominal_requests_per_interval(profile)
        payload = requests * profile.mean_request_size_kb()
        write_fraction = profile.write_byte_fraction()
        multiplier = (
            1.0
            + write_fraction * (cfg.kv_write_factor + cfg.rv_write_factor)
            + (1 - write_fraction) * 0.3 * (cfg.kv_read_miss_factor + cfg.rv_read_miss_factor)
        )
        assert payload * multiplier == pytest.approx(0.8 * cfg.total_capability_kb(), rel=1e-6)

    def test_deterministic_with_seed(self, system_config):
        a = StandardWorkloadGenerator(system_config, rng=3).generate("vdi", duration=10, rng=9)
        b = StandardWorkloadGenerator(system_config, rng=3).generate("vdi", duration=10, rng=9)
        np.testing.assert_allclose(
            a.to_arrays()["total_requests"], b.to_arrays()["total_requests"]
        )

    def test_invalid_duration(self, generator):
        with pytest.raises(WorkloadError):
            generator.generate("vdi", duration=0)

    def test_mix_jitter_varies_ratios(self, generator):
        trace = generator.generate("virtualization", duration=10, rng=5)
        ratios = trace.to_arrays()["ratios"]
        assert not np.allclose(ratios[0], ratios[1])

    def test_target_load_validation(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(target_load=0.0).validate()


class TestSampler:
    def test_sample_trace_length_within_bounds(self, standard_suite):
        config = SamplerConfig(snippets_per_trace=3, min_snippet_length=5, max_snippet_length=10)
        sampler = RealTraceSampler(standard_suite, config, rng=0)
        trace = sampler.sample_trace("real/x", rng=1)
        assert 15 <= len(trace) <= 30
        assert trace.metadata["kind"] == "real"
        assert len(trace.metadata["snippets"]) == 3

    def test_sample_many_count(self, standard_suite):
        sampler = RealTraceSampler(standard_suite, rng=0)
        traces = sampler.sample_many(5, rng=2)
        assert len(traces) == 5
        assert len({t.name for t in traces}) == 5

    def test_snippets_come_from_standard_traces(self, standard_suite):
        sampler = RealTraceSampler(standard_suite, rng=0)
        trace = sampler.sample_trace("real/y", rng=3)
        sources = {s["source"] for s in trace.metadata["snippets"]}
        assert sources <= {t.name for t in standard_suite.values()}

    def test_empty_input_rejected(self):
        with pytest.raises(WorkloadError):
            RealTraceSampler([])

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            SamplerConfig(min_snippet_length=10, max_snippet_length=5).validate()
        with pytest.raises(WorkloadError):
            SamplerConfig(snippets_per_trace=0).validate()

    def test_invalid_count(self, standard_suite):
        with pytest.raises(WorkloadError):
            RealTraceSampler(standard_suite, rng=0).sample_many(0)

    @pytest.mark.parametrize("seed", [0, 1, 7, 99, 12345])
    def test_sampled_traces_are_valid_across_seeds(self, seed, standard_suite):
        sampler = RealTraceSampler(standard_suite, rng=seed)
        trace = sampler.sample_trace("real/prop", rng=seed)
        for interval in trace:
            assert interval.ratios.sum() == pytest.approx(1.0)
            assert interval.total_requests >= 0


class TestTraceIO:
    def test_single_roundtrip(self, tmp_path, real_traces):
        path = tmp_path / "trace.json"
        save_trace(path, real_traces[0])
        loaded = load_trace(path)
        assert loaded.name == real_traces[0].name
        assert len(loaded) == len(real_traces[0])
        np.testing.assert_allclose(
            loaded.to_arrays()["ratios"], real_traces[0].to_arrays()["ratios"]
        )

    def test_bundle_roundtrip(self, tmp_path, real_traces):
        path = tmp_path / "bundle.json"
        save_trace_bundle(path, real_traces)
        loaded = load_trace_bundle(path)
        assert [t.name for t in loaded] == [t.name for t in real_traces]

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{}")
        with pytest.raises(WorkloadError):
            load_trace(path)
