"""Shape, masking and lockstep-semantics tests for the vectorized environment."""

import numpy as np
import pytest

from repro.env.environment import StorageAllocationEnv
from repro.env.observation import OBSERVATION_DIM
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import EnvironmentError_
from repro.storage.migration import NUM_ACTIONS


@pytest.fixture
def vector_env(system_config):
    return VectorStorageAllocationEnv(
        system_config, RewardConfig(mode="per_step_penalty")
    )


class TestVectorReset:
    def test_reset_returns_batched_observations(self, vector_env, real_traces):
        observations = vector_env.reset(real_traces, rngs=list(range(len(real_traces))))
        assert observations.shape == (len(real_traces), OBSERVATION_DIM)
        assert vector_env.num_envs == len(real_traces)
        assert not vector_env.all_done
        assert vector_env.raw_observations().shape == observations.shape

    def test_reset_matches_sequential_reset(self, system_config, vector_env, real_traces):
        observations = vector_env.reset(real_traces, rngs=[7] * len(real_traces))
        env = StorageAllocationEnv(system_config, reward_config=RewardConfig(mode="per_step_penalty"))
        for i, trace in enumerate(real_traces):
            first = env.reset(trace, rng=7)
            np.testing.assert_array_equal(
                observations[i], env.observation_encoder.normalize(first)
            )
            np.testing.assert_array_equal(vector_env.raw_observations()[i], first.raw())

    def test_reset_validation(self, vector_env, real_traces):
        with pytest.raises(EnvironmentError_):
            vector_env.reset([])
        with pytest.raises(EnvironmentError_):
            vector_env.reset(real_traces, rngs=[0])

    def test_resize_between_resets(self, vector_env, real_traces):
        vector_env.reset(real_traces)
        assert vector_env.num_envs == len(real_traces)
        vector_env.reset(real_traces[:2])
        assert vector_env.num_envs == 2


class TestVectorStep:
    def test_step_shapes(self, vector_env, real_traces):
        vector_env.reset(real_traces, rngs=list(range(len(real_traces))))
        batch = len(real_traces)
        result = vector_env.step(np.zeros(batch, dtype=int))
        assert result.observations.shape == (batch, OBSERVATION_DIM)
        assert result.raw_observations.shape == (batch, OBSERVATION_DIM)
        assert result.rewards.shape == (batch,)
        assert result.dones.shape == (batch,)
        assert result.stepped.all()

    def test_step_before_reset_raises(self, vector_env):
        with pytest.raises(EnvironmentError_):
            vector_env.step(np.zeros(1, dtype=int))

    def test_wrong_action_shape_raises(self, vector_env, real_traces):
        vector_env.reset(real_traces)
        with pytest.raises(EnvironmentError_):
            vector_env.step(np.zeros(len(real_traces) + 1, dtype=int))

    def test_heterogeneous_lengths_auto_mask(self, vector_env, real_traces):
        """Shorter episodes finish first and are frozen while others drain."""
        batch = len(real_traces)
        vector_env.reset(real_traces, rngs=list(range(batch)))
        makespans = np.zeros(batch, dtype=int)
        frozen_rows = {}
        steps = 0
        while not vector_env.all_done:
            result = vector_env.step(np.zeros(batch, dtype=int))
            steps += 1
            assert steps < 10_000
            for i in range(batch):
                if result.newly_done[i]:
                    makespans[i] = result.makespans[i]
                    frozen_rows[i] = result.observations[i].copy()
                elif result.dones[i]:
                    # Finished slots keep their final observation row and
                    # contribute zero reward.
                    np.testing.assert_array_equal(result.observations[i], frozen_rows[i])
                    assert result.rewards[i] == 0.0
                    assert not result.stepped[i]
        # Episodes have different lengths (heterogeneous traces) and every
        # makespan is at least its trace duration.
        assert len(set(makespans.tolist())) > 1
        for i, trace in enumerate(real_traces):
            assert makespans[i] >= len(trace)

    def test_rewards_match_sequential(self, system_config, vector_env, real_traces):
        batch = len(real_traces)
        vector_env.reset(real_traces, rngs=list(range(batch)))
        env = StorageAllocationEnv(system_config, reward_config=RewardConfig(mode="per_step_penalty"))
        for i, trace in enumerate(real_traces):
            env.reset(trace, rng=i)
        result = vector_env.step(np.ones(batch, dtype=int))
        for i, trace in enumerate(real_traces):
            env.reset(trace, rng=i)
            step = env.step(1)
            assert step.reward == result.rewards[i]
            np.testing.assert_array_equal(result.raw_observations[i], step.observation.raw())


class TestVectorMasks:
    def test_mask_shape_and_initial_legality(self, vector_env, real_traces):
        vector_env.reset(real_traces)
        masks = vector_env.valid_action_masks()
        assert masks.shape == (len(real_traces), NUM_ACTIONS)
        assert masks[:, 0].all()  # noop always legal

    def test_masks_match_sequential_env(self, system_config, vector_env, real_traces):
        vector_env.reset(real_traces, rngs=list(range(len(real_traces))))
        env = StorageAllocationEnv(system_config, reward_config=RewardConfig(mode="per_step_penalty"))
        masks = vector_env.valid_action_masks()
        for i, trace in enumerate(real_traces):
            env.reset(trace, rng=i)
            np.testing.assert_array_equal(masks[i], env.valid_action_mask())

    def test_finished_slots_are_noop_only(self, vector_env, real_traces):
        batch = len(real_traces)
        vector_env.reset(real_traces, rngs=list(range(batch)))
        while not vector_env.all_done:
            result = vector_env.step(np.zeros(batch, dtype=int))
        masks = vector_env.valid_action_masks()
        assert masks[:, 0].all()
        assert not masks[:, 1:].any()

    def test_sequential_step_info_contains_decision_mask(self, env, short_trace):
        env.reset(short_trace, rng=0)
        mask_before = env.valid_action_mask()
        result = env.step(0)
        np.testing.assert_array_equal(result.info["valid_action_mask"], mask_before)


class TestBatchedNormalize:
    def test_normalize_batch_matches_per_row(self, env, short_trace):
        observation = env.reset(short_trace, rng=0)
        rows = []
        expected = []
        for action in (0, 1, 2):
            step = env.step(action)
            rows.append(step.observation.raw())
            expected.append(env.observation_encoder.normalize(step.observation))
        batch = env.observation_encoder.normalize_batch(np.stack(rows))
        np.testing.assert_array_equal(batch, np.stack(expected))

    def test_normalize_batch_validates_shape(self, env):
        with pytest.raises(EnvironmentError_):
            env.observation_encoder.normalize_batch(np.zeros((3, OBSERVATION_DIM + 1)))


class TestMetricsModes:
    def test_metrics_recorded_when_enabled(self, system_config, real_traces):
        venv = VectorStorageAllocationEnv(
            system_config, RewardConfig(mode="per_step_penalty"), record_metrics=True
        )
        venv.reset(real_traces[:2], rngs=[0, 1])
        while not venv.all_done:
            venv.step(np.zeros(2, dtype=int))
        for episode, makespan in zip(venv.episode_metrics(), venv._makespans):
            assert episode.makespan == makespan
            assert len(episode.intervals) == makespan

    def test_metrics_free_mode_still_tracks_makespan(self, system_config, real_traces):
        venv = VectorStorageAllocationEnv(
            system_config, RewardConfig(mode="per_step_penalty"), record_metrics=False
        )
        venv.reset(real_traces[:2], rngs=[0, 1])
        while not venv.all_done:
            result = venv.step(np.zeros(2, dtype=int))
        assert (result.makespans >= np.array([len(t) for t in real_traces[:2]])).all()
        for episode in venv.episode_metrics():
            assert len(episode.intervals) == 0  # nothing materialised
