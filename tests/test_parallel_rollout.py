"""Seeded equivalence of the multi-process sharded collector.

The contract under test: episode ``i`` of a collection always consumes
rng streams ``derive_episode_streams(base_seed, N)[i]``, so the merged
result of :class:`ParallelRolloutCollector` is bit-identical to the
sequential reference collector and to one lockstep batch — regardless of
worker count or shard layout.
"""

import numpy as np
import pytest

from repro.drl.a2c import A2CConfig, A2CTrainer
from repro.drl.parallel import ParallelRolloutCollector, shard_indices
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import (
    BatchedRolloutCollector,
    RolloutCollector,
    derive_episode_streams,
)
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError, TrainingError


@pytest.fixture
def reward_config():
    return RewardConfig(mode="per_step_penalty")


def _assert_identical(reference, sharded):
    assert reference.trace_name == sharded.trace_name
    assert len(reference) == len(sharded)
    assert reference.makespan == sharded.makespan
    assert reference.truncated == sharded.truncated
    np.testing.assert_array_equal(reference.observations(), sharded.observations())
    np.testing.assert_array_equal(
        reference.raw_observations(), sharded.raw_observations()
    )
    np.testing.assert_array_equal(
        reference.hidden_states_after(), sharded.hidden_states_after()
    )
    np.testing.assert_array_equal(reference.actions(), sharded.actions())
    np.testing.assert_array_equal(reference.rewards(), sharded.rewards())
    np.testing.assert_array_equal(
        reference.value_estimates(), sharded.value_estimates()
    )


class TestShardIndices:
    def test_balanced_and_ordered(self):
        shards = shard_indices(10, 3)
        assert shards == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [i for shard in shards for i in shard] == list(range(10))

    def test_more_shards_than_items(self):
        assert shard_indices(3, 8) == [[0], [1], [2]]

    def test_exact_multiple(self):
        assert shard_indices(4, 2) == [[0, 1], [2, 3]]

    @pytest.mark.parametrize("count,num_shards", [(0, 2), (-1, 2), (4, 0)])
    def test_invalid_arguments(self, count, num_shards):
        with pytest.raises(TrainingError):
            shard_indices(count, num_shards)

    @pytest.mark.parametrize("count,num_shards", [(7, 2), (16, 5), (5, 5), (9, 4)])
    def test_full_coverage(self, count, num_shards):
        shards = shard_indices(count, num_shards)
        assert [i for shard in shards for i in shard] == list(range(count))
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1


class TestParallelEquivalence:
    @pytest.mark.parametrize("epsilon,greedy", [(0.0, True), (0.1, False)])
    def test_two_workers_match_sequential_reference(
        self, system_config, reward_config, real_traces, tiny_policy, epsilon, greedy
    ):
        """The acceptance-criterion test: 2 workers == sequential, bit for bit."""
        base_seed = 1234
        parallel = ParallelRolloutCollector(
            system_config, reward_config, num_workers=2
        ).collect(
            tiny_policy, real_traces, base_seed=base_seed, epsilon=epsilon, greedy=greedy
        )
        sequential = RolloutCollector(
            StorageAllocationEnv(system_config, reward_config=reward_config)
        )
        episode_rngs, action_rngs = derive_episode_streams(base_seed, len(real_traces))
        for i, trace in enumerate(real_traces):
            reference = sequential.collect(
                tiny_policy,
                trace,
                epsilon=epsilon,
                greedy=greedy,
                episode_seed=episode_rngs[i],
                action_rng=action_rngs[i],
            )
            _assert_identical(reference, parallel[i])

    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_worker_count_never_changes_results(
        self, system_config, reward_config, real_traces, tiny_policy, num_workers
    ):
        base_seed = 77
        episode_rngs, action_rngs = derive_episode_streams(base_seed, len(real_traces))
        batched = BatchedRolloutCollector(
            VectorStorageAllocationEnv(system_config, reward_config)
        ).collect_batch(
            tiny_policy, real_traces, greedy=True,
            episode_rngs=episode_rngs, action_rngs=action_rngs,
        )
        parallel = ParallelRolloutCollector(
            system_config, reward_config, num_workers=num_workers
        ).collect(tiny_policy, real_traces, base_seed=base_seed, greedy=True)
        assert len(parallel) == len(batched)
        for reference, sharded in zip(batched, parallel):
            _assert_identical(reference, sharded)

    def test_empty_traces_collects_nothing(self, system_config, tiny_policy):
        """Zero episodes is a no-op, not an error: no shards are created."""
        collector = ParallelRolloutCollector(system_config, num_workers=2)
        assert collector.collect(tiny_policy, [], base_seed=0) == []

    def test_fewer_episodes_than_workers_matches_batched(
        self, system_config, real_traces, tiny_policy
    ):
        """Episode count below the worker count must shrink the shard
        layout (never create empty shards) and keep the merge
        bit-identical to the lockstep reference."""
        traces = list(real_traces)[:3]
        reward_config = RewardConfig(mode="per_step_penalty")
        episode_rngs, action_rngs = derive_episode_streams(17, len(traces))
        reference = BatchedRolloutCollector(
            VectorStorageAllocationEnv(system_config, reward_config)
        ).collect_batch(
            tiny_policy, traces, episode_rngs=episode_rngs, action_rngs=action_rngs
        )
        collector = ParallelRolloutCollector(
            system_config, reward_config, num_workers=8
        )
        sharded = collector.collect(tiny_policy, traces, base_seed=17)
        assert len(sharded) == len(reference)
        for expected, actual in zip(reference, sharded):
            _assert_identical(expected, actual)

    def test_single_episode_many_workers(self, system_config, real_traces, tiny_policy):
        collector = ParallelRolloutCollector(system_config, num_workers=4)
        trajectories = collector.collect(tiny_policy, list(real_traces)[:1], base_seed=3)
        assert len(trajectories) == 1
        assert len(trajectories[0]) > 0

    def test_invalid_worker_count_rejected(self, system_config):
        with pytest.raises(TrainingError):
            ParallelRolloutCollector(system_config, num_workers=0)

    def test_worker_failure_is_attributed_to_its_shard(
        self, system_config, real_traces
    ):
        """A crash inside a worker surfaces as TrainingError naming the shard."""
        bad_policy = RecurrentPolicyValueNet(
            PolicyConfig(observation_dim=5, hidden_size=8), rng=0
        )
        collector = ParallelRolloutCollector(system_config, num_workers=2)
        with pytest.raises(TrainingError, match=r"rollout shard \d"):
            collector.collect(bad_policy, real_traces, base_seed=0)


class TestChunkedCollectionDeterminism:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, None])
    def test_collect_many_base_seed_independent_of_chunking(
        self, system_config, reward_config, real_traces, tiny_policy, batch_size
    ):
        """With a base seed, chunking (incl. B=1 and partial final chunks)
        never changes the trajectories."""
        collector = BatchedRolloutCollector(
            VectorStorageAllocationEnv(system_config, reward_config)
        )
        reference = collector.collect_many(
            tiny_policy, real_traces, greedy=True, base_seed=5
        )
        chunked = collector.collect_many(
            tiny_policy, real_traces, greedy=True, batch_size=batch_size, base_seed=5
        )
        assert len(chunked) == len(real_traces)
        for ref, got in zip(reference, chunked):
            _assert_identical(ref, got)


class TestParallelTraining:
    def test_rollout_workers_bit_identical_to_batched_training(
        self, system_config, reward_config, real_traces
    ):
        """A2C with rollout_workers=2 reproduces the in-process batched run."""
        histories = []
        policies = []
        for workers in (1, 2):
            env = StorageAllocationEnv(system_config, reward_config=reward_config)
            policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=3)
            trainer = A2CTrainer(
                policy, env,
                A2CConfig(episodes_per_epoch=3, n_step=4, rollout_workers=workers),
                rng=0,
            )
            histories.append(trainer.train(real_traces[:2], epochs=2))
            policies.append(policy)
        reference, parallel = policies
        for name, value in reference.state_dict().items():
            np.testing.assert_array_equal(value, parallel.state_dict()[name], err_msg=name)
        for ref_record, par_record in zip(histories[0].records, histories[1].records):
            assert ref_record.trace_name == par_record.trace_name
            assert ref_record.makespan == par_record.makespan
            assert ref_record.total_reward == par_record.total_reward
            assert ref_record.policy_loss == par_record.policy_loss

    def test_rollout_workers_validation(self):
        with pytest.raises(ConfigurationError):
            A2CConfig(rollout_workers=0)
        with pytest.raises(ConfigurationError):
            A2CConfig(rollout_workers=2, use_batched_rollouts=False)

    def test_explicit_vector_env_rejected_with_workers(
        self, system_config, reward_config
    ):
        """Workers rebuild default vector envs, so an explicit one (whose
        reward/cache config could differ) must be refused, not ignored."""
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=8), rng=0)
        with pytest.raises(ConfigurationError, match="vector_env"):
            A2CTrainer(
                policy, env, A2CConfig(rollout_workers=2),
                vector_env=VectorStorageAllocationEnv(system_config, reward_config),
            )
