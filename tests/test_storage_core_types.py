"""Tests for IO types, levels, cores, cache models and migration actions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.storage.cache import ConstantCacheModel, WorkingSetCacheModel
from repro.storage.cores import Core, CorePool
from repro.storage.iorequest import NUM_IO_TYPES, IOKind, IORequestType, standard_io_types
from repro.storage.levels import LEVELS, Level
from repro.storage.migration import (
    NUM_ACTIONS,
    MigrationAction,
    action_from_levels,
    action_name,
    all_actions,
    parse_action,
)
from repro.storage.workload import WorkloadInterval


class TestIORequestTypes:
    def test_there_are_fourteen(self):
        types = standard_io_types()
        assert len(types) == NUM_IO_TYPES == 14

    def test_half_reads_half_writes(self):
        types = standard_io_types()
        assert sum(t.is_read for t in types) == 7
        assert sum(t.is_write for t in types) == 7

    def test_indices_are_contiguous(self):
        assert [t.index for t in standard_io_types()] == list(range(14))

    def test_signed_size(self):
        read = IORequestType(0, 8.0, IOKind.READ)
        write = IORequestType(1, 8.0, IOKind.WRITE)
        assert read.signed_size == 8.0
        assert write.signed_size == -8.0

    def test_label(self):
        assert IORequestType(0, 64.0, IOKind.READ).label == "64K-read"

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            IORequestType(0, 0.0, IOKind.READ)


class TestLevels:
    def test_canonical_order(self):
        assert LEVELS == (Level.NORMAL, Level.KV, Level.RV)

    def test_index(self):
        assert Level.NORMAL.index == 0
        assert Level.RV.index == 2


class TestCoreAndPool:
    def test_create_counts(self):
        pool = CorePool.create({"NORMAL": 6, "KV": 3, "RV": 3})
        assert pool.total_cores == 12
        assert pool.counts_vector() == [6, 3, 3]

    def test_create_rejects_below_minimum(self):
        with pytest.raises(SimulationError):
            CorePool.create({"NORMAL": 5, "KV": 0, "RV": 1}, min_cores_per_level=1)

    def test_migrate_moves_one_core(self):
        pool = CorePool.create({"NORMAL": 4, "KV": 2, "RV": 2})
        core = pool.migrate_one(Level.NORMAL, Level.KV)
        assert core is not None and core.level is Level.KV
        assert pool.counts_vector() == [3, 3, 2]

    def test_migrate_respects_minimum(self):
        pool = CorePool.create({"NORMAL": 2, "KV": 1, "RV": 1}, min_cores_per_level=1)
        assert pool.migrate_one(Level.KV, Level.NORMAL) is None
        assert pool.counts_vector() == [2, 1, 1]

    def test_migration_penalty_decays(self):
        pool = CorePool.create({"NORMAL": 3, "KV": 2, "RV": 2})
        core = pool.migrate_one(Level.NORMAL, Level.RV, cooldown_intervals=2)
        assert core.is_penalized
        pool.tick()
        assert core.migration_cooldown == 1
        pool.tick()
        assert not core.is_penalized

    def test_migrate_prefers_unpenalized_core(self):
        pool = CorePool.create({"NORMAL": 3, "KV": 2, "RV": 2})
        first = pool.migrate_one(Level.NORMAL, Level.KV, cooldown_intervals=3)
        second = pool.migrate_one(Level.KV, Level.NORMAL, cooldown_intervals=3)
        assert second.core_id != first.core_id

    def test_core_migrate_to_same_level_raises(self):
        core = Core(core_id=0, level=Level.KV)
        with pytest.raises(SimulationError):
            core.migrate(Level.KV)

    def test_clone_is_independent(self):
        pool = CorePool.create({"NORMAL": 3, "KV": 2, "RV": 2})
        clone = pool.clone()
        pool.migrate_one(Level.NORMAL, Level.KV)
        assert clone.counts_vector() == [3, 2, 2]

    def test_can_migrate(self):
        pool = CorePool.create({"NORMAL": 3, "KV": 1, "RV": 2})
        assert pool.can_migrate(Level.NORMAL, Level.KV)
        assert not pool.can_migrate(Level.KV, Level.NORMAL)
        assert not pool.can_migrate(Level.KV, Level.KV)


class TestCacheModels:
    def _interval(self, requests=1000.0):
        ratios = np.full(NUM_IO_TYPES, 1.0 / NUM_IO_TYPES)
        return WorkloadInterval(ratios, requests)

    def test_constant_model(self):
        model = ConstantCacheModel(0.25)
        assert model.miss_rate(self._interval()) == 0.25

    def test_constant_model_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantCacheModel(1.5)

    def test_working_set_increases_with_load(self):
        model = WorkingSetCacheModel(cache_capacity_kb=10_000)
        low = model.miss_rate(self._interval(10.0))
        model.reset()
        high = None
        for _ in range(10):
            high = model.miss_rate(self._interval(100_000.0))
        assert high > low

    def test_working_set_bounded(self):
        model = WorkingSetCacheModel(cache_capacity_kb=1.0, max_miss_rate=0.6)
        for _ in range(20):
            rate = model.miss_rate(self._interval(1e9))
        assert rate <= 0.6 + 1e-9

    def test_working_set_reset(self):
        model = WorkingSetCacheModel(cache_capacity_kb=100.0)
        for _ in range(5):
            model.miss_rate(self._interval(1e6))
        model.reset()
        assert model.miss_rate(self._interval(0.0)) == pytest.approx(model.base_miss_rate)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            WorkingSetCacheModel(cache_capacity_kb=-1)
        with pytest.raises(ConfigurationError):
            WorkingSetCacheModel(base_miss_rate=0.9, max_miss_rate=0.5)


class TestMigrationActions:
    def test_seven_actions(self):
        assert NUM_ACTIONS == 7
        assert len(all_actions()) == 7

    def test_noop(self):
        assert MigrationAction.NOOP.is_noop
        assert MigrationAction.NOOP.source is None
        assert action_name(0) == "Noop"

    def test_source_destination_pairs_unique(self):
        pairs = {(a.source, a.destination) for a in all_actions() if not a.is_noop}
        assert len(pairs) == 6

    def test_short_names(self):
        assert MigrationAction.NORMAL_TO_RV.short_name == "N=>R"
        assert MigrationAction.KV_TO_NORMAL.short_name == "K=>N"

    def test_action_from_levels_roundtrip(self):
        for action in all_actions():
            assert action_from_levels(action.source, action.destination) is action

    def test_action_from_levels_invalid(self):
        with pytest.raises(ConfigurationError):
            action_from_levels(Level.KV, Level.KV)

    def test_parse_action(self):
        assert parse_action("N=>K") is MigrationAction.NORMAL_TO_KV
        assert parse_action(3) is MigrationAction.KV_TO_NORMAL
        assert parse_action("noop") is MigrationAction.NOOP
        with pytest.raises(ConfigurationError):
            parse_action("X=>Y")
