"""Tests for the GRU cell and sequence wrapper."""

import numpy as np
import pytest

from repro.autograd import check_gradients
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import GRU, GRUCell


class TestGRUCell:
    def test_output_shape_single(self):
        cell = GRUCell(5, 8, rng=0)
        h = cell(Tensor(np.zeros(5)))
        assert h.shape == (8,)

    def test_output_shape_batch(self):
        cell = GRUCell(5, 8, rng=0)
        h = cell(Tensor(np.zeros((3, 5))), cell.initial_state(3))
        assert h.shape == (3, 8)

    def test_initial_state_zero(self):
        cell = GRUCell(4, 6, rng=0)
        assert np.all(cell.initial_state().numpy() == 0)
        assert cell.initial_state(2).shape == (2, 6)

    def test_hidden_bounded_by_tanh(self):
        cell = GRUCell(3, 4, rng=0)
        h = cell(Tensor(np.random.default_rng(0).random(3) * 10))
        assert np.all(np.abs(h.numpy()) <= 1.0)

    def test_zero_update_gate_keeps_candidate(self):
        # With all weights zero, update gate z=0.5, candidate n=0 -> h = 0.5*h_prev.
        cell = GRUCell(2, 2, rng=0)
        for param in cell.parameters():
            param.data[...] = 0.0
        h_prev = Tensor(np.array([0.4, -0.6]))
        h = cell(Tensor(np.zeros(2)), h_prev)
        np.testing.assert_allclose(h.numpy(), 0.5 * h_prev.numpy())

    def test_wrong_input_dim(self):
        with pytest.raises(ShapeError):
            GRUCell(3, 4, rng=0)(Tensor(np.zeros(5)))

    def test_wrong_hidden_dim(self):
        cell = GRUCell(3, 4, rng=0)
        with pytest.raises(ShapeError):
            cell(Tensor(np.zeros(3)), Tensor(np.zeros(5)))

    def test_parameter_count(self):
        cell = GRUCell(3, 4, rng=0)
        # 3 gates x (3*4 input + 4*4 hidden + 4 bias)
        assert cell.num_parameters() == 3 * (12 + 16 + 4)

    def test_gradients_through_two_steps(self):
        cell = GRUCell(2, 3, rng=0)
        x1 = np.random.default_rng(1).random(2)
        x2 = np.random.default_rng(2).random(2)

        def loss():
            h = cell(Tensor(x1))
            h = cell(Tensor(x2), h)
            return (h * h).sum()

        check_gradients(loss, dict(cell.named_parameters()), atol=1e-4)

    def test_deterministic_given_seed(self):
        a = GRUCell(3, 4, rng=7)
        b = GRUCell(3, 4, rng=7)
        x = np.random.default_rng(0).random(3)
        np.testing.assert_allclose(a(Tensor(x)).numpy(), b(Tensor(x)).numpy())


class TestGRUSequence:
    def test_unroll_shapes(self):
        gru = GRU(4, 6, rng=0)
        seq = Tensor(np.random.default_rng(0).random((10, 4)))
        outputs, final = gru(seq)
        assert outputs.shape == (10, 6)
        assert final.shape == (6,)
        np.testing.assert_allclose(outputs.numpy()[-1], final.numpy())

    def test_batched_unroll(self):
        gru = GRU(4, 6, rng=0)
        seq = Tensor(np.random.default_rng(0).random((5, 3, 4)))
        outputs, final = gru(seq)
        assert outputs.shape == (5, 3, 6)
        assert final.shape == (3, 6)

    def test_matches_manual_cell_unroll(self):
        gru = GRU(3, 5, rng=1)
        seq = np.random.default_rng(1).random((4, 3))
        outputs, _ = gru(Tensor(seq))
        h = gru.cell.initial_state()
        for t in range(4):
            h = gru.cell(Tensor(seq[t]), h)
        np.testing.assert_allclose(outputs.numpy()[-1], h.numpy())

    def test_invalid_rank_raises(self):
        with pytest.raises(ShapeError):
            GRU(3, 4, rng=0)(Tensor(np.zeros(3)))

    def test_custom_initial_state_used(self):
        gru = GRU(2, 3, rng=0)
        seq = Tensor(np.zeros((1, 2)))
        h0 = Tensor(np.full(3, 0.9))
        _, from_custom = gru(seq, h0)
        _, from_zero = gru(seq)
        assert not np.allclose(from_custom.numpy(), from_zero.numpy())
