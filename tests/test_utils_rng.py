"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, new_rng, spawn_rngs


class TestNewRng:
    def test_none_returns_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(new_rng(1).random(5), new_rng(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 2)
        assert not np.allclose(children[0].random(8), children[1].random(8))

    def test_deterministic_across_calls(self):
        a = spawn_rngs(3, 2)[1].random(4)
        b = spawn_rngs(3, 2)[1].random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(5)
        children = spawn_rngs(rng, 3)
        assert len(children) == 3


class TestRngFactory:
    def test_same_name_same_stream_across_factories(self):
        a = RngFactory(9).get("simulator").random(4)
        b = RngFactory(9).get("simulator").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = RngFactory(9)
        a = factory.get("simulator").random(4)
        b = factory.get("agent").random(4)
        assert not np.allclose(a, b)

    def test_repeated_get_advances_stream(self):
        factory = RngFactory(9)
        a = factory.get("x").random(4)
        b = factory.get("x").random(4)
        assert not np.allclose(a, b)

    def test_reset_restores_streams(self):
        factory = RngFactory(9)
        a = factory.get("x").random(4)
        factory.reset()
        b = factory.get("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_none_seed_supported(self):
        factory = RngFactory(None)
        assert isinstance(factory.get("anything"), np.random.Generator)

    def test_seed_property(self):
        assert RngFactory(17).seed == 17
