"""Unit tests for the policy serving subsystem (sessions, server, shadow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.greedy import GreedyUtilizationPolicy
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import ConfigurationError, ServingError, StaleSessionError
from repro.fsm.machine import FiniteStateMachine
from repro.qbn.autoencoder import build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import (
    CompiledFSMBackend,
    CompiledFSMPolicy,
    GRUPolicyBackend,
    HeuristicAgentBackend,
    LatencyHistogram,
    PolicyServer,
    SessionTable,
    ShadowEvaluator,
)
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator


# ----------------------------------------------------------------------
# Shared small artefacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_env():
    return StorageAllocationEnv(
        StorageSystemConfig(), reward_config=RewardConfig(mode="per_step_penalty"), rng=0
    )


@pytest.fixture(scope="module")
def observation_stream(serving_env):
    """Raw observation rows from one short simulated episode."""
    generator = StandardWorkloadGenerator(
        serving_env.system_config, GeneratorConfig(), rng=0
    )
    trace = generator.generate("web_server", duration=24)
    rng = np.random.default_rng(9)
    observation = serving_env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = serving_env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    return np.array(rows)


@pytest.fixture(scope="module")
def compiled_policy(serving_env, observation_stream):
    """A compiled policy over a small handmade FSM with real prototypes."""
    rng = np.random.default_rng(3)
    qbn = build_observation_qbn(35, latent_dim=6, hidden_dim=16, rng=4)
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = serving_env.observation_encoder.normalize_batch(observation_stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    return CompiledFSMPolicy.compile(fsm, qbn, encoder=serving_env.observation_encoder)


# ----------------------------------------------------------------------
# SessionTable
# ----------------------------------------------------------------------
class TestSessionTable:
    def test_open_step_close_accounting(self):
        table = SessionTable(capacity=4, hidden_size=3)
        slots = table.open(3)
        assert table.num_active == 3 and len(table) == 3
        table.record_steps(slots)
        table.record_steps(slots[:1])
        assert table.steps[slots[0]] == 2 and table.steps[slots[2]] == 1
        table.close(slots[:2])
        assert table.num_active == 1
        assert table.total_opened == 3 and table.total_closed == 2

    def test_free_list_reuses_closed_slots(self):
        table = SessionTable(capacity=4)
        first = table.open(4)
        table.close(first[1:3])
        reused = table.open(2)
        assert set(reused.tolist()) == set(first[1:3].tolist())
        assert table.capacity == 4

    def test_reused_slot_state_is_reset(self):
        table = SessionTable(capacity=2, hidden_size=2)
        slot = table.open(1)
        table.state[slot] = 7
        table.hidden[slot] = 1.5
        table.record_steps(slot)
        table.close(slot)
        again = table.open(1)
        assert again[0] == slot[0]
        assert table.state[again[0]] == 0
        assert np.all(table.hidden[again[0]] == 0.0)
        assert table.steps[again[0]] == 0
        assert table.generation[again[0]] == 1

    def test_growth_preserves_existing_sessions(self):
        table = SessionTable(capacity=2, hidden_size=2)
        first = table.open(2)
        table.state[first] = [5, 6]
        table.hidden[first] = [[1.0, 2.0], [3.0, 4.0]]
        more = table.open(100)
        assert table.num_active == 102
        assert table.capacity >= 102
        assert table.state[first].tolist() == [5, 6]
        assert table.hidden[first[1]].tolist() == [3.0, 4.0]
        assert len(set(first.tolist()) & set(more.tolist())) == 0

    def test_stepping_closed_slot_raises(self):
        table = SessionTable(capacity=2)
        slot = table.open(1)
        table.close(slot)
        with pytest.raises(ConfigurationError):
            table.record_steps(slot)
        with pytest.raises(ConfigurationError):
            table.checked_slots(slot)

    def test_out_of_range_slot_raises(self):
        table = SessionTable(capacity=2)
        with pytest.raises(ConfigurationError):
            table.checked_slots([5])

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SessionTable(capacity=0)
        with pytest.raises(ConfigurationError):
            SessionTable(hidden_size=-1)

    def test_duplicate_close_rejected(self):
        """close([s, s]) must not double-push s onto the free list."""
        table = SessionTable(capacity=4)
        slots = table.open(3)
        victim = int(slots[1])
        with pytest.raises(ConfigurationError, match="duplicate"):
            table.close([victim, victim])
        # The failed close changed nothing.
        assert table.num_active == 3
        assert bool(table.active[victim])
        # A clean close + reopen cycle hands out each slot exactly once.
        table.close([victim])
        reopened = table.open(2)
        assert len(set(reopened.tolist())) == 2
        all_active = table.active_slots().tolist()
        assert len(all_active) == len(set(all_active)) == table.num_active

    def test_generation_checked_handles(self):
        table = SessionTable(capacity=4)
        slot = int(table.open(1)[0])
        generation = int(table.generation[slot])
        assert table.checked_slots(slot, expected_generation=generation).tolist() == [slot]
        table.close([slot])
        reused = int(table.open(1)[0])
        assert reused == slot  # LIFO free list reuses the slot...
        with pytest.raises(StaleSessionError):
            # ...so the old handle's generation no longer matches.
            table.checked_slots(slot, expected_generation=generation)
        assert table.checked_slots(
            slot, expected_generation=generation + 1
        ).tolist() == [slot]

    def test_adopt_allocation_preserves_slot_layout(self):
        source = SessionTable(capacity=8, hidden_size=2)
        slots = source.open(5)
        source.close(slots[1:3])
        target = SessionTable(capacity=8, hidden_size=0)
        target.adopt_allocation(source)
        assert target.num_active == source.num_active
        assert target.active_slots().tolist() == source.active_slots().tolist()
        assert target.generation.tolist() == source.generation.tolist()
        # Free-list order is preserved: the next opens reuse what the
        # source would have reused.
        assert target.open(2).tolist() == source.open(2).tolist()
        mismatched = SessionTable(capacity=4)
        with pytest.raises(ConfigurationError):
            mismatched.adopt_allocation(source)


# ----------------------------------------------------------------------
# Compiled policy artifact
# ----------------------------------------------------------------------
class TestCompiledArtifact:
    def test_save_load_roundtrip_decides_identically(
        self, tmp_path, compiled_policy, serving_env, observation_stream
    ):
        path = tmp_path / "compiled.npz"
        compiled_policy.save(path)
        loaded = CompiledFSMPolicy.load(path)
        assert loaded.num_states == compiled_policy.num_states
        assert loaded.num_observations == compiled_policy.num_observations
        assert loaded.start_state == compiled_policy.start_state
        assert np.array_equal(loaded.transition_table, compiled_policy.transition_table)
        normalized = serving_env.observation_encoder.normalize_batch(observation_stream)
        states = np.full(len(normalized), compiled_policy.start_state, dtype=np.int64)
        a = compiled_policy.act_batch(normalized, states)
        b = loaded.act_batch(normalized, states)
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.next_states, b.next_states)
        assert np.array_equal(a.fallback_mask, b.fallback_mask)

    def test_encoder_compatibility_stamp(self, compiled_policy, serving_env):
        assert compiled_policy.matches_encoder(serving_env.observation_encoder)
        from repro.env.observation import ObservationEncoder

        other = ObservationEncoder(serving_env.system_config, nominal_requests=123.0)
        assert not compiled_policy.matches_encoder(other)

    def test_summary_counts_decisions_and_fallbacks(
        self, tmp_path, compiled_policy, serving_env, observation_stream
    ):
        compiled_policy.save(tmp_path / "c.npz")
        fresh = CompiledFSMPolicy.load(tmp_path / "c.npz")
        normalized = serving_env.observation_encoder.normalize_batch(observation_stream)
        states = np.full(len(normalized), fresh.start_state, dtype=np.int64)
        decision = fresh.act_batch(normalized, states)
        summary = fresh.summary()
        assert summary["decisions"] == len(normalized)
        assert summary["fallbacks"] == int(decision.fallback_mask.sum())


# ----------------------------------------------------------------------
# PolicyServer
# ----------------------------------------------------------------------
class TestPolicyServer:
    def test_microbatch_auto_flush(self, compiled_policy, serving_env, observation_stream):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            max_batch_size=4,
            initial_capacity=8,
        )
        ids = server.open_sessions(4)
        tickets = [
            server.submit(int(session), observation_stream[i])
            for i, session in enumerate(ids[:3])
        ]
        assert all(not t.done for t in tickets)
        assert server.pending == 3
        last = server.submit(int(ids[3]), observation_stream[3])
        # Queue reached max_batch_size: everything flushed as one batch.
        assert server.pending == 0
        assert last.done and all(t.done for t in tickets)
        assert isinstance(last.result(), MigrationAction)
        stats = server.stats()
        assert stats.decisions == 4 and stats.batches == 1 and stats.max_batch == 4

    def test_unflushed_ticket_raises(self, compiled_policy, serving_env, observation_stream):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        ticket = server.submit(session, observation_stream[0])
        with pytest.raises(ConfigurationError):
            ticket.result()
        assert server.flush() == 1
        ticket.result()

    def test_second_submit_same_session_flushes_first(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            max_batch_size=64,
        )
        session = server.open_session()
        first = server.submit(session, observation_stream[0])
        second = server.submit(session, observation_stream[1])
        assert first.done and not second.done
        server.flush()
        assert second.done

    def test_queued_and_direct_paths_agree(
        self, compiled_policy, serving_env, observation_stream
    ):
        encoder = serving_env.observation_encoder
        queued = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        direct = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        q_ids = queued.open_sessions(3)
        d_ids = direct.open_sessions(3)
        for step in range(4):
            tickets = [
                queued.submit(int(session), observation_stream[step])
                for session in q_ids
            ]
            queued.flush()
            actions = direct.decide_now(
                d_ids, np.tile(observation_stream[step], (3, 1))
            )
            assert [int(t.result()) for t in tickets] == actions.tolist()

    def test_decide_now_rejects_duplicate_sessions(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        with pytest.raises(ConfigurationError):
            server.decide_now(
                [session, session], np.tile(observation_stream[0], (2, 1))
            )

    def test_mismatched_encoder_rejected_at_construction(
        self, compiled_policy, serving_env
    ):
        """The artifact's encoder stamp is enforced when the server mounts it."""
        from repro.env.observation import ObservationEncoder

        other = ObservationEncoder(serving_env.system_config, nominal_requests=123.0)
        with pytest.raises(ConfigurationError):
            PolicyServer(CompiledFSMBackend(compiled_policy), other)
        shadowed = ShadowEvaluator(
            CompiledFSMBackend(compiled_policy), CompiledFSMBackend(compiled_policy)
        )
        with pytest.raises(ConfigurationError):
            PolicyServer(shadowed, other)

    def test_heuristic_backend_releases_closed_session_agents(
        self, serving_env, observation_stream
    ):
        encoder = serving_env.observation_encoder
        backend = HeuristicAgentBackend(GreedyUtilizationPolicy, encoder)
        server = PolicyServer(backend, encoder)
        ids = server.open_sessions(4)
        server.decide_now(ids, np.tile(observation_stream[0], (4, 1)))
        assert len(backend._agents) == 4
        server.close_sessions(ids[:3])
        assert len(backend._agents) == 1

    def test_closed_session_rejected(self, compiled_policy, serving_env, observation_stream):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        server.close_sessions([session])
        with pytest.raises(ConfigurationError):
            server.submit(session, observation_stream[0])

    def test_gru_backend_matches_drl_agent(self, serving_env, observation_stream):
        """The GRU serving backend replays DRLPolicyAgent's greedy stream."""
        from repro.drl.agent import DRLPolicyAgent

        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
        server = PolicyServer(GRUPolicyBackend(policy), serving_env.observation_encoder)
        ids = server.open_sessions(2)
        reference = DRLPolicyAgent(policy, serving_env.observation_encoder)
        reference.reset()
        for raw in observation_stream[:8]:
            expected = int(reference.act(serving_env.observation_encoder.split_raw(raw)))
            served = server.decide_now(ids, np.tile(raw, (2, 1)))
            assert served.tolist() == [expected, expected]

    def test_heuristic_backend_matches_scalar_agent(self, serving_env, observation_stream):
        encoder = serving_env.observation_encoder
        server = PolicyServer(
            HeuristicAgentBackend(GreedyUtilizationPolicy, encoder), encoder
        )
        ids = server.open_sessions(2)
        reference = GreedyUtilizationPolicy()
        reference.reset()
        for raw in observation_stream[:6]:
            expected = int(reference.act(encoder.split_raw(raw)))
            served = server.decide_now(ids, np.tile(raw, (2, 1)))
            assert served.tolist() == [expected, expected]


class _FaultyBackend:
    """Wraps a real backend; raises on decide while ``failures`` > 0."""

    def __init__(self, inner, failures: int = 1) -> None:
        self.inner = inner
        self.failures = failures
        self.name = f"faulty({inner.name})"

    def session_table(self, capacity):
        return self.inner.session_table(capacity)

    def begin_sessions(self, table, slots):
        self.inner.begin_sessions(table, slots)

    def decide(self, table, slots, raw, normalized):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("injected backend fault")
        return self.inner.decide(table, slots, raw, normalized)


class TestPolicyServerLifecycleBugs:
    def test_backend_fault_fails_tickets_instead_of_stranding(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            _FaultyBackend(CompiledFSMBackend(compiled_policy)),
            serving_env.observation_encoder,
            max_batch_size=64,
        )
        ids = server.open_sessions(3)
        tickets = [
            server.submit(int(session), observation_stream[i])
            for i, session in enumerate(ids)
        ]
        with pytest.raises(RuntimeError, match="injected"):
            server.flush()
        # No ticket is stranded: all are terminally failed.
        assert all(t.done and t.failed for t in tickets)
        for ticket in tickets:
            with pytest.raises(ServingError, match="injected"):
                ticket.result()
        # Server state is consistent: nothing pending, and the same
        # sessions can submit again immediately (no stale _pending_set).
        assert server.pending == 0
        assert server._pending_set == set()
        assert server.stats().failed == 3
        retry = [
            server.submit(int(session), observation_stream[i])
            for i, session in enumerate(ids)
        ]
        assert server.flush() == 3
        assert all(t.done and not t.failed for t in retry)
        assert isinstance(retry[0].result(), MigrationAction)

    def test_decide_now_validates_column_count(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        with pytest.raises(ConfigurationError, match="columns"):
            server.decide_now([session], observation_stream[:1, :10])

    def test_decide_now_duplicate_check_on_large_table(
        self, compiled_policy, serving_env, observation_stream
    ):
        """The uniqueness check is per batch, not per table capacity."""
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            initial_capacity=1 << 15,
        )
        ids = server.open_sessions(3)
        actions = server.decide_now(ids, observation_stream[:3])
        assert actions.shape == (3,)
        with pytest.raises(ConfigurationError):
            server.decide_now(
                [ids[0], ids[0]], np.tile(observation_stream[0], (2, 1))
            )

    def test_generation_checked_submit_and_close(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        generation = int(server.table.generation[session])
        ticket = server.submit(
            session, observation_stream[0], expected_generation=generation
        )
        server.flush()
        assert ticket.done
        server.close_sessions([session], expected_generation=[generation])
        reused = server.open_session()
        assert reused == session
        with pytest.raises(StaleSessionError):
            server.submit(
                session, observation_stream[0], expected_generation=generation
            )
        with pytest.raises(StaleSessionError):
            server.decide_now(
                [session], observation_stream[:1], expected_generation=[generation]
            )
        with pytest.raises(StaleSessionError):
            server.close_sessions([session], expected_generation=[generation])

    def test_close_sessions_rejects_duplicates(
        self, compiled_policy, serving_env
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        session = server.open_session()
        with pytest.raises(ConfigurationError, match="duplicate"):
            server.close_sessions([session, session])
        assert server.table.num_active == 1


class TestSubmitManyAndCancel:
    def test_submit_many_matches_per_row_submit(
        self, compiled_policy, serving_env, observation_stream
    ):
        encoder = serving_env.observation_encoder
        batched = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        rowwise = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        b_ids = batched.open_sessions(5)
        r_ids = rowwise.open_sessions(5)
        for step in range(3):
            raw = observation_stream[step : step + 5]
            many = batched.submit_many(b_ids, raw)
            batched.flush()
            singles = [
                rowwise.submit(int(session), raw[i])
                for i, session in enumerate(r_ids)
            ]
            rowwise.flush()
            assert [t.action for t in many] == [
                int(t.result()) for t in singles
            ]

    def test_submit_many_autoflushes_at_batch_size(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            max_batch_size=4,
            initial_capacity=16,
        )
        ids = server.open_sessions(10)
        tickets = server.submit_many(ids, observation_stream[:10])
        # Two full micro-batches flushed on the way; 2 requests remain.
        assert server.pending == 2
        assert sum(t.done for t in tickets) == 8
        server.flush()
        assert all(t.done for t in tickets)
        assert server.stats().batches == 3

    def test_submit_many_validates_shapes_and_duplicates(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        ids = server.open_sessions(3)
        with pytest.raises(ConfigurationError, match="one row per session"):
            server.submit_many(ids, observation_stream[:2])
        with pytest.raises(ConfigurationError, match="duplicate"):
            server.submit_many(
                [ids[0], ids[0]], observation_stream[:2]
            )
        with pytest.raises(ConfigurationError, match="columns"):
            server.submit_many(ids, observation_stream[:3, :7])
        assert server.pending == 0

    def test_submit_many_generation_check(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        ids = server.open_sessions(2)
        generations = server.table.generation[ids]
        server.close_sessions([ids[1]])
        server.open_sessions(1)  # recycles the slot, generation bumped
        with pytest.raises(StaleSessionError):
            server.submit_many(
                ids, observation_stream[:2], expected_generation=generations
            )

    def test_cancel_pending_fails_tickets_and_clears_queue(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            max_batch_size=64,
        )
        ids = server.open_sessions(3)
        tickets = server.submit_many(ids, observation_stream[:3])
        assert server.pending == 3
        assert server.cancel_pending() == 3
        assert server.pending == 0
        assert server._pending_set == set()
        assert all(t.done and t.failed for t in tickets)
        for ticket in tickets:
            with pytest.raises(ServingError, match="cancelled"):
                ticket.result()
        assert server.stats().failed == 3
        # The same sessions serve again immediately (no stale state).
        retry = server.submit_many(ids, observation_stream[:3])
        assert server.flush() == 3
        assert all(t.done and not t.failed for t in retry)
        # Cancelling an empty queue is a no-op.
        assert server.cancel_pending() == 0
        assert server.stats().failed == 3


class TestSwapBackend:
    def test_swap_same_artifact_migrates_state(
        self, compiled_policy, serving_env, observation_stream
    ):
        encoder = serving_env.observation_encoder
        server = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        control = PolicyServer(CompiledFSMBackend(compiled_policy), encoder)
        ids = server.open_sessions(4)
        control_ids = control.open_sessions(4)
        for step in range(3):
            batch = np.tile(observation_stream[step], (4, 1))
            server.decide_now(ids, batch)
            control.decide_now(control_ids, batch)
        audit = server.swap_backend(CompiledFSMBackend(compiled_policy))
        assert audit["state"] == "migrated"
        assert audit["active_sessions"] == 4
        # Migrated state: the swapped server continues exactly where the
        # unswapped control is.
        for step in range(3, 6):
            batch = np.tile(observation_stream[step], (4, 1))
            assert np.array_equal(
                server.decide_now(ids, batch), control.decide_now(control_ids, batch)
            )
        assert server.stats().swaps == 1

    def test_swap_incompatible_backend_resets_state(
        self, compiled_policy, serving_env, observation_stream
    ):
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        ids = server.open_sessions(3)
        server.decide_now(ids, observation_stream[:3])
        generations = server.table.generation[ids].copy()
        audit = server.swap_backend(GRUPolicyBackend(policy))
        assert audit["state"] == "reset"
        # Handles survive the swap: same slots, same generations.
        assert np.array_equal(server.table.generation[ids], generations)
        # And the reset sessions replay the fresh GRU server bit for bit.
        fresh = PolicyServer(GRUPolicyBackend(policy), serving_env.observation_encoder)
        fresh_ids = fresh.open_sessions(3)
        for step in range(4):
            batch = np.tile(observation_stream[step], (3, 1))
            assert np.array_equal(
                server.decide_now(ids, batch), fresh.decide_now(fresh_ids, batch)
            )

    def test_swap_drains_pending_microbatch(
        self, compiled_policy, serving_env, observation_stream
    ):
        server = PolicyServer(
            CompiledFSMBackend(compiled_policy),
            serving_env.observation_encoder,
            max_batch_size=64,
        )
        ids = server.open_sessions(2)
        tickets = [server.submit(int(s), observation_stream[0]) for s in ids]
        audit = server.swap_backend(CompiledFSMBackend(compiled_policy))
        assert audit["flushed_pending"] == 2
        assert all(t.done and not t.failed for t in tickets)
        assert server.pending == 0

    def test_swap_rejects_incompatible_encoder(self, compiled_policy, serving_env):
        from repro.env.observation import ObservationEncoder

        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
        mismatched = PolicyServer(
            GRUPolicyBackend(policy),
            ObservationEncoder(serving_env.system_config, nominal_requests=123.0),
        )
        with pytest.raises(ConfigurationError):
            mismatched.swap_backend(CompiledFSMBackend(compiled_policy))
        # The failed swap left the old backend mounted.
        assert mismatched.backend.name == "gru"


class TestLatencyHistogram:
    def test_percentiles_are_conservative_upper_edges(self):
        histogram = LatencyHistogram()
        values = np.array([0.001] * 90 + [0.010] * 9 + [0.500])
        histogram.record_many(values)
        assert histogram.total == 100
        assert histogram.percentile(50) >= 0.001
        assert histogram.percentile(95) >= 0.010
        assert histogram.percentile(99) >= 0.010
        assert histogram.percentile(100) == pytest.approx(0.5)
        assert histogram.max_seconds == pytest.approx(0.5)
        assert histogram.mean_seconds == pytest.approx(values.mean())
        # Upper-edge estimates never exceed the next bucket boundary.
        assert histogram.percentile(50) <= 0.001 * LatencyHistogram.FACTOR

    def test_record_matches_record_many(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        values = [1e-5, 3e-4, 2e-3, 0.08, 1.5]
        for value in values:
            a.record(value)
        b.record_many(np.array(values))
        assert a.counts.tolist() == b.counts.tolist()
        assert a.as_dict() == b.as_dict()

    def test_fraction_within_slo(self):
        histogram = LatencyHistogram()
        histogram.record_many(np.array([0.001] * 8 + [1.0] * 2))
        assert histogram.fraction_within(0.01) == pytest.approx(0.8)
        assert histogram.fraction_within(10.0) == pytest.approx(1.0)
        assert LatencyHistogram().fraction_within(0.1) == 1.0

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99) == 0.0
        assert histogram.as_dict()["count"] == 0


# ----------------------------------------------------------------------
# ShadowEvaluator
# ----------------------------------------------------------------------
class TestShadowEvaluator:
    def test_identical_backends_have_perfect_fidelity(
        self, compiled_policy, serving_env, observation_stream
    ):
        shadowed = ShadowEvaluator(
            CompiledFSMBackend(compiled_policy), CompiledFSMBackend(compiled_policy)
        )
        server = PolicyServer(shadowed, serving_env.observation_encoder)
        ids = server.open_sessions(5)
        for raw in observation_stream[:6]:
            server.decide_now(ids, np.tile(raw, (5, 1)))
        assert shadowed.decisions == 30
        assert shadowed.divergences == 0
        assert shadowed.fidelity == 1.0
        assert shadowed.divergence_pairs() == {}
        assert np.trace(shadowed.confusion) == 30

    def test_primary_answer_served_divergence_counted(
        self, compiled_policy, serving_env, observation_stream
    ):
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
        primary = CompiledFSMBackend(compiled_policy)
        shadowed = ShadowEvaluator(primary, GRUPolicyBackend(policy))
        server = PolicyServer(shadowed, serving_env.observation_encoder)
        unshadowed = PolicyServer(
            CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
        )
        ids = server.open_sessions(3)
        plain_ids = unshadowed.open_sessions(3)
        for raw in observation_stream[:6]:
            batch = np.tile(raw, (3, 1))
            assert np.array_equal(
                server.decide_now(ids, batch), unshadowed.decide_now(plain_ids, batch)
            )
        summary = shadowed.summary()
        assert summary["decisions"] == 18
        assert shadowed.confusion.sum() == 18
        assert 0.0 <= summary["fidelity"] <= 1.0
        assert summary["divergences"] == sum(shadowed.divergence_pairs().values())

    def test_shadow_table_grows_with_primary(self, compiled_policy, serving_env, observation_stream):
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)
        shadowed = ShadowEvaluator(CompiledFSMBackend(compiled_policy), GRUPolicyBackend(policy))
        server = PolicyServer(
            shadowed, serving_env.observation_encoder, initial_capacity=2
        )
        ids = server.open_sessions(40)
        actions = server.decide_now(ids, np.tile(observation_stream[0], (40, 1)))
        assert actions.shape == (40,)
        assert shadowed._shadow_table.capacity >= 40
