"""Golden-trace regression pins for the seeded evaluation harness.

These tests pin the exact seeded ``compare_agents`` outputs (makespans,
total rewards, migration counts, utilisation statistics) of the three
no-training baselines on the shared fixture workload.  They exist so
simulator/environment hot-path refactors cannot silently change
semantics: any drift in the numbers below is a behaviour change, not a
cleanup, and must be explained (and the goldens deliberately re-pinned)
in the PR that causes it.

The fixture workload is fully seeded (generator rng=123, suite rng=7,
duration 24, sampler rng=11, sample rng=13 — see ``conftest.py``) and
every episode runs with ``episode_seed=0``, so all values are exact
across runs, platforms and worker layouts.
"""

import pytest

from repro.agents.default import DefaultPolicy
from repro.agents.greedy import GreedyUtilizationPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.pipeline.evaluation import compare_agents
from repro.storage.levels import Level

# Exact integer pins.
GOLDEN_MAKESPANS = {
    "default": [36, 32, 27, 27],
    "greedy_utilization": [27, 33, 27, 26],
    "proportional_allocation": [31, 33, 26, 26],
}
GOLDEN_MIGRATIONS = {
    "default": [0, 0, 0, 0],
    "greedy_utilization": [6, 17, 17, 22],
    "proportional_allocation": [1, 1, 3, 4],
}
# Float pins, asserted to 1e-12 relative tolerance.
GOLDEN_TOTAL_REWARDS = {
    "default": [2.7777777777777777, 3.125, 3.7037037037037037, 3.7037037037037037],
    "greedy_utilization": [3.7037037037037037, 3.0303030303030303,
                           3.7037037037037037, 3.8461538461538463],
    "proportional_allocation": [3.225806451612903, 3.0303030303030303,
                                3.8461538461538463, 3.8461538461538463],
}
GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION = {
    "default": {Level.NORMAL: 0.9573858234920478, Level.KV: 0.5198134160816055,
                Level.RV: 0.4105258674055475},
    "greedy_utilization": {Level.NORMAL: 0.9330449967130808, Level.KV: 0.9032902108503514,
                           Level.RV: 0.94050417340286},
    "proportional_allocation": {Level.NORMAL: 0.9554759915325451, Level.KV: 0.6036542896431548,
                                Level.RV: 0.6921267529323167},
}


@pytest.fixture(scope="module")
def golden_comparison(system_config, real_traces):
    agents = [
        DefaultPolicy(),
        GreedyUtilizationPolicy(),
        ProportionalAllocationPolicy(system_config),
    ]
    return compare_agents(agents, real_traces, system_config=system_config, episode_seed=0)


class TestGoldenTraces:
    def test_trace_identity(self, golden_comparison, real_traces):
        assert [trace.name for trace in real_traces] == [
            "real/000", "real/001", "real/002", "real/003",
        ]
        assert set(golden_comparison) == set(GOLDEN_MAKESPANS)

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_MAKESPANS))
    def test_makespans_pinned(self, golden_comparison, agent_name):
        assert golden_comparison[agent_name].makespans == GOLDEN_MAKESPANS[agent_name]

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_MIGRATIONS))
    def test_migration_counts_pinned(self, golden_comparison, agent_name):
        migrations = [e.migrations for e in golden_comparison[agent_name].episodes]
        assert migrations == GOLDEN_MIGRATIONS[agent_name]

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_TOTAL_REWARDS))
    def test_total_rewards_pinned(self, golden_comparison, agent_name):
        assert golden_comparison[agent_name].total_rewards == pytest.approx(
            GOLDEN_TOTAL_REWARDS[agent_name], rel=1e-12, abs=1e-12
        )

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION))
    def test_mean_utilization_pinned(self, golden_comparison, agent_name):
        golden = GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION[agent_name]
        measured = golden_comparison[agent_name].episodes[0].mean_utilization()
        for level, value in golden.items():
            assert measured[level] == pytest.approx(value, rel=1e-12, abs=1e-12), level

    def test_summary_dict_exposes_reward(self, golden_comparison):
        summary = golden_comparison["default"].as_dict()
        assert summary["mean_total_reward"] == pytest.approx(
            sum(GOLDEN_TOTAL_REWARDS["default"]) / 4, rel=1e-12
        )
        assert summary["total_makespan"] == sum(GOLDEN_MAKESPANS["default"])
