"""Golden-trace regression pins for the seeded evaluation harness.

These tests pin the exact seeded ``compare_agents`` outputs (makespans,
total rewards, migration counts, utilisation statistics) of the three
no-training baselines on the shared fixture workload.  They exist so
simulator/environment hot-path refactors cannot silently change
semantics: any drift in the numbers below is a behaviour change, not a
cleanup, and must be explained (and the goldens deliberately re-pinned)
in the PR that causes it.

The fixture workload is fully seeded (generator rng=123, suite rng=7,
duration 24, sampler rng=11, sample rng=13 — see ``conftest.py``) and
every episode runs with ``episode_seed=0``, so all values are exact
across runs, platforms and worker layouts.
"""

import numpy as np
import pytest

from repro.agents.default import DefaultPolicy
from repro.agents.greedy import GreedyUtilizationPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.drl.a2c import A2CConfig, A2CTrainer
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector, derive_episode_streams
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.pipeline.evaluation import compare_agents
from repro.storage.levels import Level

# Exact integer pins.
GOLDEN_MAKESPANS = {
    "default": [36, 32, 27, 27],
    "greedy_utilization": [27, 33, 27, 26],
    "proportional_allocation": [31, 33, 26, 26],
}
GOLDEN_MIGRATIONS = {
    "default": [0, 0, 0, 0],
    "greedy_utilization": [6, 17, 17, 22],
    "proportional_allocation": [1, 1, 3, 4],
}
# Float pins, asserted to 1e-12 relative tolerance.
GOLDEN_TOTAL_REWARDS = {
    "default": [2.7777777777777777, 3.125, 3.7037037037037037, 3.7037037037037037],
    "greedy_utilization": [3.7037037037037037, 3.0303030303030303,
                           3.7037037037037037, 3.8461538461538463],
    "proportional_allocation": [3.225806451612903, 3.0303030303030303,
                                3.8461538461538463, 3.8461538461538463],
}
GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION = {
    "default": {Level.NORMAL: 0.9573858234920478, Level.KV: 0.5198134160816055,
                Level.RV: 0.4105258674055475},
    "greedy_utilization": {Level.NORMAL: 0.9330449967130808, Level.KV: 0.9032902108503514,
                           Level.RV: 0.94050417340286},
    "proportional_allocation": {Level.NORMAL: 0.9554759915325451, Level.KV: 0.6036542896431548,
                                Level.RV: 0.6921267529323167},
}


@pytest.fixture(scope="module")
def golden_comparison(system_config, real_traces):
    agents = [
        DefaultPolicy(),
        GreedyUtilizationPolicy(),
        ProportionalAllocationPolicy(system_config),
    ]
    return compare_agents(agents, real_traces, system_config=system_config, episode_seed=0)


class TestGoldenTraces:
    def test_trace_identity(self, golden_comparison, real_traces):
        assert [trace.name for trace in real_traces] == [
            "real/000", "real/001", "real/002", "real/003",
        ]
        assert set(golden_comparison) == set(GOLDEN_MAKESPANS)

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_MAKESPANS))
    def test_makespans_pinned(self, golden_comparison, agent_name):
        assert golden_comparison[agent_name].makespans == GOLDEN_MAKESPANS[agent_name]

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_MIGRATIONS))
    def test_migration_counts_pinned(self, golden_comparison, agent_name):
        migrations = [e.migrations for e in golden_comparison[agent_name].episodes]
        assert migrations == GOLDEN_MIGRATIONS[agent_name]

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_TOTAL_REWARDS))
    def test_total_rewards_pinned(self, golden_comparison, agent_name):
        assert golden_comparison[agent_name].total_rewards == pytest.approx(
            GOLDEN_TOTAL_REWARDS[agent_name], rel=1e-12, abs=1e-12
        )

    @pytest.mark.parametrize("agent_name", sorted(GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION))
    def test_mean_utilization_pinned(self, golden_comparison, agent_name):
        golden = GOLDEN_FIRST_EPISODE_MEAN_UTILIZATION[agent_name]
        measured = golden_comparison[agent_name].episodes[0].mean_utilization()
        for level, value in golden.items():
            assert measured[level] == pytest.approx(value, rel=1e-12, abs=1e-12), level

    def test_summary_dict_exposes_reward(self, golden_comparison):
        summary = golden_comparison["default"].as_dict()
        assert summary["mean_total_reward"] == pytest.approx(
            sum(GOLDEN_TOTAL_REWARDS["default"]) / 4, rel=1e-12
        )
        assert summary["total_makespan"] == sum(GOLDEN_MAKESPANS["default"])


# ----------------------------------------------------------------------
# Trained-policy golden trace
# ----------------------------------------------------------------------
# A small fixed-seed A2C training run (hidden 12, 3 epochs of 2 episodes,
# n-step 4) followed by one greedy and one sampled batched rollout of the
# trained weights.  This pins the *policy path* — GRU forward, batched
# CDF sampling, epsilon exploration, value head — which the baseline-
# agent goldens above never touch, so refactors of the inference kernels
# (buffered GRU, batched draws) cannot silently change behaviour.
TRAINED_HISTORY_MAKESPANS = [35.5, 61.5, 56.0]
TRAINED_POLICY_LOSSES = [0.11600420420845989, 0.07990632470201373,
                         -0.03679128108503107]
TRAINED_VALUE_LOSSES = [14.859691079452048, 15.127238496554613,
                        15.101128196643531]
TRAINED_GREEDY_MAKESPANS = [41, 67, 51, 33]
TRAINED_GREEDY_ACTIONS_0 = [6] + [5] * 40
TRAINED_GREEDY_ACTIONS_3 = [6, 3, 3, 3, 3, 3, 3, 3] + [5] * 20 + [3] * 5
TRAINED_GREEDY_VALUE_ENDPOINTS = {
    0: (-0.08024745720139852, 0.5227890452199159),
    1: (-0.025602535082521454, 0.46882226571077457),
    2: (-0.12342895345617998, 0.474428983849165),
    3: (0.04931406490979116, 0.21805272853996802),
}
TRAINED_GREEDY_HIDDEN_MEANS = [0.3127292731069296, 0.25236881864643307,
                               0.25994973490609724, 0.25426312649831284]
TRAINED_GREEDY_OBS_SUMS = [171.57247926074325, 276.7373860843072,
                           204.02452282909883, 149.5404898961558]
TRAINED_SAMPLED_MAKESPANS = [52, 54]
TRAINED_SAMPLED_ACTIONS_0 = [
    4, 3, 5, 5, 5, 4, 6, 2, 6, 4, 2, 0, 5, 5, 5, 4, 6, 4, 3, 3, 5, 0, 4, 0,
    5, 1, 5, 5, 3, 6, 5, 6, 6, 3, 5, 3, 5, 2, 5, 0, 4, 3, 0, 4, 2, 1, 4, 0,
    2, 5, 5, 5,
]
TRAINED_SAMPLED_VALUE_SUMS = [19.836697835814213, 17.085671931136222]
TRAINED_SAMPLED_HIDDEN_MEANS = [0.2676449506426933, 0.259245691016871]
TRAINED_SAMPLED_OBS_SUMS = [216.22897507516288, 242.64199498671888]


@pytest.fixture(scope="module")
def trained_policy_rollouts(system_config, real_traces):
    reward_config = RewardConfig(mode="per_step_penalty")
    env = StorageAllocationEnv(system_config, reward_config=reward_config, rng=3)
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=21)
    trainer = A2CTrainer(policy, env, A2CConfig(episodes_per_epoch=2, n_step=4), rng=9)
    history = trainer.train(real_traces[:2], epochs=3)
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(system_config, reward_config)
    )
    greedy_rngs = derive_episode_streams(2024, len(real_traces))
    greedy = collector.collect_batch(
        policy, real_traces, greedy=True,
        episode_rngs=greedy_rngs[0], action_rngs=greedy_rngs[1],
    )
    sampled_rngs = derive_episode_streams(777, 2)
    sampled = collector.collect_batch(
        policy, real_traces[:2], greedy=False, epsilon=0.1,
        episode_rngs=sampled_rngs[0], action_rngs=sampled_rngs[1],
    )
    return history, greedy, sampled


class TestTrainedPolicyGoldenTrace:
    def test_training_history_pinned(self, trained_policy_rollouts):
        history, _, _ = trained_policy_rollouts
        assert history.makespans().tolist() == TRAINED_HISTORY_MAKESPANS
        assert [r.policy_loss for r in history.records] == pytest.approx(
            TRAINED_POLICY_LOSSES, rel=1e-10, abs=1e-12
        )
        assert [r.value_loss for r in history.records] == pytest.approx(
            TRAINED_VALUE_LOSSES, rel=1e-10, abs=1e-12
        )

    def test_greedy_rollout_pinned(self, trained_policy_rollouts):
        _, greedy, _ = trained_policy_rollouts
        assert [t.makespan for t in greedy] == TRAINED_GREEDY_MAKESPANS
        assert greedy[0].actions().tolist() == TRAINED_GREEDY_ACTIONS_0
        assert greedy[3].actions().tolist() == TRAINED_GREEDY_ACTIONS_3
        for i, trajectory in enumerate(greedy):
            assert not trajectory.truncated
            values = trajectory.value_estimates()
            first, last = TRAINED_GREEDY_VALUE_ENDPOINTS[i]
            assert float(values[0]) == pytest.approx(first, rel=1e-10, abs=1e-12), i
            assert float(values[-1]) == pytest.approx(last, rel=1e-10, abs=1e-12), i
            assert float(trajectory.hidden_states_after().mean()) == pytest.approx(
                TRAINED_GREEDY_HIDDEN_MEANS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.observations().sum()) == pytest.approx(
                TRAINED_GREEDY_OBS_SUMS[i], rel=1e-10, abs=1e-12
            ), i
            # per_step_penalty: total reward is exactly -makespan.
            assert trajectory.total_reward == -float(trajectory.makespan)

    def test_sampled_rollout_pinned(self, trained_policy_rollouts):
        _, _, sampled = trained_policy_rollouts
        assert [t.makespan for t in sampled] == TRAINED_SAMPLED_MAKESPANS
        assert sampled[0].actions().tolist() == TRAINED_SAMPLED_ACTIONS_0
        for i, trajectory in enumerate(sampled):
            assert float(trajectory.value_estimates().sum()) == pytest.approx(
                TRAINED_SAMPLED_VALUE_SUMS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.hidden_states_after().mean()) == pytest.approx(
                TRAINED_SAMPLED_HIDDEN_MEANS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.observations().sum()) == pytest.approx(
                TRAINED_SAMPLED_OBS_SUMS[i], rel=1e-10, abs=1e-12
            ), i


# ----------------------------------------------------------------------
# Philox stream-family golden trace
# ----------------------------------------------------------------------
# The counter-based family (``rng_family="philox"``) draws different —
# but equally reproducible — episodes than the legacy Generator streams
# (which stay the default and keep the pins above).  These pins freeze
# the philox family's exact env draws, CDF action sampling, epsilon
# replacement and stream cursor positions, so vectorized-draw refactors
# cannot silently shift the family.  The policy is the fixed-seed
# untrained net (no training run — the family pin is about streams, not
# weights).
PHILOX_GREEDY_MAKESPANS = [41, 67, 51, 33]
PHILOX_GREEDY_ACTIONS_0 = [6] + [5] * 40
PHILOX_GREEDY_VALUE_SUMS = [30.774886513779048, 26.883749127639664,
                            26.383117357422, 13.905140255057589]
PHILOX_GREEDY_HIDDEN_MEANS = [0.3215928471783039, 0.26122320316753606,
                              0.2690825834954904, 0.2626675606052696]
PHILOX_GREEDY_OBS_SUMS = [172.0039307364128, 277.2427546658738,
                          204.61647349286963, 148.8577932959364]
PHILOX_SAMPLED_MAKESPANS = [50, 42]
PHILOX_SAMPLED_ACTIONS_0 = [
    3, 5, 5, 6, 5, 3, 3, 5, 5, 5, 6, 4, 3, 2, 4, 5, 2, 3, 5, 5, 2, 2, 3, 2,
    3, 5, 5, 4, 5, 4, 4, 5, 2, 3, 0, 5, 4, 0, 5, 1, 4, 4, 2, 0, 3, 6, 3, 6,
    4, 6,
]
PHILOX_SAMPLED_VALUE_SUMS = [22.525916066988096, 23.43031291002561]
PHILOX_SAMPLED_HIDDEN_MEANS = [0.27780635130759723, 0.29892319999998773]
PHILOX_SAMPLED_OBS_SUMS = [203.959715977899, 194.6056694630931]
# Final cursor positions pin the draw-consumption contract itself:
# greedy consumes no action draws at all; a sampled step consumes one
# sampling uniform + one epsilon uniform per active row plus one
# replacement integer per firing row.
PHILOX_GREEDY_ENV_CURSORS = [83, 136, 104, 44]
PHILOX_GREEDY_ACT_CURSORS = [0, 0, 0, 0]
PHILOX_SAMPLED_ENV_CURSORS = [84, 98]
PHILOX_SAMPLED_ACT_CURSORS = [103, 89]


@pytest.fixture(scope="module")
def philox_policy_rollouts(system_config, real_traces):
    reward_config = RewardConfig(mode="per_step_penalty")
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=21)
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(system_config, reward_config)
    )
    greedy_rngs = derive_episode_streams(2024, len(real_traces), rng_family="philox")
    greedy = collector.collect_batch(
        policy, real_traces, greedy=True,
        episode_rngs=greedy_rngs[0], action_rngs=greedy_rngs[1],
    )
    sampled_rngs = derive_episode_streams(777, 2, rng_family="philox")
    sampled = collector.collect_batch(
        policy, real_traces[:2], greedy=False, epsilon=0.1,
        episode_rngs=sampled_rngs[0], action_rngs=sampled_rngs[1],
    )
    return greedy, greedy_rngs, sampled, sampled_rngs


class TestPhiloxGoldenTrace:
    def test_greedy_rollout_pinned(self, philox_policy_rollouts):
        greedy, _, _, _ = philox_policy_rollouts
        assert [t.makespan for t in greedy] == PHILOX_GREEDY_MAKESPANS
        assert greedy[0].actions().tolist() == PHILOX_GREEDY_ACTIONS_0
        for i, trajectory in enumerate(greedy):
            assert not trajectory.truncated
            assert float(trajectory.value_estimates().sum()) == pytest.approx(
                PHILOX_GREEDY_VALUE_SUMS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.hidden_states_after().mean()) == pytest.approx(
                PHILOX_GREEDY_HIDDEN_MEANS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.observations().sum()) == pytest.approx(
                PHILOX_GREEDY_OBS_SUMS[i], rel=1e-10, abs=1e-12
            ), i
            assert trajectory.total_reward == -float(trajectory.makespan)

    def test_sampled_rollout_pinned(self, philox_policy_rollouts):
        _, _, sampled, _ = philox_policy_rollouts
        assert [t.makespan for t in sampled] == PHILOX_SAMPLED_MAKESPANS
        assert sampled[0].actions().tolist() == PHILOX_SAMPLED_ACTIONS_0
        for i, trajectory in enumerate(sampled):
            assert float(trajectory.value_estimates().sum()) == pytest.approx(
                PHILOX_SAMPLED_VALUE_SUMS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.hidden_states_after().mean()) == pytest.approx(
                PHILOX_SAMPLED_HIDDEN_MEANS[i], rel=1e-10, abs=1e-12
            ), i
            assert float(trajectory.observations().sum()) == pytest.approx(
                PHILOX_SAMPLED_OBS_SUMS[i], rel=1e-10, abs=1e-12
            ), i

    def test_stream_cursors_pinned(self, philox_policy_rollouts):
        _, greedy_rngs, _, sampled_rngs = philox_policy_rollouts
        assert greedy_rngs[0].state()["cursors"] == PHILOX_GREEDY_ENV_CURSORS
        assert greedy_rngs[1].state()["cursors"] == PHILOX_GREEDY_ACT_CURSORS
        assert sampled_rngs[0].state()["cursors"] == PHILOX_SAMPLED_ENV_CURSORS
        assert sampled_rngs[1].state()["cursors"] == PHILOX_SAMPLED_ACT_CURSORS
