"""Seeded equivalence of the batched execution layer with the sequential one.

The contract under test: given the per-episode rng streams from
``derive_episode_streams``, the batched collector reproduces the
sequential reference collector bit for bit, trace by trace — and the
batched inference/update/evaluation paths built on top of it agree with
their sequential counterparts.
"""

import numpy as np
import pytest

from repro.drl.a2c import A2CConfig, A2CTrainer
from repro.drl.agent import DRLPolicyAgent
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import (
    BatchedRolloutCollector,
    RolloutCollector,
    Trajectory,
    TrajectoryBatch,
    Transition,
    derive_episode_streams,
)
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import TrainingError
from repro.pipeline.evaluation import evaluate_agent, evaluate_policy_batched
from repro.qbn.dataset import TransitionDataset


@pytest.fixture
def reward_config():
    return RewardConfig(mode="per_step_penalty")


@pytest.fixture
def collectors(system_config, reward_config):
    env = StorageAllocationEnv(system_config, reward_config=reward_config)
    vector_env = VectorStorageAllocationEnv(system_config, reward_config)
    return RolloutCollector(env, rng=0), BatchedRolloutCollector(vector_env, rng=0)


def _assert_trajectories_identical(seq: Trajectory, batched: Trajectory) -> None:
    assert len(seq) == len(batched)
    assert seq.makespan == batched.makespan
    assert seq.truncated == batched.truncated
    np.testing.assert_array_equal(seq.observations(), batched.observations())
    np.testing.assert_array_equal(seq.raw_observations(), batched.raw_observations())
    np.testing.assert_array_equal(seq.hidden_states_before(), batched.hidden_states_before())
    np.testing.assert_array_equal(seq.hidden_states_after(), batched.hidden_states_after())
    np.testing.assert_array_equal(seq.actions(), batched.actions())
    np.testing.assert_array_equal(seq.rewards(), batched.rewards())
    np.testing.assert_array_equal(seq.value_estimates(), batched.value_estimates())
    np.testing.assert_array_equal(seq.valid_action_masks(), batched.valid_action_masks())


class TestCollectorEquivalence:
    @pytest.mark.parametrize("epsilon,greedy", [(0.0, True), (0.1, False)])
    def test_batched_identical_to_sequential(
        self, collectors, real_traces, tiny_policy, epsilon, greedy
    ):
        sequential, batched_collector = collectors
        episode_rngs, action_rngs = derive_episode_streams(1234, len(real_traces))
        batched = batched_collector.collect_batch(
            tiny_policy,
            real_traces,
            epsilon=epsilon,
            greedy=greedy,
            episode_rngs=episode_rngs,
            action_rngs=action_rngs,
        )
        episode_rngs, action_rngs = derive_episode_streams(1234, len(real_traces))
        for i, trace in enumerate(real_traces):
            reference = sequential.collect(
                tiny_policy,
                trace,
                epsilon=epsilon,
                greedy=greedy,
                episode_seed=episode_rngs[i],
                action_rng=action_rngs[i],
            )
            _assert_trajectories_identical(reference, batched[i])

    def test_standard_profiles_equivalence(
        self, collectors, standard_suite, tiny_policy
    ):
        """The paper's standard workload profiles, all in one lockstep batch."""
        sequential, batched_collector = collectors
        traces = list(standard_suite.values())
        episode_rngs, action_rngs = derive_episode_streams(7, len(traces))
        batched = batched_collector.collect_batch(
            tiny_policy, traces, greedy=True,
            episode_rngs=episode_rngs, action_rngs=action_rngs,
        )
        episode_rngs, action_rngs = derive_episode_streams(7, len(traces))
        for i, trace in enumerate(traces):
            reference = sequential.collect(
                tiny_policy, trace, greedy=True,
                episode_seed=episode_rngs[i], action_rng=action_rngs[i],
            )
            _assert_trajectories_identical(reference, batched[i])

    def test_collect_many_chunks(self, collectors, real_traces, tiny_policy):
        _, batched_collector = collectors
        trajectories = batched_collector.collect_many(
            tiny_policy, real_traces, greedy=True, batch_size=2
        )
        assert [t.trace_name for t in trajectories] == [t.name for t in real_traces]

    def test_collect_batch_validation(self, collectors, real_traces, tiny_policy):
        _, batched_collector = collectors
        with pytest.raises(TrainingError):
            batched_collector.collect_batch(tiny_policy, [])
        with pytest.raises(TrainingError):
            batched_collector.collect_batch(
                tiny_policy, real_traces, episode_rngs=[0], action_rngs=[0]
            )


class TestActBatch:
    def test_act_batch_single_row_matches_act(self, tiny_policy):
        obs = np.random.default_rng(0).random((1, tiny_policy.config.observation_dim))
        hidden = np.zeros((1, tiny_policy.config.hidden_size))
        batched = tiny_policy.act_batch(
            obs, hidden, rngs=[np.random.default_rng(3)], greedy=False, epsilon=0.2
        )
        single = tiny_policy.act(
            obs[0], hidden[0], rng=np.random.default_rng(3), greedy=False, epsilon=0.2
        )
        assert single.action == int(batched.actions[0])
        np.testing.assert_array_equal(single.log_probs, batched.log_probs[0])
        np.testing.assert_array_equal(single.probabilities, batched.probabilities[0])
        np.testing.assert_array_equal(single.hidden_state, batched.hidden_states[0])
        assert single.value == float(batched.values[0])

    @pytest.mark.parametrize("hidden_size", [16, 48])
    def test_act_batch_rows_match_act(self, hidden_size):
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=hidden_size), rng=0)
        rng = np.random.default_rng(1)
        batch = 9
        obs = rng.random((batch, policy.config.observation_dim))
        hidden = rng.random((batch, policy.config.hidden_size)) * 0.1
        batched = policy.act_batch(
            obs, hidden, rngs=[np.random.default_rng(i) for i in range(batch)], greedy=False
        )
        for i in range(batch):
            single = policy.act(obs[i], hidden[i], rng=np.random.default_rng(i), greedy=False)
            assert single.action == int(batched.actions[i])
            np.testing.assert_array_equal(single.log_probs, batched.log_probs[i])
            np.testing.assert_array_equal(single.hidden_state, batched.hidden_states[i])
            assert single.value == float(batched.values[i])

    def test_inactive_rows_consume_no_randomness(self, tiny_policy):
        obs = np.random.default_rng(0).random((3, tiny_policy.config.observation_dim))
        hidden = np.zeros((3, tiny_policy.config.hidden_size))
        rngs = [np.random.default_rng(i) for i in range(3)]
        active = np.array([True, False, True])
        out = tiny_policy.act_batch(obs, hidden, rngs=rngs, greedy=False, active=active)
        assert out.actions[1] == 0
        # The inactive row's generator is untouched.
        assert rngs[1].random() == np.random.default_rng(1).random()

    def test_inactive_rows_keep_hidden_and_active_rows_match_full_batch(
        self, tiny_policy
    ):
        """The forward pass skips inactive rows: they keep their input
        hidden state, and — because every inference kernel is row-wise
        batch-size stable — the active rows are bit-identical to a
        full-batch call."""
        rng = np.random.default_rng(4)
        obs = rng.random((4, tiny_policy.config.observation_dim))
        hidden = rng.random((4, tiny_policy.config.hidden_size)) * 0.1
        active = np.array([True, False, True, False])
        masked = tiny_policy.act_batch(
            obs, hidden, rngs=[np.random.default_rng(i) for i in range(4)],
            greedy=False, active=active,
        )
        full = tiny_policy.act_batch(
            obs, hidden, rngs=[np.random.default_rng(i) for i in range(4)],
            greedy=False,
        )
        for i in (1, 3):
            np.testing.assert_array_equal(masked.hidden_states[i], hidden[i])
            assert masked.actions[i] == 0
        for i in (0, 2):
            assert masked.actions[i] == full.actions[i]
            np.testing.assert_array_equal(
                masked.hidden_states[i], full.hidden_states[i]
            )
            np.testing.assert_array_equal(masked.log_probs[i], full.log_probs[i])
            assert masked.values[i] == full.values[i]


class TestVectorizedReturns:
    def _trajectory(self, rewards):
        trajectory = Trajectory(trace_name="t")
        for reward in rewards:
            trajectory.transitions.append(
                Transition(np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2), 0, reward, 0.0, False)
            )
        return trajectory

    @pytest.mark.parametrize("gamma", [0.0, 0.5, 0.9, 0.99, 1.0])
    def test_discounted_returns_match_loop(self, gamma):
        rng = np.random.default_rng(0)
        rewards = rng.normal(size=313).tolist()
        trajectory = self._trajectory(rewards)
        expected = np.zeros(len(rewards))
        running = 0.0
        for t in range(len(rewards) - 1, -1, -1):
            running = rewards[t] + gamma * running
            expected[t] = running
        np.testing.assert_allclose(
            trajectory.discounted_returns(gamma), expected, rtol=1e-12, atol=1e-12
        )

    def test_total_reward(self):
        trajectory = self._trajectory([1.5, -2.0, 0.25])
        assert trajectory.total_reward == pytest.approx(-0.25, abs=1e-12)

    def test_invalid_gamma(self):
        with pytest.raises(TrainingError):
            self._trajectory([1.0]).discounted_returns(1.5)


class TestTrajectoryBatch:
    def test_padding_and_masks(self, collectors, real_traces, tiny_policy):
        _, batched_collector = collectors
        trajectories = batched_collector.collect_batch(tiny_policy, real_traces, greedy=True)
        batch = TrajectoryBatch.from_trajectories(trajectories)
        horizon = max(len(t) for t in trajectories)
        assert batch.max_steps == horizon
        assert batch.batch_size == len(trajectories)
        assert batch.total_steps == sum(len(t) for t in trajectories)
        for b, trajectory in enumerate(trajectories):
            assert batch.mask[: len(trajectory), b].all()
            assert not batch.mask[len(trajectory):, b].any()
            np.testing.assert_array_equal(
                batch.observations[: len(trajectory), b], trajectory.observations()
            )

    def test_padded_returns(self, collectors, real_traces, tiny_policy):
        _, batched_collector = collectors
        trajectories = batched_collector.collect_batch(tiny_policy, real_traces[:2], greedy=True)
        batch = TrajectoryBatch.from_trajectories(trajectories)
        padded = batch.padded_returns(0.9)
        for b, trajectory in enumerate(trajectories):
            np.testing.assert_array_equal(
                padded[: len(trajectory), b], trajectory.discounted_returns(0.9)
            )
            assert (padded[len(trajectory):, b] == 0).all()

    def test_from_batch_dataset_matches_from_trajectories(
        self, collectors, real_traces, tiny_policy
    ):
        _, batched_collector = collectors
        trajectories = batched_collector.collect_batch(tiny_policy, real_traces, greedy=True)
        reference = TransitionDataset.from_trajectories(trajectories)
        batched = TransitionDataset.from_batch(TrajectoryBatch.from_trajectories(trajectories))
        np.testing.assert_array_equal(reference.observations, batched.observations)
        np.testing.assert_array_equal(reference.raw_observations, batched.raw_observations)
        np.testing.assert_array_equal(reference.hidden_before, batched.hidden_before)
        np.testing.assert_array_equal(reference.hidden_after, batched.hidden_after)
        np.testing.assert_array_equal(reference.actions, batched.actions)
        np.testing.assert_array_equal(reference.episode_ids, batched.episode_ids)
        np.testing.assert_array_equal(reference.step_ids, batched.step_ids)

    def test_empty_inputs_rejected(self):
        with pytest.raises(TrainingError):
            TrajectoryBatch.from_trajectories([])
        with pytest.raises(TrainingError):
            TrajectoryBatch.from_trajectories([Trajectory(trace_name="empty")])


class TestBatchSizeDegradation:
    """The lockstep path degrades gracefully at B=1 and partial batches."""

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, None])
    def test_collect_many_shapes_and_order(
        self, collectors, real_traces, tiny_policy, batch_size
    ):
        """Any chunking of the episode count — including B=1 and a final
        partial chunk — yields one well-formed trajectory per trace."""
        _, batched_collector = collectors
        trajectories = batched_collector.collect_many(
            tiny_policy, real_traces, greedy=True, batch_size=batch_size
        )
        assert [t.trace_name for t in trajectories] == [t.name for t in real_traces]
        for trajectory in trajectories:
            assert len(trajectory) > 0
            assert trajectory.makespan == len(trajectory)
            masks = trajectory.valid_action_masks()
            assert masks.shape == (len(trajectory), tiny_policy.config.num_actions)
            assert masks[:, 0].all()

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_trajectory_batch_shapes_and_masks(
        self, collectors, real_traces, tiny_policy, width
    ):
        _, batched_collector = collectors
        trajectories = batched_collector.collect_batch(
            tiny_policy, real_traces[:width], greedy=True
        )
        batch = TrajectoryBatch.from_trajectories(trajectories)
        horizon = max(len(t) for t in trajectories)
        obs_dim = tiny_policy.config.observation_dim
        hidden_dim = tiny_policy.config.hidden_size
        assert batch.observations.shape == (horizon, width, obs_dim)
        assert batch.hidden_before.shape == (horizon, width, hidden_dim)
        assert batch.actions.shape == (horizon, width)
        assert batch.mask.shape == (horizon, width)
        assert batch.total_steps == sum(len(t) for t in trajectories)
        time_idx, env_idx = batch.valid_positions()
        assert batch.mask[time_idx, env_idx].all()
        # Padded rows (if any) are zero and masked out.
        padded = ~batch.mask
        assert (batch.observations[padded] == 0).all()
        assert (batch.rewards[padded] == 0).all()

    def test_single_trace_batch_matches_sequential(
        self, collectors, short_trace, tiny_policy
    ):
        """B=1 through the vector env is still bit-identical to sequential."""
        sequential, batched_collector = collectors
        episode_rngs, action_rngs = derive_episode_streams(55, 1)
        batched = batched_collector.collect_batch(
            tiny_policy, [short_trace], greedy=True,
            episode_rngs=episode_rngs, action_rngs=action_rngs,
        )
        episode_rngs, action_rngs = derive_episode_streams(55, 1)
        reference = sequential.collect(
            tiny_policy, short_trace, greedy=True,
            episode_seed=episode_rngs[0], action_rng=action_rngs[0],
        )
        _assert_trajectories_identical(reference, batched[0])


class TestBatchedTraining:
    def test_batched_update_matches_per_trajectory_update(
        self, system_config, reward_config, short_trace
    ):
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        reference_policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=9)
        batched_policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=9)
        collector = RolloutCollector(env, rng=0)
        trajectory = collector.collect(
            reference_policy, short_trace, greedy=True, episode_seed=0
        )
        reference_trainer = A2CTrainer(
            reference_policy, env,
            A2CConfig(use_batched_rollouts=False, batched_updates=False), rng=0,
        )
        batched_trainer = A2CTrainer(
            batched_policy, env,
            A2CConfig(use_batched_rollouts=True, batched_updates=True), rng=0,
        )
        reference_losses = reference_trainer._update_from_trajectory(trajectory)
        batched_losses = batched_trainer._update_from_batch([trajectory])
        for key, value in reference_losses.items():
            assert batched_losses[key] == pytest.approx(value, rel=1e-9, abs=1e-9), key

    def test_training_with_batched_collection_runs(
        self, system_config, reward_config, real_traces
    ):
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=12), rng=3)
        trainer = A2CTrainer(
            policy, env, A2CConfig(episodes_per_epoch=3, n_step=4), rng=0
        )
        before = {k: v.copy() for k, v in policy.state_dict().items()}
        history = trainer.train(real_traces[:2], epochs=2)
        assert len(history) == 2
        after = policy.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)


class TestBatchedEvaluation:
    def test_matches_sequential_agent_evaluation(
        self, system_config, reward_config, real_traces, tiny_policy
    ):
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        agent = DRLPolicyAgent(tiny_policy, env.observation_encoder)
        reference = evaluate_agent(
            agent, real_traces, system_config=system_config,
            reward_config=reward_config, episode_seed=3,
        )
        batched = evaluate_policy_batched(
            tiny_policy, real_traces, system_config=system_config,
            reward_config=reward_config, episode_seed=3,
        )
        assert batched.agent_name == agent.name
        assert batched.trace_names == reference.trace_names
        assert batched.makespans == reference.makespans
        assert len(batched.episodes) == len(reference.episodes)
        for batched_episode, reference_episode in zip(batched.episodes, reference.episodes):
            assert batched_episode.makespan == reference_episode.makespan
            assert batched_episode.action_histogram() == reference_episode.action_histogram()
