"""End-to-end pipeline smoke coverage at CI scale.

Reuses the session-scoped ``tiny_pipeline_result`` (one full
``LearningAidedPipeline.run`` at tiny settings) and checks every
artefact is usable: the trained DRL agent and the extracted-FSM agent
both act in a live environment, and the ``pipeline.experiments`` helpers
construct/validate/run at small scale.
"""

import numpy as np
import pytest

from repro.env.environment import StorageAllocationEnv
from repro.errors import ConfigurationError
from repro.pipeline.experiments import run_baseline_comparison, small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline, PipelineConfig


class TestPipelineRunArtifacts:
    def test_all_artifacts_populated(self, tiny_pipeline_result, tiny_pipeline_config):
        result = tiny_pipeline_result
        assert len(result.training_history) == tiny_pipeline_config.curriculum.total_epochs
        assert result.extraction.fsm.num_states > 0
        assert len(result.transition_dataset) > 0
        assert len(result.standard_traces) > 0
        assert len(result.real_traces) == tiny_pipeline_config.num_real_traces
        assert len(result.eval_traces) == tiny_pipeline_config.num_eval_traces
        assert result.interpretation

    @pytest.mark.parametrize("agent_factory", ["drl_agent", "fsm_agent"])
    def test_agents_act_in_environment(
        self, tiny_pipeline_result, tiny_pipeline_config, agent_factory
    ):
        config = tiny_pipeline_config
        env = StorageAllocationEnv(config.system, reward_config=config.reward, rng=0)
        agent = getattr(tiny_pipeline_result, agent_factory)(env)
        observation = env.reset(tiny_pipeline_result.eval_traces[0], rng=0)
        agent.reset()
        steps = 0
        while True:
            step = env.step(agent.act(observation))
            observation = step.observation
            steps += 1
            if step.done or steps > 500:
                break
        assert step.done
        assert env.simulator.makespan == steps


class TestExperimentHelpers:
    def test_small_pipeline_config_validates(self):
        config = small_pipeline_config(seed=3, standard_epochs=2, real_epochs=2)
        assert isinstance(config, PipelineConfig)
        config.validate()
        assert config.seed == 3
        assert config.curriculum.total_epochs == 4
        # It must be constructible into a pipeline without touching training.
        pipeline = LearningAidedPipeline(config)
        standard, real = pipeline.build_workloads()
        assert len(standard) > 0
        assert len(real) == config.num_real_traces

    def test_small_pipeline_config_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            small_pipeline_config(num_eval_traces=0).validate()

    def test_run_baseline_comparison_small_scale(self):
        metrics = run_baseline_comparison(num_traces=2, seed=0, duration=12)
        assert set(metrics) == {
            "default_mean", "handcrafted_mean", "handcrafted_reduction",
        }
        assert metrics["default_mean"] > 0
        assert metrics["handcrafted_mean"] > 0
        assert np.isfinite(metrics["handcrafted_reduction"])
