"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.utils.serialization import (
    atomic_write_text,
    load_json,
    load_npz,
    save_json,
    save_npz,
)


class TestAtomicWrites:
    def test_replaces_content_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out" / "file.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert [p.name for p in target.parent.iterdir()] == ["file.txt"]

    def test_failed_json_write_preserves_existing_file(self, tmp_path):
        target = tmp_path / "result.json"
        save_json(target, {"value": 1})
        before = target.read_bytes()
        with pytest.raises(SerializationError):
            save_json(target, {"value": object()})
        # The old complete file survives; no temp litter either.
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["result.json"]

    def test_save_json_is_atomic_rename(self, tmp_path, monkeypatch):
        """save_json goes through atomic_write_text (temp + os.replace)."""
        calls = []
        import repro.utils.serialization as serialization

        real_replace = serialization.os.replace

        def spying_replace(src, dst):
            calls.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(serialization.os, "replace", spying_replace)
        save_json(tmp_path / "a.json", {"x": 1})
        assert len(calls) == 1
        assert calls[0][1].endswith("a.json")
        assert calls[0][0] != calls[0][1]


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "data.json"
        payload = {"a": 1, "b": [1, 2, 3], "c": {"nested": 2.5}}
        save_json(path, payload)
        assert load_json(path) == payload

    def test_numpy_values_converted(self, tmp_path):
        path = tmp_path / "np.json"
        save_json(path, {"x": np.float64(1.5), "y": np.arange(3), "z": np.int32(7)})
        loaded = load_json(path)
        assert loaded == {"x": 1.5, "y": [0, 1, 2], "z": 7}

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "missing.json")

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(path)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        arrays = {"w": np.random.default_rng(0).random((3, 4)), "b": np.zeros(4)}
        save_npz(path, arrays)
        loaded = load_npz(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_allclose(loaded["w"], arrays["w"])

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_npz(tmp_path / "missing.npz")

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.npz"
        save_npz(path, {"a": np.ones(2)})
        assert path.exists()
