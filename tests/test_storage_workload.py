"""Tests for WorkloadInterval and WorkloadTrace (including property-based invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.storage.iorequest import NUM_IO_TYPES
from repro.storage.workload import WorkloadInterval, WorkloadTrace


def _uniform_interval(requests=1000.0):
    return WorkloadInterval(np.full(NUM_IO_TYPES, 1.0 / NUM_IO_TYPES), requests)


def _read_only_interval(requests=1000.0):
    ratios = np.zeros(NUM_IO_TYPES)
    ratios[:7] = 1.0 / 7
    return WorkloadInterval(ratios, requests)


def _write_only_interval(requests=1000.0):
    ratios = np.zeros(NUM_IO_TYPES)
    ratios[7:] = 1.0 / 7
    return WorkloadInterval(ratios, requests)


class TestWorkloadInterval:
    def test_ratios_normalised_and_frozen(self):
        interval = _uniform_interval()
        assert interval.ratios.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            interval.ratios[0] = 0.5

    def test_invalid_shape(self):
        with pytest.raises(WorkloadError):
            WorkloadInterval(np.ones(5) / 5, 10.0)

    def test_negative_ratio_rejected(self):
        ratios = np.full(NUM_IO_TYPES, 1.0 / NUM_IO_TYPES)
        ratios[0] = -0.5
        with pytest.raises(WorkloadError):
            WorkloadInterval(ratios, 10.0)

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            WorkloadInterval(np.full(NUM_IO_TYPES, 0.5), 10.0)

    def test_negative_requests_rejected(self):
        with pytest.raises(WorkloadError):
            _uniform_interval(-1.0)

    def test_read_write_split(self):
        read = _read_only_interval()
        write = _write_only_interval()
        assert read.write_kb() == 0.0
        assert read.write_fraction() == 0.0
        assert write.read_kb() == 0.0
        assert write.write_fraction() == 1.0

    def test_total_kb_consistency(self):
        interval = _uniform_interval()
        assert interval.total_kb() == pytest.approx(interval.read_kb() + interval.write_kb())

    def test_size_vector_signs(self):
        sizes = _uniform_interval().size_vector()
        assert np.all(sizes[:7] > 0) and np.all(sizes[7:] < 0)

    def test_feature_vector_length(self):
        assert _uniform_interval().as_feature_vector().shape == (2 * NUM_IO_TYPES + 1,)

    def test_scaled(self):
        interval = _uniform_interval(100.0)
        assert interval.scaled(2.0).total_requests == 200.0
        with pytest.raises(WorkloadError):
            interval.scaled(-1.0)

    def test_empty_interval(self):
        empty = WorkloadInterval.empty()
        assert empty.total_requests == 0.0
        assert empty.total_kb() == 0.0

    @given(st.floats(1.0, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_property_total_scales_linearly(self, requests):
        base = _uniform_interval(1.0).total_kb()
        assert _uniform_interval(requests).total_kb() == pytest.approx(base * requests)

    @given(st.lists(st.floats(0.001, 10.0), min_size=NUM_IO_TYPES, max_size=NUM_IO_TYPES))
    @settings(max_examples=25, deadline=None)
    def test_property_write_fraction_bounded(self, weights):
        ratios = np.array(weights)
        ratios = ratios / ratios.sum()
        interval = WorkloadInterval(ratios, 100.0)
        assert 0.0 <= interval.write_fraction() <= 1.0


class TestWorkloadTrace:
    def _trace(self, n=5):
        return WorkloadTrace("t", [_uniform_interval(100.0) for _ in range(n)])

    def test_len_and_duration(self):
        trace = self._trace(4)
        assert len(trace) == trace.duration == 4

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace("", [])

    def test_append_type_check(self):
        trace = self._trace(1)
        with pytest.raises(WorkloadError):
            trace.append("not an interval")

    def test_totals(self):
        trace = self._trace(3)
        assert trace.total_requests() == pytest.approx(300.0)
        assert trace.total_kb() == pytest.approx(3 * _uniform_interval(100.0).total_kb())

    def test_slice(self):
        trace = self._trace(6)
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub.metadata["sliced_from"] == "t"
        with pytest.raises(WorkloadError):
            trace.slice(4, 2)

    def test_concatenate(self):
        combined = WorkloadTrace.concatenate([self._trace(2), self._trace(3)], name="joined")
        assert len(combined) == 5
        assert combined.metadata["sources"] == ["t", "t"]
        with pytest.raises(WorkloadError):
            WorkloadTrace.concatenate([], name="empty")

    def test_array_roundtrip(self):
        trace = self._trace(4)
        arrays = trace.to_arrays()
        rebuilt = WorkloadTrace.from_arrays("copy", arrays["ratios"], arrays["total_requests"])
        assert len(rebuilt) == 4
        np.testing.assert_allclose(
            rebuilt.intervals[0].ratios, trace.intervals[0].ratios
        )

    def test_from_arrays_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace.from_arrays("bad", np.zeros((3, 5)), np.zeros(3))
        with pytest.raises(WorkloadError):
            WorkloadTrace.from_arrays("bad", np.full((3, NUM_IO_TYPES), 1 / NUM_IO_TYPES), np.zeros(2))

    def test_mean_write_fraction_bounds(self):
        trace = self._trace(3)
        assert 0.0 <= trace.mean_write_fraction() <= 1.0
        assert WorkloadTrace("empty-ok", [_uniform_interval(0.0)]).mean_write_fraction() == 0.0
