"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        assert "a" in text and "bb" in text
        assert "2.500" in text
        assert "3" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["longvalue", 1], ["x", 2]])
        lines = text.splitlines()
        # Separator and rows share the same width.
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_float_format_override(self):
        text = format_table(["v"], [[1.23456]], floatfmt=".1f")
        assert "1.2" in text and "1.2345" not in text


class TestFormatSeries:
    def test_empty(self):
        assert "(empty)" in format_series("s", [], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])

    def test_contains_values(self):
        text = format_series("loss", [0, 1, 2], [0.5, 0.25, 0.125])
        assert "loss" in text and "0:0.500" in text and "[3 pts]" in text

    def test_subsampling_long_series(self):
        xs = list(range(1000))
        ys = [float(x) for x in xs]
        text = format_series("s", xs, ys, max_points=10)
        assert "[1000 pts]" in text
        # Only ~10 points are rendered.
        assert text.count(":") <= 12
