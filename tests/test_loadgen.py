"""Tests for the fleet-scale sim-to-serve load harness."""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile

import numpy as np
import pytest

from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import ConfigurationError
from repro.fsm.machine import FiniteStateMachine
from repro.loadgen import (
    FleetDriver,
    FleetSchedule,
    InProcessTransport,
    LoadPhase,
    SocketTransport,
)
from repro.qbn.autoencoder import build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import (
    CompiledFSMBackend,
    CompiledFSMPolicy,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
)
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.workloads import ZipfianTenantMix
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator


# ----------------------------------------------------------------------
# Shared small artefacts (mirrors test_netserver.py's handmade machine)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_env():
    return StorageAllocationEnv(
        StorageSystemConfig(), reward_config=RewardConfig(mode="per_step_penalty"), rng=0
    )


@pytest.fixture(scope="module")
def observation_stream(serving_env):
    generator = StandardWorkloadGenerator(
        serving_env.system_config, GeneratorConfig(), rng=0
    )
    trace = generator.generate("web_server", duration=24)
    rng = np.random.default_rng(9)
    observation = serving_env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = serving_env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    return np.array(rows)


@pytest.fixture(scope="module")
def compiled_policy(serving_env, observation_stream):
    rng = np.random.default_rng(3)
    qbn = build_observation_qbn(35, latent_dim=6, hidden_dim=16, rng=4)
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = serving_env.observation_encoder.normalize_batch(observation_stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    return CompiledFSMPolicy.compile(fsm, qbn, encoder=serving_env.observation_encoder)


def _make_server(compiled_policy, serving_env, capacity: int = 256) -> PolicyServer:
    return PolicyServer(
        CompiledFSMBackend(compiled_policy),
        serving_env.observation_encoder,
        initial_capacity=capacity,
        max_batch_size=128,
    )


def _small_schedule(**overrides) -> FleetSchedule:
    base = dict(
        sessions=48,
        shard_size=16,
        trace_duration=8,
        trace_variants=2,
        phases=[
            LoadPhase(name="warmup", steps=1),
            LoadPhase(name="churn", steps=2, churn_rate=0.2, stale_probes_per_step=2),
            LoadPhase(
                name="flash_crowd",
                steps=2,
                burst_multiplier=2,
                burst_tenant_fraction=0.25,
            ),
        ],
    )
    base.update(overrides)
    return FleetSchedule(**base)


# ----------------------------------------------------------------------
# Tenant mix
# ----------------------------------------------------------------------
class TestZipfianTenantMix:
    def test_weights_are_normalised_and_rank_ordered(self):
        mix = ZipfianTenantMix(["a", "b", "c", "d"], skew=1.2)
        weights = mix.weights()
        assert pytest.approx(sum(weights.values())) == 1.0
        assert weights["a"] > weights["b"] > weights["c"] > weights["d"]

    def test_zero_skew_is_uniform(self):
        mix = ZipfianTenantMix(["a", "b", "c"], skew=0.0)
        assert pytest.approx(list(mix.weights().values())) == [1 / 3] * 3

    def test_assignment_is_inverse_cdf(self):
        mix = ZipfianTenantMix(["a", "b"], skew=0.0)  # cdf = [0.5, 1.0]
        assert mix.assign(np.array([0.0, 0.49, 0.5, 0.999])) == [
            "a", "a", "b", "b",
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfianTenantMix([])
        with pytest.raises(ConfigurationError):
            ZipfianTenantMix(["a", "a"])
        with pytest.raises(ConfigurationError):
            ZipfianTenantMix(["a"], skew=-1.0)
        with pytest.raises(ConfigurationError):
            ZipfianTenantMix(["a", "b"]).assign(np.array([1.0]))


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
class TestFleetSchedule:
    def test_roundtrip_and_digest(self):
        schedule = _small_schedule()
        clone = FleetSchedule.from_dict(schedule.as_dict())
        assert clone.as_dict() == schedule.as_dict()
        assert clone.digest() == schedule.digest()
        different = _small_schedule(sessions=49)
        assert different.digest() != schedule.digest()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _small_schedule(sessions=0).validate()
        with pytest.raises(ConfigurationError):
            _small_schedule(phases=[]).validate()
        with pytest.raises(ConfigurationError):
            _small_schedule(
                phases=[LoadPhase(name="x", steps=1), LoadPhase(name="x", steps=1)]
            ).validate()
        with pytest.raises(ConfigurationError):
            LoadPhase(name="bad", steps=1, churn_rate=1.5).validate()
        with pytest.raises(ConfigurationError):
            LoadPhase(name="bad", steps=1, burst_multiplier=0).validate()

    def test_totals(self):
        schedule = _small_schedule()
        assert schedule.total_steps == 5
        assert schedule.num_shards() == 3


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class TestFleetDriver:
    def test_deterministic_report_for_fixed_seed(
        self, compiled_policy, serving_env
    ):
        """The pin: same (base_seed, schedule) → identical report bytes."""
        reports = []
        for _ in range(2):
            server = _make_server(compiled_policy, serving_env)
            driver = FleetDriver(
                _small_schedule(), InProcessTransport(server), base_seed=42
            )
            reports.append(driver.run())
        assert reports[0].deterministic_json() == reports[1].deterministic_json()
        assert reports[0].digest == reports[1].digest

    def test_different_seed_changes_the_run(self, compiled_policy, serving_env):
        digests = []
        for seed in (0, 1):
            server = _make_server(compiled_policy, serving_env)
            driver = FleetDriver(
                _small_schedule(), InProcessTransport(server), base_seed=seed
            )
            digests.append(driver.run().deterministic_json())
        assert digests[0] != digests[1]

    def test_schedule_knobs_show_up_in_counters(
        self, compiled_policy, serving_env
    ):
        server = _make_server(compiled_policy, serving_env)
        schedule = _small_schedule()
        report = FleetDriver(
            schedule, InProcessTransport(server), base_seed=7
        ).run()
        det = report.deterministic_dict()
        by_name = {p["name"]: p for p in det["phases"]}
        # Every session decides once per step; warmup has no churn.
        assert by_name["warmup"]["decisions"] == 48
        assert by_name["warmup"]["churn_cycles"] == 0
        assert by_name["churn"]["churn_cycles"] > 0
        assert by_name["churn"]["stale_rejections"] > 0
        assert by_name["flash_crowd"]["probe_decisions"] > 0
        # No tenant ever lost its session: occupancy is flat at the
        # fleet size and the server saw no deeper peak.
        assert det["occupancy_timeline"] == [48] * schedule.total_steps
        assert server.table.peak_active == 48
        assert server.table.num_active == 48
        # Churn really recycled slots: generations moved.
        assert server.table.generation.max() >= 1

    def test_report_json_is_loadable_and_structured(
        self, compiled_policy, serving_env, tmp_path
    ):
        server = _make_server(compiled_policy, serving_env)
        report = FleetDriver(
            _small_schedule(), InProcessTransport(server), base_seed=3
        ).run()
        path = tmp_path / "fleet.json"
        report.save(path)
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "config", "deterministic", "timing", "telemetry", "server"
        }
        assert payload["config"]["schedule_digest"] == _small_schedule().digest()
        assert payload["deterministic"]["digest"] == report.digest
        assert payload["timing"]["latency"]["count"] > 0
        assert payload["server"]["transport"] == "inprocess"

    def test_socket_transport_matches_inprocess_byte_for_byte(
        self, compiled_policy, serving_env
    ):
        """Same fleet through real sockets → identical deterministic section."""
        schedule = _small_schedule()
        server = _make_server(compiled_policy, serving_env)
        inproc = FleetDriver(
            schedule, InProcessTransport(server), base_seed=11
        ).run()

        async def socket_run():
            sock_server = _make_server(compiled_policy, serving_env)
            netserver = PolicyNetServer(
                sock_server, flush_interval=0.001, max_inflight=64
            )
            socket_root = tempfile.mkdtemp(prefix="rfleet", dir="/tmp")
            socket_path = os.path.join(socket_root, "s.sock")
            try:
                await netserver.start(unix_path=socket_path)
                clients = [
                    await PolicyClient.connect_unix(socket_path) for _ in range(3)
                ]
                driver = FleetDriver(
                    schedule,
                    SocketTransport(clients, per_connection_window=16),
                    base_seed=11,
                )
                report = await driver.run_async()
                for client in clients:
                    await client.close()
                summary = await netserver.drain()
                return report, summary
            finally:
                shutil.rmtree(socket_root, ignore_errors=True)

        socket_report, summary = asyncio.run(socket_run())
        assert socket_report.deterministic_json() == inproc.deterministic_json()
        assert socket_report.digest == inproc.digest
        # The deterministic run never trips back-pressure or drops replies.
        assert summary["busy_rejections"] == 0
        assert summary["replies_dropped"] == 0
        assert summary["flush_loop_errors"] == 0

    def test_recycle_restarts_finished_shards(self, compiled_policy, serving_env):
        server = _make_server(compiled_policy, serving_env)
        # Traces last 4 intervals but the phase runs 10 steps: every
        # shard must recycle onto its next trace variant at least once.
        schedule = _small_schedule(
            sessions=32,
            shard_size=16,
            trace_duration=4,
            phases=[LoadPhase(name="long_haul", steps=10)],
        )
        report = FleetDriver(
            schedule, InProcessTransport(server), base_seed=5
        ).run()
        assert report.recycles >= 2
        assert report.deterministic_dict()["decisions_total"] == 32 * 10
