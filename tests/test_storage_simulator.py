"""Tests for the storage simulator: dispatch, stepping, invariants, makespan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.storage.dispatcher import polling_dispatch, proportional_dispatch, get_dispatcher
from repro.storage.levels import LEVELS, Level
from repro.storage.migration import MigrationAction
from repro.storage.simulator import StorageSimulator, StorageSystemConfig
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.storage.iorequest import NUM_IO_TYPES


def _trace(intervals=5, requests=5000.0, write_heavy=False, name="test-trace"):
    ratios = np.zeros(NUM_IO_TYPES)
    if write_heavy:
        ratios[7:] = 1.0 / 7
    else:
        ratios[:] = 1.0 / NUM_IO_TYPES
    return WorkloadTrace(name, [WorkloadInterval(ratios, requests) for _ in range(intervals)])


class TestDispatchers:
    def test_polling_even_split(self):
        result = polling_dispatch(100.0, [50.0, 50.0])
        np.testing.assert_allclose(result.assigned_kb, [50.0, 50.0])
        assert result.total_processed == 100.0
        assert result.leftover_kb == 0.0

    def test_polling_no_work_stealing(self):
        # Slow core keeps its share even though the fast core has spare capacity.
        result = polling_dispatch(100.0, [10.0, 100.0])
        assert result.total_processed == pytest.approx(60.0)
        assert result.leftover_kb == pytest.approx(40.0)

    def test_proportional_uses_capacity(self):
        result = proportional_dispatch(100.0, [10.0, 100.0])
        assert result.total_processed == pytest.approx(100.0)

    def test_utilization_bounds(self):
        result = polling_dispatch(1e9, [10.0, 10.0])
        assert result.utilization == 1.0
        assert np.all(result.per_core_utilization <= 1.0)

    def test_zero_capacity_core(self):
        result = polling_dispatch(10.0, [0.0, 10.0])
        assert result.per_core_utilization[0] == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            polling_dispatch(-1.0, [10.0])
        with pytest.raises(SimulationError):
            polling_dispatch(1.0, [])
        with pytest.raises(SimulationError):
            get_dispatcher("nonexistent")

    def test_get_dispatcher(self):
        assert get_dispatcher("polling") is polling_dispatch
        assert get_dispatcher("proportional") is proportional_dispatch


class TestConfigValidation:
    def test_default_is_valid(self):
        StorageSystemConfig().validate()

    def test_allocation_must_sum(self):
        cfg = StorageSystemConfig(total_cores=10)
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_invalid_miss_rate(self):
        cfg = StorageSystemConfig(cache_miss_rate=1.5)
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_invalid_penalty(self):
        with pytest.raises(ConfigurationError):
            StorageSystemConfig(migration_penalty=1.0).validate()

    def test_with_overrides(self):
        cfg = StorageSystemConfig().with_overrides(cache_miss_rate=0.5)
        assert cfg.cache_miss_rate == 0.5
        assert StorageSystemConfig().cache_miss_rate == 0.3

    def test_total_capability(self):
        cfg = StorageSystemConfig()
        assert cfg.total_capability_kb() == cfg.total_cores * cfg.core_capability_kb


class TestSimulatorLifecycle:
    def test_requires_reset(self):
        sim = StorageSimulator(rng=0)
        with pytest.raises(SimulationError):
            sim.step(0)
        with pytest.raises(SimulationError):
            sim.core_counts()

    def test_empty_trace_rejected(self):
        sim = StorageSimulator(rng=0)
        with pytest.raises(SimulationError):
            sim.reset(WorkloadTrace("empty", []))

    def test_step_after_done_raises(self):
        sim = StorageSimulator(rng=0)
        sim.reset(_trace(1, requests=1.0), rng=0)
        while not sim.is_done:
            sim.step(0)
        with pytest.raises(SimulationError):
            sim.step(0)

    def test_reset_restores_state(self):
        sim = StorageSimulator(rng=0)
        trace = _trace(3)
        sim.run(trace, lambda s: MigrationAction.NOOP, rng=1)
        first = sim.makespan
        sim.reset(trace, rng=1)
        assert sim.interval_index == 0
        assert all(v == 0.0 for v in sim.backlog_kb().values())
        sim2 = StorageSimulator(rng=0)
        sim2.run(trace, lambda s: MigrationAction.NOOP, rng=1)
        assert sim2.makespan == first


class TestSimulatorInvariants:
    def test_makespan_at_least_trace_length(self):
        sim = StorageSimulator(rng=0)
        metrics = sim.run(_trace(6), lambda s: MigrationAction.NOOP, rng=0)
        assert metrics.makespan >= 6

    def test_core_count_conserved(self):
        cfg = StorageSystemConfig()
        sim = StorageSimulator(cfg, rng=0)
        sim.reset(_trace(10), rng=0)
        actions = [1, 2, 3, 4, 5, 6, 0, 1, 2, 3]
        for action in actions:
            if sim.is_done:
                break
            metrics = sim.step(action)
            assert sum(metrics.core_counts.values()) == cfg.total_cores
            assert all(
                count >= cfg.min_cores_per_level for count in metrics.core_counts.values()
            )

    def test_all_work_processed_when_done(self):
        sim = StorageSimulator(rng=0)
        trace = _trace(5)
        metrics = sim.run(trace, lambda s: MigrationAction.NOOP, rng=0)
        assert not metrics.truncated
        assert sim.is_done
        assert all(v <= 1e-9 for v in sim.backlog_kb().values())
        # NORMAL processes exactly the injected payload.
        processed_normal = sum(m.processed_kb[Level.NORMAL] for m in metrics.intervals)
        assert processed_normal == pytest.approx(trace.total_kb(), rel=1e-9)

    def test_utilization_bounds(self):
        sim = StorageSimulator(rng=0)
        metrics = sim.run(_trace(5), lambda s: MigrationAction.NOOP, rng=0)
        for interval in metrics.intervals:
            for level in LEVELS:
                assert 0.0 <= interval.utilization[level] <= 1.0

    def test_write_heavy_loads_kv_rv(self):
        sim = StorageSimulator(rng=0)
        write_demand = sim.demand_for(_trace(1, write_heavy=True)[0])
        read_demand = sim.demand_for(_trace(1, write_heavy=False)[0])
        assert write_demand[Level.KV] > read_demand[Level.KV]
        assert write_demand[Level.RV] > read_demand[Level.RV]

    def test_migration_action_changes_counts(self):
        sim = StorageSimulator(rng=0)
        sim.reset(_trace(5), rng=0)
        before = sim.core_counts()
        metrics = sim.step(MigrationAction.NORMAL_TO_KV)
        assert metrics.migration_applied
        assert metrics.core_counts[Level.NORMAL] == before[Level.NORMAL] - 1
        assert metrics.core_counts[Level.KV] == before[Level.KV] + 1

    def test_illegal_migration_is_noop(self):
        cfg = StorageSystemConfig(
            total_cores=4, initial_allocation={"NORMAL": 2, "KV": 1, "RV": 1}
        )
        sim = StorageSimulator(cfg, rng=0)
        sim.reset(_trace(3, requests=10.0), rng=0)
        metrics = sim.step(MigrationAction.KV_TO_NORMAL)
        assert not metrics.migration_applied
        assert metrics.core_counts[Level.KV] == 1

    def test_migration_penalty_reduces_capacity(self):
        cfg = StorageSystemConfig(idle_rate=0.0, migration_penalty=0.5)
        sim = StorageSimulator(cfg, rng=0)
        sim.reset(_trace(3), rng=0)
        noop_metrics = sim.step(MigrationAction.NOOP)
        migrate_metrics = sim.step(MigrationAction.RV_TO_KV)
        # The KV level now holds a penalised core, so its capacity is lower
        # than (count * capability).
        expected_full = migrate_metrics.core_counts[Level.KV] * cfg.core_capability_kb
        assert migrate_metrics.capacity_kb[Level.KV] < expected_full
        assert noop_metrics.capacity_kb[Level.NORMAL] == pytest.approx(
            noop_metrics.core_counts[Level.NORMAL] * cfg.core_capability_kb
        )

    def test_overload_truncates(self):
        cfg = StorageSystemConfig(max_intervals_factor=2.0, max_intervals_slack=0)
        sim = StorageSimulator(cfg, rng=0)
        metrics = sim.run(_trace(3, requests=1e7), lambda s: MigrationAction.NOOP, rng=0)
        assert metrics.truncated
        assert sim.is_done

    def test_deterministic_given_seed(self):
        trace = _trace(6)
        results = []
        for _ in range(2):
            sim = StorageSimulator(rng=5)
            metrics = sim.run(trace, lambda s: MigrationAction.NOOP, rng=5)
            results.append([m.total_processed_kb for m in metrics.intervals])
        np.testing.assert_allclose(results[0], results[1])

    def test_zero_idle_rate_removes_idling(self):
        cfg = StorageSystemConfig(idle_rate=0.0)
        sim = StorageSimulator(cfg, rng=0)
        metrics = sim.run(_trace(4), lambda s: MigrationAction.NOOP, rng=0)
        for interval in metrics.intervals:
            assert all(v == 0 for v in interval.idle_cores.values())

    @given(st.integers(1, 8), st.floats(100.0, 20000.0))
    @settings(max_examples=15, deadline=None)
    def test_property_makespan_bounds(self, intervals, requests):
        sim = StorageSimulator(StorageSystemConfig(idle_rate=0.0), rng=0)
        metrics = sim.run(_trace(intervals, requests=requests), lambda s: 0, rng=0)
        assert metrics.makespan >= intervals
        assert not metrics.truncated

    @given(st.lists(st.integers(0, 6), min_size=3, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_property_any_action_sequence_conserves_cores(self, actions):
        cfg = StorageSystemConfig()
        sim = StorageSimulator(cfg, rng=1)
        sim.reset(_trace(len(actions)), rng=1)
        for action in actions:
            if sim.is_done:
                break
            metrics = sim.step(action)
            assert sum(metrics.core_counts.values()) == cfg.total_cores


class TestEpisodeMetrics:
    def test_summary_and_histogram(self):
        sim = StorageSimulator(rng=0)
        metrics = sim.run(
            _trace(4), lambda s: MigrationAction.NORMAL_TO_KV if s.interval_index == 0 else 0, rng=0
        )
        histogram = metrics.action_histogram()
        assert histogram.get("N=>K", 0) == 1
        summary = metrics.as_summary()
        assert summary["makespan"] == metrics.makespan
        assert 0.0 <= summary["mean_util_normal"] <= 1.0
        assert metrics.migrations == 1

    def test_series_lengths(self):
        sim = StorageSimulator(rng=0)
        metrics = sim.run(_trace(3), lambda s: 0, rng=0)
        assert len(metrics.backlog_series()) == metrics.makespan
        assert len(metrics.utilization_series(Level.KV)) == metrics.makespan
