"""Sweep runner: deterministic grid expansion, execution and JSON results.

The acceptance-criterion test runs a 4-job sweep twice (once with 2
worker processes, once in-process) and asserts the per-job JSON files
are byte-identical — worker layout and rerun may never change results.
"""

from pathlib import Path

import pytest

from repro.drl.a2c import A2CConfig
from repro.errors import ConfigurationError
from repro.pipeline.learning_aided import PipelineConfig
from repro.pipeline.sweep import (
    SweepJob,
    SweepRunner,
    SweepSpec,
    apply_overrides,
    execute_job,
    expand_jobs,
)
from repro.utils.serialization import json_digest, load_json


@pytest.fixture
def small_spec() -> SweepSpec:
    """4 fast jobs: 2 target loads x 2 seeds of the baseline comparison."""
    return SweepSpec(
        name="test-sweep",
        kind="agents",
        base={"num_traces": 2, "duration": 12, "agents": ["default", "greedy_utilization"]},
        grid={"target_load": [0.9, 1.1]},
        seeds=[0, 1],
    )


class TestSpecAndExpansion:
    def test_expand_is_deterministic(self, small_spec):
        jobs = expand_jobs(small_spec)
        assert [job.name for job in jobs] == [
            "test-sweep-000-target_load=0.9-seed=0",
            "test-sweep-001-target_load=0.9-seed=1",
            "test-sweep-002-target_load=1.1-seed=0",
            "test-sweep-003-target_load=1.1-seed=1",
        ]
        assert [job.index for job in jobs] == [0, 1, 2, 3]
        assert jobs[0].params["target_load"] == 0.9
        assert jobs[0].params["num_traces"] == 2
        assert expand_jobs(small_spec) == jobs

    def test_grid_axes_iterate_in_sorted_order(self):
        spec = SweepSpec(
            name="s", kind="agents",
            grid={"b": [1, 2], "a": [10]}, seeds=[0],
        )
        jobs = expand_jobs(spec)
        assert [job.params for job in jobs] == [
            {"a": 10, "b": 1}, {"a": 10, "b": 2},
        ]

    def test_dict_roundtrip(self, small_spec):
        restored = SweepSpec.from_dict(small_spec.to_dict())
        assert restored == small_spec

    @pytest.mark.parametrize(
        "payload",
        [
            {"name": "", "kind": "agents"},
            {"name": "x", "kind": "nope"},
            {"name": "x", "seeds": []},
            {"name": "x", "grid": {"p": []}},
            {"name": "x", "grid": {"p": "0.9"}},
            {"name": "x", "seeds": "012"},
            {"name": "x", "seeds": 5},
            {"name": "x", "bogus": 1},
        ],
    )
    def test_invalid_specs_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict(payload)


class TestOverrides:
    def test_flat_override(self):
        config = apply_overrides(A2CConfig(), {"learning_rate": 1e-3})
        assert config.learning_rate == 1e-3
        assert config.gamma == A2CConfig().gamma

    def test_nested_override(self):
        config = apply_overrides(
            PipelineConfig(), {"a2c.gamma": 0.9, "num_real_traces": 7}
        )
        assert config.a2c.gamma == 0.9
        assert config.num_real_traces == 7
        # The original default object is untouched.
        assert PipelineConfig().a2c.gamma != 0.9 or True
        assert A2CConfig().gamma == 0.99

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            apply_overrides(A2CConfig(), {"learning_rte": 1e-3})
        with pytest.raises(ConfigurationError, match="unknown field"):
            apply_overrides(PipelineConfig(), {"a2c.bogus": 1})

    def test_override_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            apply_overrides(A2CConfig(), {"learning_rate": -1.0})


class TestSweepExecution:
    def test_four_jobs_deterministic_across_invocations_and_workers(
        self, small_spec, tmp_path
    ):
        """Acceptance criterion: >= 4 jobs, byte-identical JSON across runs."""
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        first = SweepRunner(small_spec, output_dir=first_dir, num_workers=2).run()
        second = SweepRunner(small_spec, output_dir=second_dir, num_workers=1).run()

        assert first.num_jobs == 4 and second.num_jobs == 4
        assert not first.failures and not second.failures

        first_files = sorted((first_dir / "jobs").glob("*.json"))
        second_files = sorted((second_dir / "jobs").glob("*.json"))
        assert len(first_files) == 4
        assert [f.name for f in first_files] == [f.name for f in second_files]
        for file_a, file_b in zip(first_files, second_files):
            assert file_a.read_bytes() == file_b.read_bytes(), file_a.name
        for record_a, record_b in zip(first.records, second.records):
            assert record_a["digest"] == record_b["digest"]

    def test_outputs_written(self, small_spec, tmp_path):
        result = SweepRunner(small_spec, output_dir=tmp_path, num_workers=1).run()
        summary = load_json(tmp_path / "sweep.json")
        assert summary["num_jobs"] == 4
        assert summary["num_failed"] == 0
        assert set(summary["digests"]) == {r["name"] for r in result.records}
        table = (tmp_path / "summary.txt").read_text()
        for record in result.records:
            assert record["name"] in table
        assert "default/mean_makespan" in table

    def test_progress_callback_sees_every_job(self, small_spec):
        seen = []
        SweepRunner(
            small_spec, num_workers=1,
            progress=lambda done, total, record: seen.append((done, total, record["status"])),
        ).run()
        assert seen == [(1, 4, "ok"), (2, 4, "ok"), (3, 4, "ok"), (4, 4, "ok")]

    def test_failure_captured_without_aborting_sweep(self, tmp_path):
        spec = SweepSpec(
            name="mixed",
            kind="agents",
            base={"num_traces": 2, "duration": 12},
            grid={"agents": [["default"], ["not_an_agent"]]},
            seeds=[0],
        )
        result = SweepRunner(spec, output_dir=tmp_path, num_workers=2).run()
        assert result.num_jobs == 2
        statuses = [record["status"] for record in result.records]
        assert statuses.count("ok") == 1 and statuses.count("failed") == 1
        failed = result.failures[0]
        assert "not_an_agent" in failed["error"]
        assert "traceback" in failed
        # Failed jobs still get a JSON record and show up in the table.
        assert (tmp_path / "jobs" / f"{failed['name']}.json").exists()
        assert "failed" in result.table()

    def test_resume_skips_verified_jobs_and_recomputes_missing(
        self, small_spec, tmp_path
    ):
        """Deleting one job file and rerunning with resume=True recomputes
        exactly that job, byte-identically; the other three are loaded."""
        first = SweepRunner(small_spec, output_dir=tmp_path, num_workers=1).run()
        assert first.num_resumed == 0
        jobs_dir = tmp_path / "jobs"
        original_bytes = {
            path.name: path.read_bytes() for path in sorted(jobs_dir.glob("*.json"))
        }
        victim = sorted(jobs_dir.glob("*.json"))[1]
        victim_name = victim.name
        victim.unlink()

        seen = []
        second = SweepRunner(
            small_spec, output_dir=tmp_path, num_workers=1, resume=True,
            progress=lambda done, total, record: seen.append(
                (done, total, record["name"], record.get("resumed", False))
            ),
        ).run()
        # Progress covers every job (resumed ones flagged); only the
        # deleted job was actually recomputed.
        assert len(seen) == 4 and all(total == 4 for _, total, _, _ in seen)
        executed = [name for _, _, name, resumed in seen if not resumed]
        assert executed == [victim_name[: -len(".json")]]
        assert second.num_resumed == 3
        assert second.num_jobs == 4
        # ...and every file (including the recomputed one) is byte-identical.
        for path in sorted(jobs_dir.glob("*.json")):
            assert path.read_bytes() == original_bytes[path.name], path.name

    def test_resume_reruns_corrupt_and_failed_records(self, small_spec, tmp_path):
        SweepRunner(small_spec, output_dir=tmp_path, num_workers=1).run()
        jobs_dir = tmp_path / "jobs"
        files = sorted(jobs_dir.glob("*.json"))
        # Truncate one file (simulates a killed non-atomic writer) and
        # tamper with another one's metrics (digest mismatch).
        files[0].write_text(files[0].read_text()[:40])
        tampered = load_json(files[1])
        tampered["metrics"]["num_traces"] = 999
        files[1].write_text(__import__("json").dumps(tampered))

        seen = []
        result = SweepRunner(
            small_spec, output_dir=tmp_path, num_workers=1, resume=True,
            progress=lambda done, total, record: seen.append(
                (record["name"], record.get("resumed", False))
            ),
        ).run()
        assert result.num_resumed == 2
        executed = [name for name, resumed in seen if not resumed]
        assert len(executed) == 2
        assert not result.failures

    def test_resume_requires_output_dir(self, small_spec):
        with pytest.raises(ConfigurationError):
            SweepRunner(small_spec, resume=True)

    def test_resume_with_workers_matches_fresh_run(self, small_spec, tmp_path):
        fresh_dir = tmp_path / "fresh"
        resumed_dir = tmp_path / "resumed"
        SweepRunner(small_spec, output_dir=fresh_dir, num_workers=1).run()
        SweepRunner(small_spec, output_dir=resumed_dir, num_workers=1).run()
        for path in sorted((resumed_dir / "jobs").glob("*.json"))[:2]:
            path.unlink()
        SweepRunner(
            small_spec, output_dir=resumed_dir, num_workers=2, resume=True
        ).run()
        for fresh, resumed in zip(
            sorted((fresh_dir / "jobs").glob("*.json")),
            sorted((resumed_dir / "jobs").glob("*.json")),
        ):
            assert fresh.read_bytes() == resumed.read_bytes(), fresh.name

    def test_resume_large_mostly_complete_sweep_executes_only_pending(
        self, tmp_path
    ):
        """Lazy per-job verification: a mostly-complete 12-job sweep dir
        resumes by re-executing exactly the 2 missing jobs — workers do
        the digest checks, the parent never serially pre-verifies."""
        spec = SweepSpec(
            name="big",
            kind="agents",
            base={"num_traces": 1, "duration": 6, "agents": ["default"]},
            grid={"target_load": [0.7, 0.8, 0.9, 1.0, 1.1, 1.2]},
            seeds=[0, 1],
        )
        first = SweepRunner(spec, output_dir=tmp_path, num_workers=2).run()
        assert first.num_jobs == 12
        jobs_dir = tmp_path / "jobs"
        original = {p.name: p.read_bytes() for p in jobs_dir.glob("*.json")}
        victims = sorted(jobs_dir.glob("*.json"))[3:5]
        victim_names = [p.name[: -len(".json")] for p in victims]
        for victim in victims:
            victim.unlink()

        seen = []
        second = SweepRunner(
            spec, output_dir=tmp_path, num_workers=2, resume=True,
            progress=lambda done, total, record: seen.append(
                (record["name"], record.get("resumed", False))
            ),
        ).run()
        assert second.num_resumed == 10
        executed = sorted(name for name, resumed in seen if not resumed)
        assert executed == sorted(victim_names)
        # Byte-determinism: recomputed files match the originals exactly.
        for path in sorted(jobs_dir.glob("*.json")):
            assert path.read_bytes() == original[path.name], path.name

    def test_record_digest_matches_payload(self, small_spec):
        job = expand_jobs(small_spec)[0]
        record = execute_job(job)
        assert record["status"] == "ok"
        payload = {k: v for k, v in record.items() if k != "traceback"}
        without_digest = dict(payload)
        digest = without_digest.pop("digest")
        assert digest == record["digest"]

    def test_training_kind_runs_and_applies_grid(self):
        spec = SweepSpec(
            name="train",
            kind="training",
            base={"epochs": 2, "num_traces": 2, "duration": 10, "hidden_size": 8},
            grid={"a2c.learning_rate": [1e-3, 1e-4]},
            seeds=[0],
        )
        result = SweepRunner(spec, num_workers=1).run()
        assert [record["status"] for record in result.records] == ["ok", "ok"]
        rates = [record["metrics"]["learning_rate"] for record in result.records]
        assert rates == [1e-3, 1e-4]
        for record in result.records:
            assert record["metrics"]["epochs"] == 2
            assert record["metrics"]["final_makespan"] > 0

    def test_pipeline_kind_runs_end_to_end(self):
        """One tiny full-pipeline job: train, extract, evaluate vs default."""
        spec = SweepSpec(
            name="pipe",
            kind="pipeline",
            base={
                "standard_epochs": 1, "real_epochs": 1, "hidden_size": 8,
                "trace_duration": 12, "num_real_traces": 3, "num_eval_traces": 1,
                "bc_pretrain_epochs": 0, "qbn_fine_tune_epochs": 0,
                "rollout_traces_for_extraction": 2,
                "qbn.epochs": 2, "qbn.observation_latent_dim": 8,
                "qbn.hidden_latent_dim": 8, "extraction.min_state_visits": 2,
            },
            seeds=[0],
        )
        result = SweepRunner(spec, num_workers=1).run()
        record = result.records[0]
        assert record["status"] == "ok", record.get("error")
        metrics = record["metrics"]
        assert metrics["train_epochs"] == 2
        assert metrics["fsm_states"] > 0
        assert metrics["eval_traces"] == 1
        for agent in ("default", "gru_drl", "extracted_fsm"):
            assert metrics[f"{agent}/mean_makespan"] > 0

    def test_parallel_training_jobs_compose_with_multiworker_sweep(self):
        """rollout_workers > 1 inside a 2-worker sweep degrades to
        in-process shards (daemonic pool workers cannot fork children)
        instead of failing — and results are unchanged by design."""
        spec = SweepSpec(
            name="nested",
            kind="training",
            base={"epochs": 1, "num_traces": 2, "duration": 10, "hidden_size": 8,
                  "a2c.episodes_per_epoch": 2},
            grid={"a2c.rollout_workers": [1, 2]},
            seeds=[0],
        )
        result = SweepRunner(spec, num_workers=2).run()
        assert [record["status"] for record in result.records] == ["ok", "ok"]
        metrics = [record["metrics"] for record in result.records]
        # Worker count never changes the collected trajectories.
        assert metrics[0]["final_makespan"] == metrics[1]["final_makespan"]
        assert metrics[0]["final_total_reward"] == metrics[1]["final_total_reward"]

    def test_invalid_worker_count(self, small_spec):
        with pytest.raises(ConfigurationError):
            SweepRunner(small_spec, num_workers=0)


class TestJobModel:
    def test_payload_id_is_plain_data(self):
        job = SweepJob(index=0, name="n", kind="agents", seed=3, params={"a": 1})
        payload = job.payload_id()
        assert payload == {"name": "n", "kind": "agents", "seed": 3, "params": {"a": 1}}
        assert json_digest(payload) == json_digest(dict(payload))
