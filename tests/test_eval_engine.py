"""Equivalence pins for the lockstep evaluation engine.

The contract under test: evaluating any backend through
:class:`repro.engine.evaluation.EvaluationEngine` is **bit-identical**
to the sequential reference harness
(:func:`repro.pipeline.evaluation.evaluate_agent`) — same makespans,
same total rewards (exact float equality), same trace order — for every
backend kind: per-slot heuristic replicas, the interpreted FSM agent,
the compiled FSM tables and the greedy GRU.  Plus the routing rules of
:func:`repro.engine.evaluation.backend_for_agent` and the
``repro.serving`` re-export shims.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine as engine_pkg
import repro.serving as serving_pkg
from repro.agents.default import DefaultPolicy
from repro.agents.greedy import GreedyUtilizationPolicy
from repro.agents.handcrafted import HandcraftedFSMPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.agents.random_agent import RandomPolicy
from repro.drl.agent import DRLPolicyAgent
from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    GRUPolicyBackend,
)
from repro.engine.evaluation import EvaluationEngine, backend_for_agent
from repro.env.observation import ObservationEncoder
from repro.errors import ExtractionError
from repro.fsm.agent import FSMPolicyAgent
from repro.pipeline.evaluation import compare_agents, evaluate_agent
from repro.pipeline.learning_aided import LearningAidedPipeline


def assert_results_identical(engine_result, reference):
    """Exact (not approximate) equality of every per-trace number."""
    assert engine_result.trace_names == reference.trace_names
    assert engine_result.makespans == reference.makespans
    assert engine_result.total_rewards == reference.total_rewards
    assert len(engine_result.episodes) == len(reference.episodes)


@pytest.fixture(scope="module")
def suite_traces(standard_suite):
    """The 12 standard-profile traces as a list."""
    traces = list(standard_suite.values())
    assert len(traces) == 12
    return traces


class TestEngineBitIdentity:
    def test_heuristics_bit_identical_across_profiles(self, suite_traces, system_config):
        agents = [
            DefaultPolicy(),
            GreedyUtilizationPolicy(),
            ProportionalAllocationPolicy(system_config),
            HandcraftedFSMPolicy(),
        ]
        routed = compare_agents(agents, suite_traces, episode_seed=5, batched=True)
        for agent in agents:
            reference = evaluate_agent(agent, suite_traces, episode_seed=5)
            assert_results_identical(routed[agent.name], reference)

    def test_greedy_gru_bit_identical_across_profiles(
        self, suite_traces, system_config, tiny_policy
    ):
        agent = DRLPolicyAgent(tiny_policy, ObservationEncoder(system_config))
        routed = compare_agents([agent], suite_traces, episode_seed=9, batched=True)
        reference = evaluate_agent(agent, suite_traces, episode_seed=9)
        assert_results_identical(routed[agent.name], reference)

    def test_interpreted_fsm_replicas_bit_identical(
        self, suite_traces, tiny_pipeline_result, env
    ):
        agent = tiny_pipeline_result.fsm_agent(env)
        engine = EvaluationEngine()
        lifted = engine.evaluate(
            AgentBatchBackend.from_agent(agent, engine.encoder),
            suite_traces,
            episode_seed=2,
            agent_name=agent.name,
        )
        reference = evaluate_agent(agent, suite_traces, episode_seed=2)
        assert_results_identical(lifted, reference)

    def test_compiled_fsm_bit_identical(self, suite_traces, tiny_pipeline_result, env):
        agent = tiny_pipeline_result.fsm_agent(env)
        assert agent.compiled_routable()
        engine = EvaluationEngine()
        compiled = engine.evaluate(
            CompiledFSMBackend(agent.compile()),
            suite_traces,
            episode_seed=2,
            agent_name=agent.name,
        )
        reference = evaluate_agent(agent, suite_traces, episode_seed=2)
        assert_results_identical(compiled, reference)

    def test_unbatched_compare_agents_matches_batched(self, suite_traces):
        agents = [DefaultPolicy(), GreedyUtilizationPolicy()]
        batched = compare_agents(agents, suite_traces, episode_seed=1, batched=True)
        sequential = compare_agents(agents, suite_traces, episode_seed=1, batched=False)
        for agent in agents:
            assert_results_identical(batched[agent.name], sequential[agent.name])


class TestBackendRouting:
    def test_greedy_drl_routes_to_gru_backend(self, system_config, tiny_policy):
        encoder = ObservationEncoder(system_config)
        agent = DRLPolicyAgent(tiny_policy, encoder)
        backend = backend_for_agent(agent, encoder)
        assert isinstance(backend, GRUPolicyBackend)
        assert backend.policy is tiny_policy

    def test_exploring_drl_falls_back_to_sequential(self, system_config, tiny_policy):
        encoder = ObservationEncoder(system_config)
        agent = DRLPolicyAgent(tiny_policy, encoder, epsilon=0.1, rng=3)
        assert backend_for_agent(agent, encoder) is None

    def test_random_agent_is_not_engine_safe(self, system_config):
        encoder = ObservationEncoder(system_config)
        assert RandomPolicy(rng=0).engine_safe is False
        assert backend_for_agent(RandomPolicy(rng=0), encoder) is None

    def test_heuristic_routes_to_replica_backend(self, system_config):
        encoder = ObservationEncoder(system_config)
        backend = backend_for_agent(GreedyUtilizationPolicy(), encoder)
        assert isinstance(backend, AgentBatchBackend)
        assert backend.name == "greedy_utilization"

    def test_routable_fsm_agent_compiles(self, tiny_pipeline_result, env, system_config):
        agent = tiny_pipeline_result.fsm_agent(env)
        backend = backend_for_agent(agent, ObservationEncoder(system_config))
        assert isinstance(backend, CompiledFSMBackend)

    def test_matcherless_fsm_with_prototypes_is_not_routable(
        self, tiny_pipeline_result, env
    ):
        # Without a matcher the interpreted agent self-loops on unseen
        # codes while the compiled tables would take nearest-prototype
        # fallback — the engine must keep the interpreted replica path.
        routable = tiny_pipeline_result.fsm_agent(env)
        assert routable.fsm.observation_prototypes
        agent = FSMPolicyAgent(
            routable.fsm,
            routable.observation_qbn,
            routable.encoder,
            matcher=None,
        )
        assert not agent.compiled_routable()
        with pytest.raises(ExtractionError):
            agent.compile()
        backend = backend_for_agent(agent, routable.encoder)
        assert isinstance(backend, AgentBatchBackend)
        assert not isinstance(backend, CompiledFSMBackend)


class TestPipelineFidelityStage:
    def test_compiled_vs_interpreted_identical_in_pipeline(
        self, tiny_pipeline_config, tiny_pipeline_result
    ):
        pipeline = LearningAidedPipeline(tiny_pipeline_config)
        report = pipeline.verify_fidelity(tiny_pipeline_result, episode_seed=4)
        assert report.routable
        assert report.identical is True
        assert report.compiled.makespans == report.interpreted.makespans
        assert report.compiled.total_rewards == report.interpreted.total_rewards

    def test_pipeline_evaluate_matches_sequential(
        self, tiny_pipeline_config, tiny_pipeline_result
    ):
        pipeline = LearningAidedPipeline(tiny_pipeline_config)
        comparison = pipeline.evaluate(
            tiny_pipeline_result, baselines=[DefaultPolicy()], episode_seed=7
        )
        env = pipeline.make_env()
        for agent in (
            DefaultPolicy(),
            tiny_pipeline_result.drl_agent(env),
            tiny_pipeline_result.fsm_agent(env),
        ):
            reference = evaluate_agent(
                agent,
                tiny_pipeline_result.eval_traces,
                system_config=tiny_pipeline_config.system,
                reward_config=tiny_pipeline_config.reward,
                episode_seed=7,
            )
            assert_results_identical(comparison[agent.name], reference)


class TestServingShim:
    """``from repro.serving import ...`` must keep working after the move."""

    def test_package_reexports_are_engine_objects(self):
        assert serving_pkg.DecisionBackend is engine_pkg.DecisionBackend
        assert serving_pkg.CompiledFSMBackend is engine_pkg.CompiledFSMBackend
        assert serving_pkg.GRUPolicyBackend is engine_pkg.GRUPolicyBackend
        assert serving_pkg.HeuristicAgentBackend is engine_pkg.HeuristicAgentBackend
        assert serving_pkg.CompiledFSMPolicy is engine_pkg.CompiledFSMPolicy
        assert serving_pkg.SessionTable is engine_pkg.SessionTable

    def test_module_level_shims(self):
        from repro.serving.compiled_fsm import CompiledDecision, CompiledFSMPolicy
        from repro.serving.server import DecisionBackend, GRUPolicyBackend
        from repro.serving.sessions import SessionTable

        assert CompiledFSMPolicy is engine_pkg.CompiledFSMPolicy
        assert CompiledDecision is engine_pkg.CompiledDecision
        assert DecisionBackend is engine_pkg.DecisionBackend
        assert GRUPolicyBackend is engine_pkg.GRUPolicyBackend
        assert SessionTable is engine_pkg.SessionTable

    def test_heuristic_backend_is_replica_adapter(self, system_config):
        encoder = ObservationEncoder(system_config)
        backend = serving_pkg.HeuristicAgentBackend(DefaultPolicy, encoder)
        assert isinstance(backend, AgentBatchBackend)
        assert backend.name == "heuristic(default)"
