"""Shared fixtures for the test suite.

Fixtures are deliberately small (short traces, few cores, tiny networks)
so the whole suite stays fast, and session-scoped where construction is
expensive (the trained tiny pipeline used by the FSM/interpretation
integration tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drl.a2c import A2CConfig
from repro.drl.curriculum import CurriculumConfig
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.fsm.extraction import ExtractionConfig
from repro.pipeline.learning_aided import LearningAidedPipeline, PipelineConfig
from repro.qbn.trainer import QBNTrainingConfig
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.storage.iorequest import NUM_IO_TYPES
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler, SamplerConfig


@pytest.fixture(scope="session")
def system_config() -> StorageSystemConfig:
    """The default simulated array configuration used across tests."""
    return StorageSystemConfig()


@pytest.fixture(scope="session")
def generator(system_config) -> StandardWorkloadGenerator:
    return StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=123)


@pytest.fixture(scope="session")
def standard_suite(generator):
    """One short standard trace per profile."""
    return generator.generate_suite(duration=24, rng=7)


@pytest.fixture(scope="session")
def real_traces(standard_suite):
    """A handful of sampled 'real' traces."""
    sampler = RealTraceSampler(
        standard_suite,
        SamplerConfig(snippets_per_trace=2, min_snippet_length=8, max_snippet_length=12),
        rng=11,
    )
    return sampler.sample_many(4, rng=13)


@pytest.fixture
def short_trace(real_traces) -> WorkloadTrace:
    return real_traces[0]


@pytest.fixture
def uniform_interval() -> WorkloadInterval:
    """An interval with a uniform IO mix and a moderate request count."""
    ratios = np.full(NUM_IO_TYPES, 1.0 / NUM_IO_TYPES)
    return WorkloadInterval(ratios, 5000.0)


@pytest.fixture
def env(system_config) -> StorageAllocationEnv:
    return StorageAllocationEnv(
        system_config, reward_config=RewardConfig(mode="per_step_penalty"), rng=3
    )


@pytest.fixture
def tiny_policy() -> RecurrentPolicyValueNet:
    return RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)


@pytest.fixture(scope="session")
def tiny_pipeline_config() -> PipelineConfig:
    """A pipeline configuration small enough for integration tests."""
    return PipelineConfig(
        system=StorageSystemConfig(),
        generator=GeneratorConfig(target_load=1.0),
        sampler=SamplerConfig(snippets_per_trace=2, min_snippet_length=8, max_snippet_length=12),
        reward=RewardConfig(mode="per_step_penalty", step_penalty=0.05),
        policy=PolicyConfig(hidden_size=16),
        a2c=A2CConfig(learning_rate=1e-3),
        curriculum=CurriculumConfig(standard_epochs=3, real_epochs=3),
        qbn=QBNTrainingConfig(epochs=3, observation_latent_dim=8, hidden_latent_dim=8,
                              batch_size=128),
        extraction=ExtractionConfig(min_state_visits=2),
        standard_trace_duration=16,
        num_real_traces=4,
        num_eval_traces=2,
        rollout_traces_for_extraction=2,
        seed=42,
    )


@pytest.fixture(scope="session")
def tiny_pipeline_result(tiny_pipeline_config):
    """A fully-run (tiny) pipeline shared by FSM/interpretation integration tests."""
    pipeline = LearningAidedPipeline(tiny_pipeline_config)
    return pipeline.run()
