"""Differential equivalence: compiled serving fast path vs interpreted FSM agent.

The property the serving subsystem stands on: for any machine and any
observation stream, ``CompiledFSMPolicy.act_batch`` over a batch of
concurrent sessions is **bit-identical** to stepping one
:class:`FSMPolicyAgent` per session — same actions, same state
trajectories, same unseen-observation fallbacks — regardless of batch
composition, session interleaving or slot reuse.  Exercised across
seeded random machines (known codes, fallback codes, transition-only
codes, missing start states) and observation streams from *all* standard
workload profiles, plus the real artefacts of an extracted pipeline run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.fsm.agent import FSMPolicyAgent
from repro.fsm.generalize import NearestObservationMatcher
from repro.fsm.machine import FiniteStateMachine
from repro.fsm.serialize import load_fsm, save_fsm
from repro.qbn.autoencoder import QuantizedBottleneckNetwork, build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import CompiledFSMBackend, CompiledFSMPolicy, PolicyServer
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.profiles import profile_names

OBS_LATENT = 6
STATE_CODE_LEN = 5


@pytest.fixture(scope="module")
def profile_streams() -> Dict[str, np.ndarray]:
    """One short raw-observation stream per standard workload profile."""
    system = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system, GeneratorConfig(), rng=0)
    rng = np.random.default_rng(17)
    streams: Dict[str, np.ndarray] = {}
    for name in profile_names():
        env = StorageAllocationEnv(
            system, reward_config=RewardConfig(mode="per_step_penalty"), rng=1
        )
        observation = env.reset(generator.generate(name, duration=14))
        rows = []
        while True:
            rows.append(observation.raw())
            result = env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
            observation = result.observation
            if result.done:
                break
        streams[name] = np.array(rows)
    return streams


@pytest.fixture(scope="module")
def shared_encoder():
    return StorageAllocationEnv(StorageSystemConfig()).observation_encoder


def make_random_machine(
    seed: int,
    qbn: QuantizedBottleneckNetwork,
    known_vectors: np.ndarray,
    with_prototypes: bool = True,
) -> FiniteStateMachine:
    """A seeded random FSM mixing known, fallback-only and transition-only codes."""
    rng = np.random.default_rng(seed)
    fsm = FiniteStateMachine()
    codes: List[Tuple[int, ...]] = []
    while len(codes) < 2 + int(rng.integers(6)):
        code = tuple(int(c) for c in rng.integers(0, 3, size=STATE_CODE_LEN))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            # Deliberately collision-heavy visit counts so the
            # most-visited start-state fallback exercises its tie-break.
            state.visit_count = int(rng.integers(3))
            codes.append(code)

    observation_keys: List[Tuple[int, ...]] = []
    if with_prototypes:
        # Known codes: quantisations of real stream vectors, prototyped by
        # the vector itself (so serve-time codes actually hit them).
        for index in rng.choice(len(known_vectors), size=4, replace=False):
            vector = known_vectors[int(index)]
            key = code_key(qbn.discrete_code(vector))
            if key not in fsm.observation_prototypes:
                fsm.observation_prototypes[key] = np.asarray(vector, float)
                observation_keys.append(key)
        # Fallback-only prototypes: random codes that serve-time
        # observations will (almost) never quantise to.
        for _ in range(3):
            key = tuple(int(c) for c in rng.integers(0, 3, size=OBS_LATENT))
            if key not in fsm.observation_prototypes:
                fsm.observation_prototypes[key] = rng.normal(size=known_vectors.shape[1])
                observation_keys.append(key)
    # Transition-only codes (never prototyped): with a matcher these are
    # *unseen* — both paths must redirect them identically.
    for _ in range(2):
        key = tuple(int(c) for c in rng.integers(0, 3, size=OBS_LATENT))
        if key not in observation_keys:
            observation_keys.append(key)

    for _ in range(30):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    if rng.random() < 0.5:
        fsm.initial_state = codes[int(rng.integers(len(codes)))]
    fsm.validate()
    return fsm


def make_agent(
    fsm: FiniteStateMachine, qbn: QuantizedBottleneckNetwork, encoder
) -> FSMPolicyAgent:
    matcher: Optional[NearestObservationMatcher] = None
    if fsm.observation_prototypes:
        matcher = NearestObservationMatcher(
            fsm.observation_prototypes,
            encoder=lambda vector: code_key(qbn.discrete_code(vector)),
        )
    agent = FSMPolicyAgent(fsm, qbn, encoder, matcher=matcher)
    agent.reset()
    return agent


class TestCompiledEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_lockstep_batch_matches_per_session_agents(
        self, seed, profile_streams, shared_encoder
    ):
        """One session per workload profile, stepped as one batch."""
        names = profile_names()
        sample = np.concatenate(
            [shared_encoder.normalize_batch(profile_streams[n][:4]) for n in names]
        )
        qbn = build_observation_qbn(35, latent_dim=OBS_LATENT, hidden_dim=16, rng=seed)
        fsm = make_random_machine(
            1000 + seed, qbn, sample, with_prototypes=(seed % 3 != 2)
        )
        compiled = CompiledFSMPolicy.compile(fsm, qbn, encoder=shared_encoder)
        agents = {name: make_agent(fsm, qbn, shared_encoder) for name in names}

        length = min(len(profile_streams[n]) for n in names)
        states = np.full(len(names), compiled.start_state, dtype=np.int64)
        for step in range(length):
            raw = np.stack([profile_streams[name][step] for name in names])
            decision = compiled.act_batch(shared_encoder.normalize_batch(raw), states)
            states = decision.next_states
            expected = [
                int(agents[name].act(shared_encoder.split_raw(profile_streams[name][step])))
                for name in names
            ]
            assert decision.actions.tolist() == expected, (seed, step)
        # State trajectories ended identically too (same rows = same codes).
        for column, name in enumerate(names):
            agent_state = agents[name]._state
            compiled_code = tuple(
                int(c) for c in compiled.state_codes[int(states[column])]
            )
            assert compiled_code == agent_state, (seed, name)
        # Fallback accounting agrees with the agents' unseen counters.
        assert compiled.fallback_count == sum(
            agents[name].unseen_observation_count for name in names
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_sessions_with_slot_reuse(
        self, seed, profile_streams, shared_encoder
    ):
        """Random interleaving, closes and reopens through a PolicyServer."""
        names = profile_names()
        driver = np.random.default_rng(500 + seed)
        sample = np.concatenate(
            [shared_encoder.normalize_batch(profile_streams[n][:3]) for n in names]
        )
        qbn = build_observation_qbn(35, latent_dim=OBS_LATENT, hidden_dim=16, rng=90 + seed)
        fsm = make_random_machine(2000 + seed, qbn, sample)
        compiled = CompiledFSMPolicy.compile(fsm, qbn, encoder=shared_encoder)
        server = PolicyServer(
            CompiledFSMBackend(compiled),
            shared_encoder,
            initial_capacity=4,  # force growth mid-run
        )

        # session id -> (profile, stream position, reference agent, actions)
        live: Dict[int, list] = {}

        def open_one(profile: str) -> None:
            session = server.open_session()
            assert session not in live
            live[session] = [profile, 0, make_agent(fsm, qbn, shared_encoder), [], []]

        for name in names:
            open_one(name)
        for _ in range(40):
            ids = sorted(live)
            chosen = [s for s in ids if driver.random() < 0.7] or ids[:1]
            raw = np.stack(
                [profile_streams[live[s][0]][live[s][1]] for s in chosen]
            )
            actions = server.decide_now(chosen, raw)
            for row, session in enumerate(chosen):
                profile, position, agent, served, expected = live[session]
                observation = shared_encoder.split_raw(
                    profile_streams[profile][position]
                )
                expected.append(int(agent.act(observation)))
                served.append(int(actions[row]))
                live[session][1] = (position + 1) % len(profile_streams[profile])
            # Occasionally retire a session and start a fresh one on a
            # random profile — the reused slot must behave like a brand
            # new machine, not inherit the dead session's state.
            if driver.random() < 0.4:
                victim = int(driver.choice(sorted(live)))
                profile, _pos, _agent, served, expected = live.pop(victim)
                assert served == expected, (seed, profile)
                server.close_sessions([victim])
                open_one(str(driver.choice(names)))
        for session, (profile, _pos, _agent, served, expected) in live.items():
            assert served == expected, (seed, profile)

    def test_equivalence_survives_fsm_save_load(self, profile_streams, shared_encoder, tmp_path):
        """compile(load(save(fsm))) serves exactly like compile(fsm)."""
        names = profile_names()
        sample = np.concatenate(
            [shared_encoder.normalize_batch(profile_streams[n][:3]) for n in names]
        )
        qbn = build_observation_qbn(35, latent_dim=OBS_LATENT, hidden_dim=16, rng=77)
        fsm = make_random_machine(3000, qbn, sample)
        save_fsm(tmp_path / "fsm.json", fsm)
        original = CompiledFSMPolicy.compile(fsm, qbn, encoder=shared_encoder)
        reloaded = CompiledFSMPolicy.compile(
            load_fsm(tmp_path / "fsm.json"), qbn, encoder=shared_encoder
        )
        states = np.full(len(names), original.start_state, dtype=np.int64)
        states_r = states.copy()
        for step in range(10):
            raw = np.stack(
                [profile_streams[n][step % len(profile_streams[n])] for n in names]
            )
            normalized = shared_encoder.normalize_batch(raw)
            a = original.act_batch(normalized, states)
            b = reloaded.act_batch(normalized, states_r)
            states, states_r = a.next_states, b.next_states
            assert np.array_equal(a.actions, b.actions)
            assert np.array_equal(a.next_states, b.next_states)

    def test_extracted_pipeline_artifacts_serve_identically(
        self, tiny_pipeline_result, env
    ):
        """The real thing: a trained run's FSM, compiled, vs its fsm_agent."""
        result = tiny_pipeline_result
        compiled = result.compiled_fsm_policy(env)
        eval_traces = result.eval_traces
        encoder = env.observation_encoder

        streams = []
        rng = np.random.default_rng(5)
        for trace in eval_traces:
            observation = env.reset(trace)
            rows = []
            while True:
                rows.append(observation.raw())
                step = env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
                observation = step.observation
                if step.done:
                    break
            streams.append(np.array(rows))

        agents = [result.fsm_agent(env) for _ in streams]
        for agent in agents:
            agent.reset()
        length = min(len(s) for s in streams)
        states = np.full(len(streams), compiled.start_state, dtype=np.int64)
        for step in range(length):
            raw = np.stack([stream[step] for stream in streams])
            decision = compiled.act_batch(encoder.normalize_batch(raw), states)
            states = decision.next_states
            expected = [
                int(agents[i].act(encoder.split_raw(streams[i][step])))
                for i in range(len(streams))
            ]
            assert decision.actions.tolist() == expected
