"""FSM JSON persistence and the shared unseen-observation resolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.fsm.generalize import NearestObservationMatcher, nearest_prototype_rows
from repro.fsm.machine import FiniteStateMachine
from repro.fsm.serialize import fsm_to_payload, load_fsm, save_fsm
from repro.storage.migration import MigrationAction


def build_machine(rng: np.random.Generator, num_states: int = 6) -> FiniteStateMachine:
    """A small machine with states, transitions, prototypes and a start state."""
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < num_states:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            codes.append(code)
            state = fsm.add_state(code, MigrationAction(int(rng.integers(7))))
            state.visit_count = int(rng.integers(50))
    observations = [tuple(int(c) for c in rng.integers(0, 3, size=4)) for _ in range(8)]
    for _ in range(25):
        source = codes[int(rng.integers(len(codes)))]
        destination = codes[int(rng.integers(len(codes)))]
        observation = observations[int(rng.integers(len(observations)))]
        fsm.add_transition(
            source, observation, destination,
            observation_vector=rng.normal(size=7),
        )
    fsm.initial_state = codes[0]
    fsm.validate()
    return fsm


class TestFSMPersistence:
    def test_roundtrip_preserves_everything(self, tmp_path):
        fsm = build_machine(np.random.default_rng(0))
        path = tmp_path / "fsm.json"
        save_fsm(path, fsm)
        loaded = load_fsm(path)

        loaded.validate()
        assert list(loaded.states.keys()) == list(fsm.states.keys())
        for code, state in fsm.states.items():
            other = loaded.states[code]
            assert (other.state_id, other.action, other.visit_count) == (
                state.state_id, state.action, state.visit_count,
            )
        assert loaded.transitions == fsm.transitions
        assert loaded.transition_counts == fsm.transition_counts
        assert loaded.initial_state == fsm.initial_state
        assert list(loaded.observation_prototypes.keys()) == list(
            fsm.observation_prototypes.keys()
        )
        for key, vector in fsm.observation_prototypes.items():
            # Bit-exact: JSON float encoding is repr-based and lossless.
            assert np.array_equal(loaded.observation_prototypes[key], vector)

    def test_roundtrip_is_stable(self, tmp_path):
        """Payload of a loaded machine equals the payload it was saved from."""
        fsm = build_machine(np.random.default_rng(7))
        path = tmp_path / "fsm.json"
        save_fsm(path, fsm)
        assert fsm_to_payload(load_fsm(path)) == fsm_to_payload(fsm)

    def test_none_initial_state_roundtrips(self, tmp_path):
        fsm = build_machine(np.random.default_rng(3))
        fsm.initial_state = None
        save_fsm(tmp_path / "fsm.json", fsm)
        assert load_fsm(tmp_path / "fsm.json").initial_state is None

    def test_step_behaviour_identical_after_roundtrip(self, tmp_path):
        fsm = build_machine(np.random.default_rng(11))
        save_fsm(tmp_path / "fsm.json", fsm)
        loaded = load_fsm(tmp_path / "fsm.json")
        current = current_loaded = fsm.initial_state
        for (source, observation) in list(fsm.transitions)[:10]:
            current, action = fsm.step(current, observation)
            current_loaded, action_loaded = loaded.step(current_loaded, observation)
            assert (current, action) == (current_loaded, action_loaded)

    def test_invalid_machine_refuses_to_save(self, tmp_path):
        fsm = build_machine(np.random.default_rng(5))
        fsm.initial_state = (9, 9, 9, 9, 9)
        with pytest.raises(Exception):
            save_fsm(tmp_path / "bad.json", fsm)

    def test_wrong_format_version_rejected(self, tmp_path):
        fsm = build_machine(np.random.default_rng(2))
        path = tmp_path / "fsm.json"
        save_fsm(path, fsm)
        text = path.read_text().replace('"format_version": 1', '"format_version": 99')
        path.write_text(text)
        with pytest.raises(SerializationError):
            load_fsm(path)


class TestSharedFallbackResolution:
    """The matcher and the batched helper are one resolution path."""

    def test_match_routes_through_shared_helper(self):
        rng = np.random.default_rng(0)
        prototypes = {
            tuple(int(c) for c in rng.integers(0, 3, size=4)): rng.normal(size=9)
            for _ in range(12)
        }
        matcher = NearestObservationMatcher(prototypes)
        matrix = np.stack([np.asarray(v, float) for v in prototypes.values()])
        keys = list(prototypes.keys())
        queries = rng.normal(size=(40, 9))
        batched = nearest_prototype_rows(matrix, queries)
        for i, query in enumerate(queries):
            assert matcher.match(query) == keys[int(batched[i])]
            assert matcher.match_index(query) == int(batched[i])

    def test_batched_rows_match_scalar_rows_bitwise(self):
        """Row i of a batched resolve equals resolving row i alone."""
        rng = np.random.default_rng(42)
        matrix = rng.normal(size=(17, 35))
        queries = rng.normal(size=(64, 35))
        batched = nearest_prototype_rows(matrix, queries)
        single = np.array(
            [nearest_prototype_rows(matrix, q[None, :])[0] for q in queries]
        )
        assert np.array_equal(batched, single)

    def test_cosine_metric_matches_scalar_loop(self):
        rng = np.random.default_rng(1)
        prototypes = {
            (0, i): rng.normal(size=5) for i in range(6)
        }
        matcher = NearestObservationMatcher(prototypes, metric="cosine")
        keys = list(prototypes.keys())
        matrix = np.stack(list(prototypes.values()))
        for query in rng.normal(size=(10, 5)):
            row = nearest_prototype_rows(matrix, query[None, :], "cosine")[0]
            assert matcher.match(query) == keys[int(row)]

    def test_tie_breaks_to_first_prototype(self):
        matrix = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 5.0]])
        rows = nearest_prototype_rows(matrix, np.array([[1.0, 0.0]]))
        assert rows[0] == 0
