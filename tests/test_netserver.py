"""Tests for the asyncio network front door + artifact hot-swap layer.

Each test drives a real server over a real transport (unix socket in a
short-named temp dir, or TCP loopback) with the real framing client;
``asyncio.run`` keeps the suite free of event-loop plugins.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

import numpy as np
import pytest

from repro import telemetry
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import ConfigurationError, ServingError, StaleSessionError
from repro.fsm.machine import FiniteStateMachine
from repro.qbn.autoencoder import build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import (
    ArtifactRegistry,
    CompiledFSMBackend,
    CompiledFSMPolicy,
    FidelityAlarm,
    GRUPolicyBackend,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
    ShadowEvaluator,
)
from repro.serving.netserver import CODEC_JSON, decode_body, encode_frame, msgpack
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator


# ----------------------------------------------------------------------
# Shared small artefacts (mirrors test_serving.py's handmade machine)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_env():
    return StorageAllocationEnv(
        StorageSystemConfig(), reward_config=RewardConfig(mode="per_step_penalty"), rng=0
    )


@pytest.fixture(scope="module")
def observation_stream(serving_env):
    generator = StandardWorkloadGenerator(
        serving_env.system_config, GeneratorConfig(), rng=0
    )
    trace = generator.generate("web_server", duration=24)
    rng = np.random.default_rng(9)
    observation = serving_env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = serving_env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    return np.array(rows)


@pytest.fixture(scope="module")
def compiled_policy(serving_env, observation_stream):
    rng = np.random.default_rng(3)
    qbn = build_observation_qbn(35, latent_dim=6, hidden_dim=16, rng=4)
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = serving_env.observation_encoder.normalize_batch(observation_stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    return CompiledFSMPolicy.compile(fsm, qbn, encoder=serving_env.observation_encoder)


def _gru_policy() -> RecurrentPolicyValueNet:
    return RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=5)


class _socket_dir:
    """Short-path socket dir (unix socket paths are length-limited)."""

    def __enter__(self) -> str:
        self.path = tempfile.mkdtemp(prefix="rnet", dir="/tmp")
        return os.path.join(self.path, "s.sock")

    def __exit__(self, *_exc) -> None:
        import shutil

        shutil.rmtree(self.path, ignore_errors=True)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_json_roundtrip(self):
        payload = {"op": "decide", "id": 7, "observation": [1.0, 2.5]}
        frame = encode_frame(payload, CODEC_JSON)
        codec, length = frame[0], int.from_bytes(frame[1:5], "big")
        assert codec == CODEC_JSON and length == len(frame) - 5
        assert decode_body(codec, frame[5:]) == payload

    def test_msgpack_roundtrip_or_gated(self):
        payload = {"op": "ping", "id": 1}
        if msgpack is None:
            with pytest.raises(ConfigurationError, match="msgpack"):
                encode_frame(payload, 1)
        else:
            frame = encode_frame(payload, 1)
            assert decode_body(1, frame[5:]) == payload

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_frame({"op": "ping"}, 9)


# ----------------------------------------------------------------------
# Network front door
# ----------------------------------------------------------------------
class TestNetServer:
    def test_concurrent_clients_bit_identical_to_inprocess(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Multi-client socket decisions replay the in-process broker."""

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=8,
            )
            netserver = PolicyNetServer(server, flush_interval=0.001)
            reference = PolicyServer(
                CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
            )
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                clients = [
                    await PolicyClient.connect_unix(socket_path) for _ in range(4)
                ]
                try:
                    handles = [await client.open(4) for client in clients]
                    # One reference session per network session, replaying
                    # the same per-session observation stream.
                    streams = {}
                    reference_ids = {}
                    for c, client_handles in enumerate(handles):
                        for s, handle in enumerate(client_handles):
                            streams[handle] = (c * 4 + s) * 5
                            reference_ids[handle] = int(reference.open_sessions(1)[0])
                    for step in range(5):
                        requests = []
                        for c, client in enumerate(clients):
                            for handle in handles[c]:
                                row = (streams[handle] + step) % len(observation_stream)
                                requests.append(
                                    (handle, client.decide(handle, observation_stream[row]), row)
                                )
                        actions = await asyncio.gather(*[r[1] for r in requests])
                        for (handle, _req, row), action in zip(requests, actions):
                            expected = reference.decide_now(
                                [reference_ids[handle]],
                                observation_stream[None, row],
                            )
                            assert action == int(expected[0])
                    stats = await clients[0].stats()
                    assert stats["decisions"] == 5 * 16
                    assert stats["failed"] == 0
                    assert stats["batches"] >= 1
                    assert stats["latency"]["count"] == 5 * 16
                    assert stats["latency"]["p99_ms"] > 0
                finally:
                    for client in clients:
                        await client.close()
                summary = await netserver.drain()
                assert summary["parked_replies"] == 0
                assert summary["pending"] == 0

        asyncio.run(scenario())

    def test_tcp_transport(self, compiled_policy, serving_env, observation_stream):
        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
            )
            netserver = PolicyNetServer(server, flush_interval=0.001)
            endpoints = await netserver.start(host="127.0.0.1")
            host, port = endpoints["tcp"]
            async with await PolicyClient.connect_tcp(host, port) as client:
                assert await client.ping()
                (handle,) = await client.open(1)
                action = await client.decide(handle, observation_stream[0])
                assert 0 <= action < NUM_ACTIONS
            await netserver.drain()

        asyncio.run(scenario())

    def test_backpressure_busy_replies(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Requests beyond the per-connection in-flight bound get BUSY."""

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            # Huge flush interval: only explicit drain flushes, so
            # requests genuinely accumulate in flight.
            netserver = PolicyNetServer(server, flush_interval=30.0, max_inflight=3)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                handles = await client.open(8)
                tasks = [
                    asyncio.create_task(
                        client.request(
                            {
                                "op": "decide",
                                "handle": list(handle),
                                "observation": observation_stream[i].tolist(),
                            }
                        )
                    )
                    for i, handle in enumerate(handles)
                ]
                # Give the server time to park the first 3 and reject the rest.
                await asyncio.sleep(0.1)
                assert netserver.busy_rejections == 5
                summary = await netserver.drain()
                replies = await asyncio.gather(*tasks)
                accepted = [r for r in replies if r.get("ok")]
                busy = [r for r in replies if r.get("error") == "BUSY"]
                assert len(accepted) == 3 and len(busy) == 5
                assert all(0 <= r["action"] < NUM_ACTIONS for r in accepted)
                assert summary["busy_rejections"] == 5
                assert summary["parked_replies"] == 0
                await client.close()

        asyncio.run(scenario())

    def test_graceful_drain_resolves_mid_batch_requests(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Drain answers queued requests instead of dropping them."""

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=30.0)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                handles = await client.open(3)
                tasks = [
                    asyncio.create_task(
                        client.decide(handle, observation_stream[i])
                    )
                    for i, handle in enumerate(handles)
                ]
                await asyncio.sleep(0.05)
                assert server.pending == 3  # parked, mid-batch
                summary = await netserver.drain()
                actions = await asyncio.gather(*tasks)
                assert all(0 <= action < NUM_ACTIONS for action in actions)
                assert summary["pending"] == 0
                assert summary["parked_replies"] == 0
                assert summary["failed"] == 0
                # Listener is gone: new connections are refused.
                with pytest.raises((ConnectionRefusedError, FileNotFoundError)):
                    await PolicyClient.connect_unix(socket_path)
                await client.close()

        asyncio.run(scenario())

    def test_stale_handle_rejected_after_slot_reuse(
        self, compiled_policy, serving_env, observation_stream
    ):
        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
            )
            netserver = PolicyNetServer(server, flush_interval=0.001)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                async with await PolicyClient.connect_unix(socket_path) as client:
                    (stale,) = await client.open(1)
                    await client.close_sessions([stale])
                    (fresh,) = await client.open(1)
                    # LIFO free list: the slot is reused, generation bumped.
                    assert fresh[0] == stale[0] and fresh[1] == stale[1] + 1
                    with pytest.raises(StaleSessionError):
                        await client.decide(stale, observation_stream[0])
                    action = await client.decide(fresh, observation_stream[0])
                    assert 0 <= action < NUM_ACTIONS
                await netserver.drain()

        asyncio.run(scenario())

    def test_hot_swap_under_load_with_fidelity_alarm(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Alarm-driven blue/green swap under live traffic, zero lost tickets.

        v1 serves the compiled FSM with the GRU in shadow; their
        divergence trips the fidelity alarm mid-stream, which hot-swaps
        to v2 (the GRU itself).  Every request before, during and after
        the swap resolves with a real decision.
        """

        async def scenario():
            policy = _gru_policy()
            registry = ArtifactRegistry()
            shadowed = ShadowEvaluator(
                CompiledFSMBackend(compiled_policy), GRUPolicyBackend(policy)
            )
            registry.register_backend("v1", shadowed, kind="shadowed_compiled_fsm")
            registry.register_backend("v2", GRUPolicyBackend(policy))
            server = PolicyServer(
                shadowed, serving_env.observation_encoder, max_batch_size=16
            )
            alarm = FidelityAlarm(shadowed, threshold=0.999, min_decisions=40)
            netserver = PolicyNetServer(
                server,
                registry=registry,
                active_version="v1",
                flush_interval=0.001,
                alarm=alarm,
                alarm_swap_to="v2",
            )
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                async with await PolicyClient.connect_unix(socket_path) as client:
                    handles = await client.open(10)
                    for step in range(12):
                        actions = await asyncio.gather(
                            *[
                                client.decide(
                                    handle,
                                    observation_stream[
                                        (i * 7 + step) % len(observation_stream)
                                    ],
                                )
                                for i, handle in enumerate(handles)
                            ]
                        )
                        assert all(0 <= action < NUM_ACTIONS for action in actions)
                    stats = await client.stats()
                    # The alarm must have tripped (the handmade FSM and the
                    # random GRU disagree heavily) and auto-swapped to v2.
                    assert stats["active_version"] == "v2"
                    assert stats["backend"] == "gru"
                    assert stats["swaps"] == 1
                    assert stats["decisions"] == 120
                    assert stats["failed"] == 0
                    audit = await client.audit()
                    events = [entry["event"] for entry in audit]
                    assert events == ["fidelity_alarm", "swap"]
                    swap_entry = audit[-1]
                    assert swap_entry["reason"] == "fidelity_alarm"
                    assert swap_entry["from_version"] == "v1"
                    assert swap_entry["to_version"] == "v2"
                    assert swap_entry["state"] == "reset"
                    # Old handles still serve after the swap.
                    action = await client.decide(handles[0], observation_stream[0])
                    assert 0 <= action < NUM_ACTIONS
                summary = await netserver.drain()
                assert summary["parked_replies"] == 0
                # The alarm was disarmed by the swap (shadow no longer mounted).
                assert netserver.alarm is None

        asyncio.run(scenario())

    def test_manual_swap_and_versions_listing(
        self, compiled_policy, serving_env, observation_stream, tmp_path
    ):
        """Manual blue/green swap between two on-disk artifact versions."""

        async def scenario():
            artifact_path = tmp_path / "fsm_v1.npz"
            compiled_policy.save(artifact_path)
            registry = ArtifactRegistry()
            registry.register_compiled_fsm("v1", artifact_path)
            registry.register_backend("v2", GRUPolicyBackend(_gru_policy()))
            server = PolicyServer(
                registry.get("v1"), serving_env.observation_encoder
            )
            netserver = PolicyNetServer(
                server, registry=registry, active_version="v1", flush_interval=0.001
            )
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                async with await PolicyClient.connect_unix(socket_path) as client:
                    handles = await client.open(4)
                    for i, handle in enumerate(handles):
                        await client.decide(handle, observation_stream[i])
                    listing = await client.versions()
                    assert listing["active"] == "v1"
                    assert {v["version"] for v in listing["versions"]} == {"v1", "v2"}
                    entry = await client.swap("v2")
                    assert entry["to_backend"] == "gru"
                    assert (await client.versions())["active"] == "v2"
                    # Unknown versions are rejected without disturbing service.
                    with pytest.raises(ServingError, match="unknown artifact"):
                        await client.swap("v9")
                    action = await client.decide(handles[0], observation_stream[0])
                    assert 0 <= action < NUM_ACTIONS
                await netserver.drain()

        asyncio.run(scenario())

    def test_bad_requests_get_error_replies_not_disconnects(
        self, compiled_policy, serving_env, observation_stream
    ):
        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy), serving_env.observation_encoder
            )
            netserver = PolicyNetServer(server, flush_interval=0.001)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                async with await PolicyClient.connect_unix(socket_path) as client:
                    reply = await client.request({"op": "frobnicate"})
                    assert reply["error"] == "BAD_REQUEST"
                    reply = await client.request(
                        {"op": "decide", "handle": [99, 0],
                         "observation": observation_stream[0].tolist()}
                    )
                    assert reply["error"] == "BAD_REQUEST"
                    reply = await client.request({"op": "swap", "version": "v1"})
                    assert reply["error"] == "BAD_REQUEST"  # no registry attached
                    # The connection survived all of it.
                    assert await client.ping()
                await netserver.drain()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Artifact registry
# ----------------------------------------------------------------------
class TestArtifactRegistry:
    def test_lazy_load_and_duplicate_rejection(self, compiled_policy, tmp_path):
        path = tmp_path / "artifact.npz"
        compiled_policy.save(path)
        registry = ArtifactRegistry()
        registry.register_compiled_fsm("2026-08-01", path)
        record = registry.record("2026-08-01")
        assert not record.loaded  # lazy until first get()
        backend = registry.get("2026-08-01")
        assert record.loaded
        assert registry.get("2026-08-01") is backend  # cached
        assert backend.policy.num_states == compiled_policy.num_states
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register_backend("2026-08-01", backend)
        with pytest.raises(ConfigurationError, match="unknown artifact"):
            registry.get("nope")

    def test_policy_checkpoint_roundtrip(self, tmp_path, serving_env, observation_stream):
        from repro.drl.checkpoints import save_policy

        policy = _gru_policy()
        path = tmp_path / "policy.npz"
        save_policy(path, policy)
        registry = ArtifactRegistry()
        registry.register_policy_checkpoint("gru-v1", path)
        backend = registry.get("gru-v1")
        server = PolicyServer(backend, serving_env.observation_encoder)
        reference = PolicyServer(
            GRUPolicyBackend(policy), serving_env.observation_encoder
        )
        ids = server.open_sessions(2)
        reference_ids = reference.open_sessions(2)
        for step in range(4):
            batch = np.tile(observation_stream[step], (2, 1))
            assert np.array_equal(
                server.decide_now(ids, batch),
                reference.decide_now(reference_ids, batch),
            )

    def test_swap_appends_audit_with_migration_decision(
        self, compiled_policy, serving_env, observation_stream
    ):
        registry = ArtifactRegistry()
        registry.register_backend("blue", CompiledFSMBackend(compiled_policy))
        registry.register_backend("green", CompiledFSMBackend(compiled_policy))
        registry.register_backend("gru", GRUPolicyBackend(_gru_policy()))
        server = PolicyServer(registry.get("blue"), serving_env.observation_encoder)
        ids = server.open_sessions(3)
        server.decide_now(ids, observation_stream[:3])
        first = registry.swap(server, "green", from_version="blue")
        assert first["state"] == "migrated"  # identical compiled tables
        second = registry.swap(server, "gru", from_version="green")
        assert second["state"] == "reset"
        assert [entry["seq"] for entry in registry.audit_trail] == [0, 1]
        assert registry.audit_trail[0]["to_version"] == "green"
        assert registry.audit_trail[1]["from_version"] == "green"


# ----------------------------------------------------------------------
# PR 9 serving hardening: flush-loop guard, broken-peer settle, drain
# ----------------------------------------------------------------------
class _WedgedBackend:
    """Wraps a real backend; ``decide`` raises RuntimeError while armed."""

    def __init__(self, inner, failures: int = 1) -> None:
        self.inner = inner
        self.failures = failures
        self.name = f"wedged({inner.name})"

    def session_table(self, capacity):
        return self.inner.session_table(capacity)

    def begin_sessions(self, table, slots):
        self.inner.begin_sessions(table, slots)

    def decide(self, table, slots, raw, normalized):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("wedged backend")
        return self.inner.decide(table, slots, raw, normalized)


class TestServingHardening:
    def test_flush_loop_survives_non_repro_backend_fault(
        self, compiled_policy, serving_env, observation_stream
    ):
        """One RuntimeError from a flush tick must not kill the loop.

        Before the guard, anything outside the ReproError hierarchy
        raised in ``_flush_loop`` killed the task silently — the server
        never flushed again and every later request hung until drain.
        """

        async def scenario():
            server = PolicyServer(
                _WedgedBackend(CompiledFSMBackend(compiled_policy), failures=1),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=0.002)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                (handle,) = await client.open(1)
                with pytest.raises(ServingError, match="BACKEND_ERROR"):
                    await client.decide(handle, observation_stream[0])
                summary = await client.stats()
                assert summary["flush_loop_errors"] == 1
                assert "RuntimeError" in summary["last_flush_error"]
                # The loop is still alive: the next request is served
                # by a timer-triggered flush, not left hanging.
                action = await asyncio.wait_for(
                    client.decide(handle, observation_stream[1]), timeout=5.0
                )
                assert 0 <= action < NUM_ACTIONS
                assert not netserver._flush_task.done()
                await client.close()
                await netserver.drain()

        asyncio.run(scenario())

    def test_settle_survives_peer_that_breaks_mid_batch(
        self, compiled_policy, serving_env, observation_stream
    ):
        """A reply write blowing up must not lose the batch's other replies.

        Before the fix, the first ``connection.send`` raising inside
        ``_settle`` propagated out with half the waiters unsettled and
        ``inflight`` already decremented for some — here the broken
        peer's reply is dropped (counted) and everyone else settles.
        """

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=0.01)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                healthy = await PolicyClient.connect_unix(socket_path)
                doomed = await PolicyClient.connect_unix(socket_path)
                (h_handle,) = await healthy.open(1)
                (d_handle,) = await doomed.open(1)
                # Break the doomed peer's server-side transport: every
                # write now raises like a mid-reply disconnect would.
                doomed_connection = netserver._connections[1]

                def exploding_write(data):
                    raise ConnectionResetError("peer vanished mid-reply")

                doomed_connection.writer.write = exploding_write
                lost = asyncio.create_task(
                    doomed.decide(d_handle, observation_stream[0])
                )
                await asyncio.sleep(0)  # let the doomed request park first
                # wait_for: with the settle bug, the raise kills the
                # flush loop and this would hang forever, not fail.
                action = await asyncio.wait_for(
                    healthy.decide(h_handle, observation_stream[1]), timeout=5.0
                )
                assert 0 <= action < NUM_ACTIONS  # same batch, still settled
                assert netserver.replies_dropped == 1
                assert doomed_connection.broken
                assert doomed_connection.inflight == 0
                assert len(netserver._waiters) == 0
                assert netserver.flush_loop_errors == 0
                lost.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await lost
                await healthy.close()
                await doomed.close()
                summary = await netserver.drain()
                assert summary["replies_dropped"] == 1

        asyncio.run(scenario())

    def test_drain_with_wedged_backend_completes_cleanly(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Drain must finish (and answer everyone) even if flush raises.

        Before the fix, a non-ReproError out of the drain flush
        propagated with the listeners already closed and every
        connection stranded.
        """

        async def scenario():
            server = PolicyServer(
                _WedgedBackend(CompiledFSMBackend(compiled_policy), failures=10),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=30.0)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                handles = await client.open(2)
                tasks = [
                    asyncio.create_task(
                        client.decide(handle, observation_stream[i])
                    )
                    for i, handle in enumerate(handles)
                ]
                await asyncio.sleep(0.05)
                assert server.pending == 2
                summary = await netserver.drain()
                assert summary["pending"] == 0
                assert summary["parked_replies"] == 0
                assert summary["flush_loop_errors"] == 1
                for task in tasks:
                    with pytest.raises(ServingError, match="BACKEND_ERROR"):
                        await task
                await client.close()

        asyncio.run(scenario())

    def test_drain_cancels_parked_tickets_through_the_broker(
        self, compiled_policy, serving_env, observation_stream
    ):
        """Drain's ``pending == 0`` guarantee must hold in the *broker*.

        With the broker's flush disabled (a stand-in for any path that
        leaves tickets parked), the old code failed the tickets from
        the outside — parked replies settled, but the tickets stayed in
        the broker's pending set and ``pending`` read nonzero after a
        "clean" drain.  Routing through ``cancel_pending`` makes the
        guarantee real.
        """

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=30.0)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                handles = await client.open(2)
                tasks = [
                    asyncio.create_task(
                        client.decide(handle, observation_stream[i])
                    )
                    for i, handle in enumerate(handles)
                ]
                await asyncio.sleep(0.05)
                assert server.pending == 2
                server.flush = lambda: 0  # wedge the drain's flush path
                summary = await netserver.drain()
                assert summary["pending"] == 0
                assert summary["parked_replies"] == 0
                assert server._pending_set == set()
                for task in tasks:
                    with pytest.raises(ServingError, match="drained"):
                        await task
                assert server.stats().failed == 2
                await client.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# PR 10 telemetry: the ``metrics`` socket op + flush-health surfacing
# ----------------------------------------------------------------------
class TestMetricsOp:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        # These tests pin exact series values, and every server in the
        # process shares the default registry — start each from zero.
        telemetry.configure(enabled=True)
        yield
        telemetry.configure(enabled=True)

    def test_metrics_op_serves_both_expositions(
        self, compiled_policy, serving_env, observation_stream
    ):
        """A live server answers ``metrics`` with Prometheus text + JSON
        covering the broker and netserver series, moving under traffic."""

        async def scenario():
            server = PolicyServer(
                CompiledFSMBackend(compiled_policy),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=0.002)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                handles = await client.open(3)
                for index, handle in enumerate(handles):
                    await client.decide(handle, observation_stream[index])
                first = await client.metrics()
                for index, handle in enumerate(handles):
                    await client.decide(handle, observation_stream[index + 3])

                second = await client.metrics()
                prom = second["prometheus"]
                assert "# TYPE serving_decisions_total counter" in prom
                assert "# TYPE serving_batch_size summary" in prom
                assert 'netserver_requests_total{op="decide"} 6' in prom
                assert "serving_queue_depth_peak" in prom

                def value(payload, name, **labels):
                    for series in payload["json"][name]["series"]:
                        if series["labels"] == labels:
                            return series["value"]
                    raise AssertionError(f"{name} {labels} missing")

                # Monotone between in-flight scrapes.
                assert value(first, "serving_decisions_total") == 3
                assert value(second, "serving_decisions_total") == 6
                assert value(second, "netserver_requests_total", op="metrics") == 2
                backend = server.backend.name
                assert value(second, "serving_backend_info", backend=backend) == 1.0
                # Flush health rides along even when all is well.
                assert second["flush_loop_errors"] == 0
                assert second["last_flush_error"] is None
                await client.close()
                await netserver.drain()

        asyncio.run(scenario())

    def test_metrics_and_stats_surface_flush_loop_faults(
        self, compiled_policy, serving_env, observation_stream
    ):
        """The once-silent flush-loop drop is observable from both ops."""

        async def scenario():
            server = PolicyServer(
                _WedgedBackend(CompiledFSMBackend(compiled_policy), failures=1),
                serving_env.observation_encoder,
                max_batch_size=1024,
            )
            netserver = PolicyNetServer(server, flush_interval=0.002)
            with _socket_dir() as socket_path:
                await netserver.start(unix_path=socket_path)
                client = await PolicyClient.connect_unix(socket_path)
                (handle,) = await client.open(1)
                with pytest.raises(ServingError, match="BACKEND_ERROR"):
                    await client.decide(handle, observation_stream[0])
                # Recovered: later requests are served...
                action = await asyncio.wait_for(
                    client.decide(handle, observation_stream[1]), timeout=5.0
                )
                assert 0 <= action < NUM_ACTIONS
                # ...but the fault stays visible through BOTH ops.
                stats = await client.stats()
                assert stats["flush_loop_errors"] == 1
                assert "RuntimeError" in stats["last_flush_error"]
                exposition = await client.metrics()
                assert exposition["flush_loop_errors"] == 1
                assert "RuntimeError" in exposition["last_flush_error"]
                assert "netserver_flush_loop_errors_total 1" in exposition["prometheus"]
                errors = {
                    tuple(sorted(series["labels"].items())): series["value"]
                    for series in exposition["json"][
                        "netserver_error_replies_total"
                    ]["series"]
                }
                assert errors[(("code", "BACKEND_ERROR"),)] >= 1
                await client.close()
                await netserver.drain()

        asyncio.run(scenario())
