"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import ExponentialMovingAverage, RunningStat, summarize


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.std == 0.0

    def test_single_value(self):
        stat = RunningStat()
        stat.update(3.5)
        assert stat.mean == pytest.approx(3.5)
        assert stat.variance == 0.0
        assert stat.min == 3.5
        assert stat.max == 3.5

    def test_matches_numpy(self):
        values = [1.0, 2.5, -3.0, 7.25, 0.0]
        stat = RunningStat()
        stat.update_many(values)
        assert stat.mean == pytest.approx(np.mean(values))
        assert stat.std == pytest.approx(np.std(values, ddof=1))
        assert stat.min == min(values)
        assert stat.max == max(values)

    def test_as_dict_keys(self):
        stat = RunningStat()
        stat.update(1.0)
        assert set(stat.as_dict()) == {"count", "mean", "std", "min", "max"}

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_mean_within_bounds(self, values):
        stat = RunningStat()
        stat.update_many(values)
        assert stat.min - 1e-9 <= stat.mean <= stat.max + 1e-9

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30))
    def test_property_matches_numpy_mean(self, values):
        stat = RunningStat()
        stat.update_many(values)
        assert math.isclose(stat.mean, float(np.mean(values)), rel_tol=1e-9, abs_tol=1e-6)


class TestEMA:
    def test_first_update_sets_value(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        assert ema.update(10.0) == 10.0

    def test_smoothing(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        ema.update(0.0)
        assert ema.update(10.0) == pytest.approx(5.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage().value


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.min == 1.0
        assert summary.max == 4.0

    def test_single_value_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert d["count"] == 2.0
        assert set(d) == {"count", "mean", "std", "min", "median", "max"}
