"""Randomized differential-equivalence harness for the rollout stack.

The repo's standing regression net: ~50 seeded random simulator/workload/
policy configurations (varying batch size, core allocations, penalties,
idle rates, episode lengths and partial-batch endings) are each run
through every collection mode and asserted **bit-identical** on rewards,
observations, actions, hidden states, value estimates *and the final rng
stream positions* of both the environment and the action streams:

* scalar   — :class:`RolloutCollector`, one episode at a time;
* vector   — :class:`BatchedRolloutCollector`, all episodes in lockstep;
* parallel — :class:`ParallelRolloutCollector`, episodes sharded across
  worker processes (subset of configs; process spawns are not free);
* pool     — :class:`ParallelRolloutCollector` backed by the persistent
  worker pool, reusing one pool across several configs/epochs.

Every configuration is derived from a single seed, so a failure prints
the config index and can be replayed in isolation with
``pytest tests/test_differential_equivalence.py -k <index>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import pytest

from repro.drl.parallel import ParallelRolloutCollector
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.worker_pool import PersistentWorkerPool
from repro.drl.rollout import (
    BatchedRolloutCollector,
    RolloutCollector,
    Trajectory,
    derive_episode_streams,
)
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.nn.native import native_available, native_unavailable_reason
from repro.nn.rnn import GRUCell
from repro.storage.iorequest import NUM_IO_TYPES
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadInterval, WorkloadTrace

NUM_CONFIGS = 50
# Process-based modes only run on a subset of configs: spawning worker
# processes ~50 times would dominate the suite's wall-clock without
# exercising anything new (worker layout never touches the rng streams).
PARALLEL_CONFIG_STRIDE = 7


@dataclass
class FuzzCase:
    """One fully-seeded random configuration of the differential harness."""

    index: int
    system_config: StorageSystemConfig
    reward_config: RewardConfig
    policy: RecurrentPolicyValueNet
    traces: List[WorkloadTrace]
    base_seed: int
    epsilon: float
    greedy: bool


def _random_system_config(rng: np.random.Generator) -> StorageSystemConfig:
    min_cores = int(rng.integers(1, 3))
    counts = [min_cores + int(rng.integers(0, 4)) for _ in range(3)]
    return StorageSystemConfig(
        total_cores=sum(counts),
        initial_allocation={"NORMAL": counts[0], "KV": counts[1], "RV": counts[2]},
        core_capability_kb=float(rng.choice([20_000.0, 40_000.0, 65_000.0])),
        cache_miss_rate=float(rng.uniform(0.0, 1.0)),
        migration_penalty=float(rng.uniform(0.0, 0.5)),
        migration_cooldown_intervals=int(rng.integers(0, 3)),
        min_cores_per_level=min_cores,
        idle_rate=float(rng.choice([0.0, 0.05, 0.25])),
        # A tight interval cap on some configs exercises truncation (and
        # with it partial batches that end on a truncated slot).
        max_intervals_factor=float(rng.choice([1.5, 3.0, 12.0])),
        max_intervals_slack=int(rng.integers(2, 30)),
    )


def _random_trace(
    rng: np.random.Generator, name: str, duration: int, normal_capacity_kb: float
) -> WorkloadTrace:
    """A random trace loading the array to roughly 40–150% of capacity."""
    intervals = []
    mean_size_kb = 90.0  # uniform mix over the 14 standard IO types
    for _ in range(duration):
        ratios = rng.dirichlet(np.ones(NUM_IO_TYPES))
        load = float(rng.uniform(0.4, 1.5))
        intervals.append(
            WorkloadInterval(ratios, load * normal_capacity_kb / mean_size_kb)
        )
    return WorkloadTrace(name=name, intervals=intervals)


def make_case(index: int) -> FuzzCase:
    rng = np.random.default_rng(90_000 + index)
    system_config = _random_system_config(rng)
    batch = int(rng.integers(1, 7))
    normal_capacity = (
        system_config.initial_allocation["NORMAL"] * system_config.core_capability_kb
    )
    traces = [
        _random_trace(
            rng,
            f"fuzz/{index}/{i}",
            duration=int(rng.integers(3, 12)),
            normal_capacity_kb=normal_capacity,
        )
        for i in range(batch)
    ]
    # Hidden sizes are drawn from the widths whose inference kernels are
    # bit-stable across batch sizes on supported BLAS builds: sizes below
    # 7 resolve to einsum (stable by construction) and 8/12/16 resolve to
    # the gemm path the repo's equivalence pins run on.  Probing this box
    # showed gemm rows are NOT batch-stable for every width (e.g. 9-11
    # with a 33-wide contraction differ by 1 ulp between B=2 and B=4), so
    # arbitrary widths are deliberately out of the bit-identity contract.
    policy = RecurrentPolicyValueNet(
        PolicyConfig(hidden_size=int(rng.choice([4, 6, 8, 12, 16]))),
        rng=int(rng.integers(1 << 31)),
    )
    greedy = bool(rng.integers(0, 2))
    epsilon = float(rng.choice([0.0, 0.15, 0.4]))
    reward_mode = str(rng.choice(["utilization_balance", "per_step_penalty"]))
    return FuzzCase(
        index=index,
        system_config=system_config,
        reward_config=RewardConfig(mode=reward_mode),
        policy=policy,
        traces=traces,
        base_seed=int(rng.integers(1 << 62)),
        epsilon=epsilon,
        greedy=greedy,
    )


def _rng_position(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def collect_scalar(case: FuzzCase):
    """Sequential reference: per-episode trajectories + final rng positions."""
    collector = RolloutCollector(
        StorageAllocationEnv(case.system_config, reward_config=case.reward_config)
    )
    episode_rngs, action_rngs = derive_episode_streams(case.base_seed, len(case.traces))
    trajectories = [
        collector.collect(
            case.policy,
            trace,
            epsilon=case.epsilon,
            greedy=case.greedy,
            episode_seed=episode_rngs[i],
            action_rng=action_rngs[i],
        )
        for i, trace in enumerate(case.traces)
    ]
    positions = [
        (_rng_position(episode_rngs[i]), _rng_position(action_rngs[i]))
        for i in range(len(case.traces))
    ]
    return trajectories, positions


def collect_vector(case: FuzzCase):
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(case.system_config, case.reward_config)
    )
    episode_rngs, action_rngs = derive_episode_streams(case.base_seed, len(case.traces))
    trajectories = collector.collect_batch(
        case.policy,
        case.traces,
        epsilon=case.epsilon,
        greedy=case.greedy,
        episode_rngs=episode_rngs,
        action_rngs=action_rngs,
    )
    positions = [
        (_rng_position(episode_rngs[i]), _rng_position(action_rngs[i]))
        for i in range(len(case.traces))
    ]
    return trajectories, positions


def assert_trajectories_identical(
    reference: Trajectory, other: Trajectory, context: str
) -> None:
    __tracebackhide__ = True
    assert reference.trace_name == other.trace_name, context
    assert len(reference) == len(other), context
    assert reference.makespan == other.makespan, context
    assert reference.truncated == other.truncated, context
    np.testing.assert_array_equal(
        reference.observations(), other.observations(), err_msg=context
    )
    np.testing.assert_array_equal(
        reference.raw_observations(), other.raw_observations(), err_msg=context
    )
    np.testing.assert_array_equal(
        reference.hidden_states_before(), other.hidden_states_before(), err_msg=context
    )
    np.testing.assert_array_equal(
        reference.hidden_states_after(), other.hidden_states_after(), err_msg=context
    )
    np.testing.assert_array_equal(reference.actions(), other.actions(), err_msg=context)
    np.testing.assert_array_equal(reference.rewards(), other.rewards(), err_msg=context)
    np.testing.assert_array_equal(
        reference.value_estimates(), other.value_estimates(), err_msg=context
    )
    reference_masks = reference.valid_action_masks()
    other_masks = other.valid_action_masks()
    if reference_masks is None or other_masks is None:
        assert reference_masks is None and other_masks is None, context
    else:
        np.testing.assert_array_equal(reference_masks, other_masks, err_msg=context)


def _assert_case_equivalent(case: FuzzCase, reference, positions, candidate, name: str):
    __tracebackhide__ = True
    trajectories, candidate_positions = candidate
    assert len(trajectories) == len(reference), f"config {case.index} ({name})"
    for i, (expected, actual) in enumerate(zip(reference, trajectories)):
        assert_trajectories_identical(
            expected, actual, f"config {case.index} episode {i} ({name})"
        )
    if candidate_positions is not None:
        for i, (expected, actual) in enumerate(zip(positions, candidate_positions)):
            assert expected[0] == actual[0], (
                f"config {case.index} episode {i} ({name}): environment rng stream "
                "position diverged"
            )
            assert expected[1] == actual[1], (
                f"config {case.index} episode {i} ({name}): action rng stream "
                "position diverged"
            )


def collect_parallel(case: FuzzCase):
    """Fork-per-epoch sharded collection (2 workers)."""
    collector = ParallelRolloutCollector(
        case.system_config, case.reward_config, num_workers=2
    )
    trajectories = collector.collect(
        case.policy,
        case.traces,
        base_seed=case.base_seed,
        epsilon=case.epsilon,
        greedy=case.greedy,
    )
    # Streams are consumed inside the worker processes; rng positions are
    # asserted through the scalar/vector modes.
    return trajectories, None


def collect_pool(case: FuzzCase):
    """Persistent-pool collection (2 resident workers)."""
    with PersistentWorkerPool(
        case.system_config, case.reward_config, num_workers=2
    ) as pool:
        trajectories = pool.collect(
            case.policy,
            case.traces,
            base_seed=case.base_seed,
            epsilon=case.epsilon,
            greedy=case.greedy,
        )
    return trajectories, None


@pytest.mark.parametrize("index", range(NUM_CONFIGS))
def test_scalar_vs_vector_bit_identical(index):
    case = make_case(index)
    reference, positions = collect_scalar(case)
    _assert_case_equivalent(
        case, reference, positions, collect_vector(case), "vector"
    )


@pytest.mark.parametrize("index", range(NUM_CONFIGS))
def test_vector_vs_parallel_vs_pool_bit_identical(index):
    """Process-sharded modes against the lockstep reference, all configs.

    The parallel modes shard across 2 workers; any worker-layout leak
    into the rng streams, the merge order, or the weight broadcast shows
    up as a bitwise mismatch on some of the 50 random configs.
    """
    case = make_case(index)
    reference, _ = collect_vector(case)
    if index % PARALLEL_CONFIG_STRIDE == 0:
        # Fork-per-epoch path on a subset (it shares all collection code
        # with the pool below except process lifecycle, and 50 process
        # pools would dominate the suite's wall-clock).
        _assert_case_equivalent(
            case, reference, None, collect_parallel(case), "parallel"
        )
    _assert_case_equivalent(case, reference, None, collect_pool(case), "pool")


# ----------------------------------------------------------------------
# Philox (counter-based) stream family: same four collection modes
# ----------------------------------------------------------------------
# The philox family draws *different* episodes than legacy (goldens are
# pinned per family in test_golden_traces.py); what this harness pins is
# that within the family every collection mode is bit-identical — the
# vectorized one-call-per-decision draws match per-lane scalar draws
# exactly, across worker layouts — and that both stream cursors end in
# the same position.
PHILOX_NUM_CONFIGS = 25
PHILOX_PARALLEL_STRIDE = 7


def collect_scalar_philox(case: FuzzCase):
    """Sequential reference on per-episode philox lanes."""
    collector = RolloutCollector(
        StorageAllocationEnv(case.system_config, reward_config=case.reward_config)
    )
    episode_rngs, action_rngs = derive_episode_streams(
        case.base_seed, len(case.traces), rng_family="philox"
    )
    trajectories = [
        collector.collect(
            case.policy,
            trace,
            epsilon=case.epsilon,
            greedy=case.greedy,
            episode_seed=episode_rngs.lane(i),
            action_rng=action_rngs.lane(i),
        )
        for i, trace in enumerate(case.traces)
    ]
    return trajectories, (episode_rngs.state(), action_rngs.state())


def collect_vector_philox(case: FuzzCase):
    """Lockstep batch consuming the whole stream sets vectorized."""
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(case.system_config, case.reward_config)
    )
    episode_rngs, action_rngs = derive_episode_streams(
        case.base_seed, len(case.traces), rng_family="philox"
    )
    trajectories = collector.collect_batch(
        case.policy,
        case.traces,
        epsilon=case.epsilon,
        greedy=case.greedy,
        episode_rngs=episode_rngs,
        action_rngs=action_rngs,
    )
    return trajectories, (episode_rngs.state(), action_rngs.state())


def _assert_philox_equivalent(case, reference, candidate, name: str):
    __tracebackhide__ = True
    trajectories, positions = candidate
    ref_trajectories, ref_positions = reference
    assert len(trajectories) == len(ref_trajectories), f"config {case.index} ({name})"
    for i, (expected, actual) in enumerate(zip(ref_trajectories, trajectories)):
        assert_trajectories_identical(
            expected, actual, f"philox config {case.index} episode {i} ({name})"
        )
    if positions is not None:
        assert positions[0] == ref_positions[0], (
            f"philox config {case.index} ({name}): environment stream cursors diverged"
        )
        assert positions[1] == ref_positions[1], (
            f"philox config {case.index} ({name}): action stream cursors diverged"
        )


@pytest.mark.parametrize("index", range(PHILOX_NUM_CONFIGS))
def test_philox_scalar_vs_vector_bit_identical(index):
    case = make_case(index)
    reference = collect_scalar_philox(case)
    _assert_philox_equivalent(case, reference, collect_vector_philox(case), "vector")


@pytest.mark.parametrize("index", range(PHILOX_NUM_CONFIGS))
def test_philox_vector_vs_parallel_vs_pool_bit_identical(index):
    case = make_case(index)
    reference = collect_vector_philox(case)
    if index % PHILOX_PARALLEL_STRIDE == 0:
        collector = ParallelRolloutCollector(
            case.system_config, case.reward_config, num_workers=2
        )
        parallel = collector.collect(
            case.policy,
            case.traces,
            base_seed=case.base_seed,
            epsilon=case.epsilon,
            greedy=case.greedy,
            rng_family="philox",
        )
        _assert_philox_equivalent(case, reference, (parallel, None), "parallel")
    with PersistentWorkerPool(
        case.system_config, case.reward_config, num_workers=2
    ) as pool:
        pooled = pool.collect(
            case.policy,
            case.traces,
            base_seed=case.base_seed,
            epsilon=case.epsilon,
            greedy=case.greedy,
            rng_family="philox",
        )
    _assert_philox_equivalent(case, reference, (pooled, None), "pool")


# ----------------------------------------------------------------------
# Fused native kernel vs pure-numpy forward
# ----------------------------------------------------------------------
# The native kernel's contract is allclose-level agreement (fused
# fast-math transcendentals reassociate), not bit identity; the packed
# pure-numpy path's contract IS bit identity whenever its stability
# probe passes — both pinned here over randomized shapes including B=1.

native_only = pytest.mark.skipif(
    not native_available(), reason=f"native kernel unavailable: {native_unavailable_reason()}"
)


@native_only
@pytest.mark.parametrize("config_index", range(12))
def test_native_gru_kernel_matches_numpy(config_index):
    rng = np.random.default_rng(77_000 + config_index)
    input_size = int(rng.integers(1, 48))
    hidden = int(rng.choice([1, 3, 4, 6, 8, 12, 16, 17, 32, 128]))
    batch = int(rng.choice([1, 2, 5, 16]))
    seed = int(rng.integers(1 << 31))
    reference = GRUCell(input_size, hidden, rng=seed)
    native = GRUCell(input_size, hidden, rng=seed, kernel="native")
    for _ in range(3):
        x = rng.standard_normal((batch, input_size))
        h = rng.standard_normal((batch, hidden))
        np.testing.assert_allclose(
            native.forward_np(x, h),
            reference.forward_np(x, h),
            rtol=1e-12,
            atol=1e-12,
        )
    # Weight mutation through the optimizer idiom must repack.
    for parameter in native.parameters():
        parameter.data -= 0.01 * np.ones_like(parameter.data)
    for parameter in reference.parameters():
        parameter.data -= 0.01 * np.ones_like(parameter.data)
    x = rng.standard_normal((batch, input_size))
    h = rng.standard_normal((batch, hidden))
    np.testing.assert_allclose(
        native.forward_np(x, h), reference.forward_np(x, h), rtol=1e-12, atol=1e-12
    )


@native_only
@pytest.mark.parametrize("config_index", range(6))
def test_native_policy_kernel_matches_numpy(config_index):
    rng = np.random.default_rng(78_000 + config_index)
    hidden = int(rng.choice([4, 12, 16, 128]))
    batch = int(rng.choice([1, 3, 16]))
    seed = int(rng.integers(1 << 31))
    reference = RecurrentPolicyValueNet(PolicyConfig(hidden_size=hidden), rng=seed)
    native = RecurrentPolicyValueNet(
        PolicyConfig(hidden_size=hidden, kernel="native"), rng=seed
    )
    native.load_state_dict(reference.state_dict())
    observations = rng.standard_normal((batch, reference.config.observation_dim))
    hiddens = rng.standard_normal((batch, hidden))
    ref_out = reference.act_batch(observations, hiddens, greedy=True)
    nat_out = native.act_batch(observations, hiddens, greedy=True)
    np.testing.assert_array_equal(ref_out.actions, nat_out.actions)
    np.testing.assert_allclose(ref_out.values, nat_out.values, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(
        ref_out.hidden_states, nat_out.hidden_states, rtol=1e-10, atol=1e-12
    )
    np.testing.assert_allclose(
        ref_out.log_probs, nat_out.log_probs, rtol=1e-10, atol=1e-12
    )


@native_only
@pytest.mark.parametrize("config_index", range(8))
def test_native_philox_idle_sampler_bit_identical(config_index):
    """The fused C idle sampler vs the pure-numpy reference, bitwise.

    Unlike the GRU kernel (allclose budget), the Philox sampler's
    contract is exact: golden traces are pinned on the numpy streams and
    native availability must not change a single draw or cursor.  The
    end-to-end guard is the scalar-vs-vector philox suite above (scalar
    draws via numpy lanes, vector via the C path when available); this
    pins the entry point directly across count/rate extremes the rollout
    configs may not reach — zero/one-core skips, deep inversions, large
    episode ids and cursors.
    """
    from repro.utils.rng import (
        PhiloxStreams,
        _native_idle_kernel,
        _philox_idle_reference,
    )

    kernel = _native_idle_kernel()
    if kernel is None:
        pytest.skip("native philox sampler unavailable or self-check failed")
    rng = np.random.default_rng(81_000 + config_index)
    lanes = int(rng.integers(1, 24))
    levels = int(rng.integers(1, 5))
    episodes = rng.integers(0, 1 << 40, lanes).astype(np.uint64)
    streams = PhiloxStreams(int(rng.integers(1 << 31)), episodes, "idle-diff")
    streams._cursors[:] = rng.integers(0, 100_000, lanes).astype(np.uint64)
    counts = rng.integers(0, 130, (lanes, levels)).astype(np.int64)
    lam = float(rng.uniform(0.001, 2.0)) * counts
    term = np.exp(-lam)
    expected = _philox_idle_reference(
        streams._episodes, streams._cursors, counts, lam, term,
        streams._round_keys,
    )
    cursors_before = streams._cursors.copy()
    result = streams.idle_poisson(np.arange(lanes), counts, lam, term)
    assert result is not None
    draws, fired = result
    np.testing.assert_array_equal(draws, expected[0])
    assert fired == expected[2]
    np.testing.assert_array_equal(streams._cursors, cursors_before + expected[1])


@pytest.mark.parametrize("config_index", range(10))
def test_packed_numpy_path_is_bitwise_when_probe_stable(config_index):
    """The BLAS-stable width contract behind the packed fast path.

    Whenever the synthetic stability probe declares a (shape, batch)
    class gemm-stable, the column-packed forward must be *bitwise*
    identical to the buffered reference — that is the precondition that
    makes the packed path eligible at all.
    """
    rng = np.random.default_rng(79_000 + config_index)
    input_size = int(rng.integers(7, 40))
    # Gemm-eligible widths only (>= _GEMM_MIN_COLS): narrower cells
    # dispatch to the einsum path, which never packs.  The pool spans
    # probe-stable widths (8/16/128) and known-unstable ones (12/17).
    hidden = int(rng.choice([8, 12, 16, 17, 128]))
    batch = int(rng.choice([2, 4, 16]))
    cell = GRUCell(input_size, hidden, rng=int(rng.integers(1 << 31)))
    packed = cell._packed_np_weights()
    x = rng.standard_normal((batch, input_size))
    h = rng.standard_normal((batch, hidden))
    buffered = cell._forward_np_buffered(x, h, packed)
    if packed.stable_for(batch):
        np.testing.assert_array_equal(cell._forward_np_packed(x, h, packed), buffered)
    # Regardless of probe outcome, the dispatching forward_np must be
    # bitwise identical to the buffered reference (unstable or race-lost
    # shapes must fall back).
    np.testing.assert_array_equal(cell.forward_np(x, h), buffered)


def test_case_generator_covers_the_interesting_axes():
    """The harness only earns its name if the random configs actually vary."""
    cases = [make_case(i) for i in range(NUM_CONFIGS)]
    batch_sizes = {len(case.traces) for case in cases}
    assert {1} < batch_sizes, "need both B=1 and B>1 configs"
    assert any(case.system_config.idle_rate == 0.0 for case in cases)
    assert any(case.system_config.idle_rate > 0.0 for case in cases)
    assert any(case.system_config.min_cores_per_level == 2 for case in cases)
    assert any(case.epsilon > 0.0 for case in cases)
    assert any(case.greedy for case in cases)
    assert any(not case.greedy for case in cases)
    assert len({case.system_config.total_cores for case in cases}) >= 4
    # Episode lengths differ inside at least one batch, so lockstep
    # partial-batch endings (some slots finished, some active) occur.
    assert any(
        len({len(t) for t in case.traces}) > 1
        for case in cases
        if len(case.traces) > 1
    )
