"""Tests for optimisers, gradient clipping and LR schedulers."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.errors import TrainingError
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, LinearDecayLR, StepLR, clip_grad_norm, global_grad_norm


def _quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def _minimize(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimize(SGD([p], lr=0.1), p)) < 1e-3

    def test_momentum_minimizes(self):
        p = _quadratic_param()
        assert abs(_minimize(SGD([p], lr=0.05, momentum=0.9), p)) < 1e-2

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        # Zero loss gradient, only decay applies.
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_momentum(self):
        with pytest.raises(TrainingError):
            SGD([_quadratic_param()], lr=0.1, momentum=1.5)

    def test_empty_parameters_raise(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated: should not crash or change value
        assert p.data[0] == 5.0


class TestAdam:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimize(Adam([p], lr=0.1), p, steps=300)) < 1e-2

    def test_default_lr_matches_paper(self):
        assert Adam([_quadratic_param()]).lr == pytest.approx(3e-4)

    def test_invalid_betas(self):
        with pytest.raises(TrainingError):
            Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_step_count_increments(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.01)
        (p * p).sum().backward()
        opt.step()
        opt.step()
        assert opt.step_count == 2

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        x = rng.random((64, 3))
        true_w = np.array([[1.5], [-2.0], [0.5]])
        y = x @ true_w
        layer = Linear(3, 1, rng=1)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestClipping:
    def test_norm_computation(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        assert global_grad_norm([p]) == pytest.approx(5.0)

    def test_clipping_scales_down(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        returned = clip_grad_norm([p], max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clipping_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)

    def test_none_grads_ignored(self):
        assert global_grad_norm([Parameter(np.zeros(3))]) == 0.0


class TestSchedulers:
    def _opt(self):
        return SGD([_quadratic_param()], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        assert sched.step() == 1.0
        assert sched.step() == 1.0

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        assert sched.step() == 1.0
        assert sched.step() == 0.5
        assert opt.lr == 0.5

    def test_linear_decay(self):
        opt = self._opt()
        sched = LinearDecayLR(opt, total_epochs=10, final_fraction=0.0)
        sched.step()
        assert opt.lr == pytest.approx(0.9)
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_configs(self):
        with pytest.raises(TrainingError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(TrainingError):
            LinearDecayLR(self._opt(), total_epochs=0)
