"""Telemetry must be provably inert.

The instrumentation added in PR 10 (metrics registry + span tracing
through the evaluation engine, rollout collector, serving broker and
fleet driver) observes the hot paths — it may never *perturb* them.
These differential tests run the same seeded workload twice, once with
telemetry fully enabled (default) and once with it disabled via
``telemetry.configure(enabled=False)``, and pin bit-identical outputs:

* the golden-trace ``compare_agents`` evaluation (makespans, rewards,
  migrations — the same numbers ``test_golden_traces.py`` pins),
* a tiny ``SweepRunner`` sweep's per-job content digests,
* a small fleet run's ``LoadReport.deterministic_json()``.

Each stack is constructed *inside* its mode, because components resolve
their instruments at construction time.  The enabled leg additionally
asserts that instrumentation actually fired (non-empty snapshot), so a
regression that silently disables telemetry cannot pass as "inert".
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.agents.default import DefaultPolicy
from repro.agents.greedy import GreedyUtilizationPolicy
from repro.pipeline.evaluation import compare_agents
from repro.pipeline.sweep import SweepRunner, SweepSpec
from repro.utils.serialization import load_json


@pytest.fixture(autouse=True)
def restore_telemetry_defaults():
    """Every test here flips the process defaults; always restore them."""
    yield
    telemetry.configure(enabled=True)


def _set_mode(enabled: bool) -> None:
    telemetry.configure(enabled=enabled)
    assert telemetry.enabled() is enabled


# ----------------------------------------------------------------------
# Golden-trace evaluation
# ----------------------------------------------------------------------
def _evaluation_fingerprint(system_config, real_traces):
    agents = [DefaultPolicy(), GreedyUtilizationPolicy()]
    comparison = compare_agents(
        agents, real_traces, system_config=system_config, episode_seed=0
    )
    return {
        name: {
            "makespans": result.makespans,
            "total_rewards": result.total_rewards,
            "migrations": [e.migrations for e in result.episodes],
        }
        for name, result in comparison.items()
    }


class TestEvaluationInertness:
    def test_golden_evaluation_identical_with_and_without_telemetry(
        self, system_config, real_traces
    ):
        _set_mode(True)
        enabled = _evaluation_fingerprint(system_config, real_traces)
        # The enabled leg must have actually exercised the instruments,
        # otherwise this differential proves nothing.
        snapshot = telemetry.registry().snapshot()
        assert snapshot.value("engine_eval_runs_total") >= 2
        assert snapshot.value("engine_eval_steps_total") > 0
        assert any(
            record["name"] == "engine.evaluate"
            for record in telemetry.tracer().records()
        )

        _set_mode(False)
        disabled = _evaluation_fingerprint(system_config, real_traces)
        # Disabled mode records nothing at all.
        assert telemetry.registry().snapshot().names() == []
        assert telemetry.tracer().records() == []

        assert enabled == disabled
        # Anchor to the repo-wide golden pins: inert under BOTH modes.
        assert enabled["default"]["makespans"] == [36, 32, 27, 27]


# ----------------------------------------------------------------------
# Sweep digests
# ----------------------------------------------------------------------
def _sweep_digests(output_dir):
    spec = SweepSpec(
        name="inertness",
        kind="agents",
        base={"num_traces": 1, "duration": 8, "agents": ["default"]},
        grid={"target_load": [1.0]},
        seeds=[0],
    )
    result = SweepRunner(spec, output_dir=output_dir, num_workers=1).run()
    assert not result.failures
    return {record["name"]: record["digest"] for record in result.records}


class TestSweepInertness:
    def test_sweep_digests_identical_with_and_without_telemetry(self, tmp_path):
        _set_mode(True)
        enabled = _sweep_digests(tmp_path / "enabled")
        _set_mode(False)
        disabled = _sweep_digests(tmp_path / "disabled")

        assert enabled == disabled
        # Beyond the digest map: the result payloads on disk only differ
        # in wall-clock timing fields, never in measured metrics.
        enabled_jobs = sorted((tmp_path / "enabled" / "jobs").glob("*.json"))
        disabled_jobs = sorted((tmp_path / "disabled" / "jobs").glob("*.json"))
        assert [f.name for f in enabled_jobs] == [f.name for f in disabled_jobs]
        for file_a, file_b in zip(enabled_jobs, disabled_jobs):
            record_a, record_b = load_json(file_a), load_json(file_b)
            assert record_a["digest"] == record_b["digest"], file_a.name


# ----------------------------------------------------------------------
# Fleet load report
# ----------------------------------------------------------------------
def _fleet_deterministic_json():
    # Imported lazily so the serving/loadgen stack is built strictly
    # inside the telemetry mode under test.
    import numpy as np

    from repro.env.environment import StorageAllocationEnv
    from repro.env.reward import RewardConfig
    from repro.fsm.machine import FiniteStateMachine
    from repro.loadgen import FleetDriver, FleetSchedule, InProcessTransport, LoadPhase
    from repro.qbn.autoencoder import build_observation_qbn
    from repro.qbn.quantize import code_key
    from repro.serving import CompiledFSMBackend, CompiledFSMPolicy, PolicyServer
    from repro.storage.migration import NUM_ACTIONS, MigrationAction
    from repro.storage.simulator import StorageSystemConfig
    from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator

    env = StorageAllocationEnv(
        StorageSystemConfig(), reward_config=RewardConfig(mode="per_step_penalty"), rng=0
    )
    generator = StandardWorkloadGenerator(env.system_config, GeneratorConfig(), rng=0)
    trace = generator.generate("web_server", duration=16)
    rng = np.random.default_rng(9)
    observation = env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    stream = np.array(rows)

    rng = np.random.default_rng(3)
    qbn = build_observation_qbn(stream.shape[1], latent_dim=6, hidden_dim=16, rng=4)
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = env.observation_encoder.normalize_batch(stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    compiled = CompiledFSMPolicy.compile(fsm, qbn, encoder=env.observation_encoder)

    server = PolicyServer(
        CompiledFSMBackend(compiled),
        env.observation_encoder,
        initial_capacity=128,
        max_batch_size=64,
    )
    schedule = FleetSchedule(
        sessions=32,
        shard_size=16,
        trace_duration=8,
        trace_variants=2,
        phases=[
            LoadPhase(name="warmup", steps=1),
            LoadPhase(name="churn", steps=2, churn_rate=0.2, stale_probes_per_step=2),
        ],
    )
    report = FleetDriver(schedule, InProcessTransport(server), base_seed=42).run()
    return report.deterministic_json()


class TestFleetInertness:
    def test_fleet_report_identical_with_and_without_telemetry(self):
        _set_mode(True)
        enabled = _fleet_deterministic_json()
        assert telemetry.registry().snapshot().value(
            "serving_decisions_total"
        ) > 0
        assert any(
            record["name"] == "fleet.phase"
            for record in telemetry.tracer().records()
        )

        _set_mode(False)
        disabled = _fleet_deterministic_json()
        assert telemetry.registry().snapshot().names() == []

        assert enabled == disabled
