"""Figure 4 — makespan of Default / Handcrafted FSM / GRU DRL / Extracted FSM.

Prints the per-trace makespan table over the evaluation ("real") traces
and the relative reductions the paper reports: every controller vs the
default (no migration), the DRL vs the handcrafted FSM, and the
extracted-FSM-vs-DRL gap.
"""

from __future__ import annotations

from repro.pipeline.experiments import run_figure4


def test_fig4_performance_comparison(benchmark, bench_pipeline_config, bench_pipeline_result):
    result = benchmark.pedantic(
        lambda: run_figure4(
            bench_pipeline_config, pipeline_result=bench_pipeline_result, seed=0
        ),
        iterations=1,
        rounds=1,
    )

    print()
    print(result.render())

    means = result.mean_makespans()
    assert set(means) == {"default", "handcrafted_fsm", "gru_drl", "extracted_fsm"}
    # Shape check from the paper: migrating policies beat the static default.
    assert means["handcrafted_fsm"] < means["default"]
    # All controllers complete every evaluation trace.
    for evaluation in result.results.values():
        assert len(evaluation.makespans) == len(bench_pipeline_result.eval_traces)
