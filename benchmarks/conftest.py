"""Shared fixtures for the benchmark harness.

The paper-figure benchmarks share one scaled-down pipeline run
(session-scoped) so the whole suite finishes in minutes; each benchmark
then measures and prints its own figure from that shared artefact.
"""

from __future__ import annotations

import pytest

from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline


@pytest.fixture(scope="session")
def bench_pipeline_config():
    return small_pipeline_config(
        seed=0,
        standard_epochs=15,
        real_epochs=15,
        hidden_size=48,
        trace_duration=48,
        num_real_traces=16,
        num_eval_traces=10,
    )


@pytest.fixture(scope="session")
def bench_pipeline_result(bench_pipeline_config):
    """One full pipeline run shared by the Figure 4/5/6 benchmarks."""
    return LearningAidedPipeline(bench_pipeline_config).run()
