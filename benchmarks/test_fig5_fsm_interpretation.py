"""Figure 5 — extracted FSM visualisation and fan-in/fan-out statistics.

Prints the state/action table (with per-state utilisation shifts between
fan-in and fan-out observations), the transition counts encoded in the
DOT graph, and whether the most-visited state is a Noop state — the
paper's S0.
"""

from __future__ import annotations

from repro.pipeline.experiments import run_figure5


def test_fig5_fsm_extraction_and_interpretation(
    benchmark, bench_pipeline_config, bench_pipeline_result
):
    result = benchmark.pedantic(
        lambda: run_figure5(bench_pipeline_config, pipeline_result=bench_pipeline_result),
        iterations=1,
        rounds=1,
    )

    print()
    print(result.render())
    print()
    print(result.dot_graph)

    assert result.num_states >= 1
    # Every state's action is one of the seven legal migration actions.
    legal = {"Noop", "N=>K", "N=>R", "K=>N", "K=>R", "R=>N", "R=>K"}
    assert set(result.action_names) <= legal
    # The machine is a usable white-box artefact: DOT output is well formed.
    assert result.dot_graph.startswith("digraph")
