"""Figure 6 — history information preceding an interesting FSM state.

The paper plots the averaged last-10-interval observations before
entering S2 (a state whose action is not the obvious low-to-high
utilisation move) and reads off that write intensity rises while the
NORMAL/(KV+RV) capacity ratio climbs.  This benchmark extracts the same
history window for the analogous state of our extracted FSM and prints
the read-intensity, write-intensity and capacity-ratio series.
"""

from __future__ import annotations

from repro.pipeline.experiments import run_figure6


def test_fig6_state_history_profile(benchmark, bench_pipeline_config, bench_pipeline_result):
    result = benchmark.pedantic(
        lambda: run_figure6(
            bench_pipeline_config, pipeline_result=bench_pipeline_result, window=10
        ),
        iterations=1,
        rounds=1,
    )

    print()
    print(result.render())

    profile = result.profile
    assert profile.window == 10
    assert profile.read_intensity.shape == (10,)
    assert profile.write_intensity.shape == (10,)
    assert profile.capacity_ratio_series.shape == (10,)
