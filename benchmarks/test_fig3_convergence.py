"""Figure 3 — convergence of curriculum learning vs training from scratch.

The paper trains one agent with curriculum learning (1000 epochs on
standard traces + 1000 on real traces) and one from scratch (2000 epochs
on real traces) and shows the curriculum agent converges faster and
better.  This benchmark runs a scaled-down version of both regimes and
prints the two learning curves plus their final smoothed makespans.
"""

from __future__ import annotations

from repro.drl.curriculum import CurriculumConfig
from repro.pipeline.experiments import run_figure3, small_pipeline_config


def test_fig3_convergence(benchmark):
    config = small_pipeline_config(
        seed=1, hidden_size=32, trace_duration=40, num_real_traces=8, num_eval_traces=4
    )
    config.curriculum = CurriculumConfig(standard_epochs=15, real_epochs=15)
    config.bc_pretrain_epochs = 0  # Figure 3 compares the pure A2C regimes.

    result = benchmark.pedantic(
        lambda: run_figure3(config, seed=1), iterations=1, rounds=1
    )

    print()
    print(result.render())
    finals = result.final_makespans()

    # Both regimes must actually have trained for the configured budgets.
    assert len(result.curriculum_history) == config.curriculum.total_epochs
    assert len(result.scratch_history) == config.curriculum.total_epochs
    # Sanity on the reported quantities (the qualitative claim — curriculum
    # converges faster/better — is recorded in EXPERIMENTS.md from a larger run).
    assert finals["curriculum"] > 0 and finals["from_scratch"] > 0
