"""Micro-benchmark: decision throughput + latency through the network front door.

Drives a fixed number of concurrent sessions through the asyncio
:class:`PolicyNetServer` over a unix socket with real framed
:class:`PolicyClient` connections, and reports end-to-end decisions per
second plus the per-request latency percentiles (p50/p95/p99) from the
server-side :class:`LatencyHistogram` — the cost of the socket hop, the
framing, and the time-and-size-triggered micro-batching loop on top of
the in-process broker the other serving benchmark measures.

Also serves one round through an in-process :class:`PolicyServer` on
the same artifact and records the socket/in-process throughput ratio,
so the front-door overhead is one number in the JSON.

Knobs (environment variables):

* ``NET_BENCH_SESSIONS`` — concurrent sessions (default 512).
* ``NET_BENCH_CLIENTS`` — client connections they spread over (default 8).
* ``NET_BENCH_STEPS`` — decisions per session per round (default 6).
* ``NET_BENCH_ROUNDS`` — measurement rounds, best-of (default 3).
* ``BENCH_OUTPUT_DIR`` — also write the JSON summary to
  ``$BENCH_OUTPUT_DIR/BENCH_net_serving.json`` for artifact upload /
  the ``benchmarks/results/`` perf trajectory.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.fsm.extraction import ExtractionConfig, FSMExtractor
from repro.qbn.autoencoder import build_hidden_qbn, build_observation_qbn
from repro.qbn.dataset import TransitionDataset
from repro.serving import (
    CompiledFSMBackend,
    CompiledFSMPolicy,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
)
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler

SESSIONS = int(os.environ.get("NET_BENCH_SESSIONS", "512"))
CLIENTS = int(os.environ.get("NET_BENCH_CLIENTS", "8"))
STEPS = int(os.environ.get("NET_BENCH_STEPS", "6"))
ROUNDS = int(os.environ.get("NET_BENCH_ROUNDS", "3"))
HIDDEN_SIZE = 64


def _build_compiled():
    """A realistically-sized compiled FSM from an extraction pass."""
    system_config = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=0)
    suite = generator.generate_suite(duration=48)
    traces = RealTraceSampler(suite, rng=1).sample_many(3)
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=HIDDEN_SIZE), rng=5)
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(
            system_config, RewardConfig(mode="per_step_penalty")
        ),
        rng=0,
    )
    trajectories = collector.collect_batch(policy, traces, greedy=True)
    dataset = TransitionDataset.from_trajectories(trajectories)
    observation_qbn = build_observation_qbn(35, latent_dim=12, rng=7)
    hidden_qbn = build_hidden_qbn(HIDDEN_SIZE, latent_dim=16, rng=8)
    extraction = FSMExtractor(
        observation_qbn, hidden_qbn, ExtractionConfig(min_state_visits=0)
    ).extract(dataset)
    encoder = StorageAllocationEnv(system_config).observation_encoder
    compiled = CompiledFSMPolicy.compile(
        extraction.fsm, observation_qbn, encoder=encoder
    )
    return compiled, encoder, np.asarray(dataset.raw_observations, dtype=float)


async def _measure_round(clients, handles, raw_pool, step_offset):
    """One round: every session decides STEPS times; returns elapsed seconds."""
    per_client = len(handles[0])
    start = time.perf_counter()
    for step in range(STEPS):
        await asyncio.gather(*[
            client.decide(
                handle,
                raw_pool[
                    (c * per_client + s) * 13 + (step_offset + step) * 7
                ],
            )
            for c, client in enumerate(clients)
            for s, handle in enumerate(handles[c])
        ])
    return time.perf_counter() - start


async def _drive(compiled, encoder, raw_pool):
    server = PolicyServer(
        CompiledFSMBackend(compiled),
        encoder,
        initial_capacity=SESSIONS,
        max_batch_size=1024,
    )
    netserver = PolicyNetServer(server, flush_interval=0.001)
    socket_dir = tempfile.mkdtemp(prefix="rbench", dir="/tmp")
    socket_path = os.path.join(socket_dir, "bench.sock")
    await netserver.start(unix_path=socket_path)
    clients = [await PolicyClient.connect_unix(socket_path) for _ in range(CLIENTS)]
    per_client = SESSIONS // CLIENTS
    handles = [await client.open(per_client) for client in clients]
    total = per_client * CLIENTS

    # Pre-wrap the index space so round bodies don't modulo per request.
    raw_pool = raw_pool[np.arange(total * 13 + (ROUNDS + 2) * STEPS * 7 + 1)
                        % len(raw_pool)]

    await _measure_round(clients, handles, raw_pool, 0)  # warm-up
    rates = []
    for round_index in range(ROUNDS):
        elapsed = await _measure_round(
            clients, handles, raw_pool, (round_index + 1) * STEPS
        )
        rates.append(total * STEPS / elapsed)

    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    summary = await netserver.drain()
    assert summary["parked_replies"] == 0 and summary["pending"] == 0
    return rates, stats


def test_bench_net_serving(tmp_path):
    compiled, encoder, raw_pool = _build_compiled()

    socket_rates, stats = asyncio.run(_drive(compiled, encoder, raw_pool))

    # In-process reference on the same artifact: one decide_now batch per
    # step, same request volume, no socket / framing / event loop.
    reference = PolicyServer(
        CompiledFSMBackend(compiled), encoder, initial_capacity=SESSIONS
    )
    session_ids = reference.open_sessions(SESSIONS)
    batches = [
        np.ascontiguousarray(
            raw_pool[(np.arange(SESSIONS) * 13 + step * 7) % len(raw_pool)]
        )
        for step in range(STEPS)
    ]
    reference.decide_now(session_ids, batches[0])  # warm-up
    inprocess_rates = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for batch in batches:
            reference.decide_now(session_ids, batch)
        inprocess_rates.append(
            SESSIONS * STEPS / (time.perf_counter() - start)
        )

    best_socket = max(socket_rates)
    best_inprocess = max(inprocess_rates)
    latency = stats["latency"]
    summary = {
        "benchmark": "net_serving",
        "sessions": SESSIONS,
        "clients": CLIENTS,
        "steps_per_round": STEPS,
        "rounds": ROUNDS,
        "fsm_states": compiled.num_states,
        "socket_decisions_per_s": round(best_socket, 1),
        "inprocess_decisions_per_s": round(best_inprocess, 1),
        "socket_overhead_factor": round(best_inprocess / best_socket, 2),
        "socket_rates": [round(r, 1) for r in socket_rates],
        "latency_p50_ms": latency["p50_ms"],
        "latency_p95_ms": latency["p95_ms"],
        "latency_p99_ms": latency["p99_ms"],
        "latency_max_ms": latency["max_ms"],
        "batches": stats["batches"],
        "mean_batch_size": stats["mean_batch_size"],
    }
    print()
    print(json.dumps(summary, indent=2))
    (tmp_path / "net_serving.json").write_text(json.dumps(summary, indent=2))
    output_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if output_dir:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "BENCH_net_serving.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )

    assert stats["decisions"] == SESSIONS * STEPS * (ROUNDS + 1)
    assert stats["failed"] == 0
    assert latency["p99_ms"] > 0
