"""CI regression guard for the evaluation-engine benchmark.

Compares the JSON emitted by ``test_bench_eval_engine.py`` against a
committed baseline (``benchmarks/results/BENCH_eval_engine_*.json``) and
fails when the compiled-engine evaluation throughput regressed by more
than the threshold.

Raw decisions/sec are not comparable across machines, so the comparison
is **machine-normalised**: the current compiled-engine rate is rescaled
by the ratio of the baseline's sequential-interpreted rate to the current
one — the sequential reference harness acts as the per-run hardware
calibration — which makes the check equivalent to comparing the
compiled-vs-sequential speedups.

Cross-configuration comparisons are refused outright: the script exits
with an error when the two JSONs disagree on the measured backend pair,
inference kernel, rng stream family, trace count or suite duration —
those are configuration changes, not perf signals.

Usage::

    python benchmarks/check_eval_engine_regression.py \
        --current bench-artifacts/BENCH_eval_engine.json \
        --baseline benchmarks/results/BENCH_eval_engine_pr8.json

The threshold (default 0.30 = fail on >30% regression) can be overridden
with ``--threshold`` or the ``BENCH_REGRESSION_THRESHOLD`` environment
variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _rates(payload: dict) -> tuple:
    """(sequential_interpreted, compiled_engine) decisions/sec."""
    try:
        return (
            float(payload["sequential_interpreted_decisions_per_s"]),
            float(payload["compiled_engine_decisions_per_s"]),
        )
    except KeyError:
        raise SystemExit(f"unrecognised benchmark JSON shape: {sorted(payload)}")


def _config_stamp(payload: dict) -> tuple:
    """(backend, baseline_backend, kernel, rng_family, traces, duration)."""
    return (
        str(payload.get("backend", "compiled_fsm")),
        str(payload.get("baseline_backend", "sequential_interpreted")),
        str(payload.get("kernel", "numpy")),
        str(payload.get("rng_family", "legacy")),
        int(payload.get("traces", 0)),
        int(payload.get("duration", 0)),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, type=Path,
                        help="JSON emitted by the benchmark run under test")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed baseline JSON to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30")),
        help="maximum tolerated fractional regression (default 0.30, "
             "env BENCH_REGRESSION_THRESHOLD)",
    )
    parser.add_argument(
        "--kernel", default=None,
        help="assert the current run was measured with this inference "
             "kernel (numpy|native)")
    parser.add_argument(
        "--rng-family", default=None,
        help="assert the current run was measured with this rng stream "
             "family (legacy|philox)")
    args = parser.parse_args(argv)

    base_payload = _load(args.baseline)
    current_payload = _load(args.current)
    base_sequential, base_compiled = _rates(base_payload)
    current_sequential, current_compiled = _rates(current_payload)
    if min(base_sequential, base_compiled, current_sequential, current_compiled) <= 0:
        raise SystemExit("benchmark rates must be positive")

    base_config = _config_stamp(base_payload)
    current_config = _config_stamp(current_payload)
    if current_config[:2] != base_config[:2]:
        # Comparing, say, a GRU-engine run against a compiled-FSM
        # baseline would measure a backend swap, not a regression.
        raise SystemExit(
            f"backend mismatch: current run measured "
            f"{current_config[0]!r} vs {current_config[1]!r} but the "
            f"baseline recorded {base_config[0]!r} vs {base_config[1]!r}; "
            f"only same-backend-pair runs are comparable"
        )
    if args.kernel is not None and current_config[2] != args.kernel:
        raise SystemExit(
            f"kernel mismatch: expected the current run to use "
            f"kernel={args.kernel!r} but it was recorded with "
            f"kernel={current_config[2]!r}"
        )
    if args.rng_family is not None and current_config[3] != args.rng_family:
        raise SystemExit(
            f"rng family mismatch: expected the current run to use "
            f"rng_family={args.rng_family!r} but it was recorded with "
            f"rng_family={current_config[3]!r}"
        )
    if base_config[2:4] != current_config[2:4]:
        raise SystemExit(
            f"configuration mismatch: current run was measured with "
            f"(kernel, rng_family)={current_config[2:4]} but the baseline "
            f"was recorded with {base_config[2:4]}; rerun with "
            f"EVAL_BENCH_KERNEL={base_config[2]} "
            f"EVAL_BENCH_RNG_FAMILY={base_config[3]} (or switch baselines)"
        )
    if base_config[4:] != current_config[4:]:
        # The step/decide cost ratio shifts with trace count and length,
        # so different evaluation sets flag phantom regressions.
        raise SystemExit(
            f"evaluation set mismatch: current run used "
            f"(traces, duration)={current_config[4:]} but the baseline was "
            f"recorded at {base_config[4:]}; rerun the benchmark with "
            f"EVAL_BENCH_DURATION={base_config[5]} (or switch baselines)"
        )

    calibration = base_sequential / current_sequential
    normalised_compiled = current_compiled * calibration
    ratio = normalised_compiled / base_compiled
    # Equivalent formulation: speedup_now / speedup_baseline.
    print(f"baseline:   sequential {base_sequential:10.1f}  compiled {base_compiled:10.1f}  "
          f"speedup {base_compiled / base_sequential:.2f}")
    print(f"current:    sequential {current_sequential:10.1f}  compiled {current_compiled:10.1f}  "
          f"speedup {current_compiled / current_sequential:.2f}")
    print(f"normalised: compiled {normalised_compiled:10.1f} "
          f"(hardware calibration x{calibration:.3f})")
    print(f"ratio vs baseline: {ratio:.3f}  (fail below {1.0 - args.threshold:.3f})")

    if ratio < 1.0 - args.threshold:
        print(
            f"FAIL: compiled-engine evaluation throughput regressed by "
            f"{(1.0 - ratio) * 100:.1f}% (> {args.threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("OK: evaluation-engine throughput within the regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
