"""Baseline comparison (§4.3.2 text claim) and design-choice ablations.

* ``test_handcrafted_vs_default`` measures the handcrafted FSM's makespan
  reduction over the no-migration default (the paper quotes ~20% from its
  UAT environment).
* The ablation benchmarks quantify the simulator design choices called
  out in DESIGN.md: migration penalty, cache-miss rate, and the polling
  (no work stealing) dispatcher vs an idealised proportional dispatcher.
"""

from __future__ import annotations

import numpy as np

from repro.agents import DefaultPolicy, GreedyUtilizationPolicy, HandcraftedFSMPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.pipeline.evaluation import compare_agents, comparison_table, relative_reduction
from repro.pipeline.experiments import run_baseline_comparison
from repro.storage.simulator import StorageSystemConfig
from repro.utils.tables import format_table
from repro.workloads import GeneratorConfig, RealTraceSampler, StandardWorkloadGenerator


def _real_traces(config, count=8, seed=0):
    generator = StandardWorkloadGenerator(config, GeneratorConfig(), rng=seed)
    suite = generator.generate_suite(duration=48, rng=seed + 1)
    return RealTraceSampler(suite, rng=seed + 2).sample_many(count, rng=seed + 3)


def test_handcrafted_vs_default(benchmark):
    result = benchmark.pedantic(
        lambda: run_baseline_comparison(num_traces=10, seed=0), iterations=1, rounds=1
    )
    print()
    print(
        f"default mean makespan      : {result['default_mean']:.1f}\n"
        f"handcrafted mean makespan  : {result['handcrafted_mean']:.1f}\n"
        f"handcrafted reduction      : {100 * result['handcrafted_reduction']:.1f}% "
        "(paper UAT claim: ~20%)"
    )
    assert result["handcrafted_reduction"] > 0.0


def test_ablation_expert_baselines(benchmark):
    config = StorageSystemConfig()
    traces = _real_traces(config, count=8, seed=1)
    agents = [
        DefaultPolicy(),
        HandcraftedFSMPolicy(),
        GreedyUtilizationPolicy(),
        ProportionalAllocationPolicy(config),
    ]
    results = benchmark.pedantic(
        lambda: compare_agents(agents, traces, system_config=config, episode_seed=1),
        iterations=1,
        rounds=1,
    )
    print()
    print(comparison_table(results))
    default = results["default"]
    for name, evaluation in results.items():
        if name != "default":
            print(f"{name}: {100 * relative_reduction(default, evaluation):.1f}% vs default")
    assert results["greedy_utilization"].mean_makespan() <= default.mean_makespan()


def test_ablation_migration_penalty(benchmark):
    """Higher migration penalties erode the benefit of reactive rebalancing."""
    traces = None
    rows = []

    def run():
        nonlocal traces, rows
        rows = []
        for penalty in (0.0, 0.2, 0.5):
            config = StorageSystemConfig(migration_penalty=penalty)
            traces = _real_traces(config, count=5, seed=2)
            results = compare_agents(
                [DefaultPolicy(), GreedyUtilizationPolicy()],
                traces,
                system_config=config,
                episode_seed=2,
            )
            reduction = relative_reduction(results["default"], results["greedy_utilization"])
            rows.append([penalty, results["default"].mean_makespan(),
                         results["greedy_utilization"].mean_makespan(), 100 * reduction])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(["penalty", "default", "greedy", "reduction_%"], rows,
                       title="Migration-penalty ablation"))
    assert rows[0][3] >= rows[-1][3] - 5.0  # benefit should not grow with penalty


def test_ablation_cache_miss_rate(benchmark):
    """Higher cache-miss rates push more work to KV/RV and change the optimum split."""
    rows = []

    def run():
        nonlocal rows
        rows = []
        for miss in (0.1, 0.3, 0.6):
            config = StorageSystemConfig(cache_miss_rate=miss)
            traces = _real_traces(config, count=5, seed=3)
            results = compare_agents(
                [DefaultPolicy(), GreedyUtilizationPolicy()],
                traces,
                system_config=config,
                episode_seed=3,
            )
            rows.append(
                [miss, results["default"].mean_makespan(), results["greedy_utilization"].mean_makespan()]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(["miss_rate", "default", "greedy"], rows, title="Cache-miss ablation"))
    assert len(rows) == 3


def test_ablation_dispatcher(benchmark):
    """Polling (no work stealing) vs an idealised proportional dispatcher."""
    rows = []

    def run():
        nonlocal rows
        rows = []
        for dispatcher in ("polling", "proportional"):
            config = StorageSystemConfig(dispatcher=dispatcher)
            traces = _real_traces(config, count=5, seed=4)
            results = compare_agents(
                [DefaultPolicy(), GreedyUtilizationPolicy()],
                traces,
                system_config=config,
                episode_seed=4,
            )
            rows.append(
                [dispatcher, results["default"].mean_makespan(),
                 results["greedy_utilization"].mean_makespan()]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(["dispatcher", "default", "greedy"], rows, title="Dispatcher ablation"))
    # The idealised dispatcher can only help (lower or equal makespan).
    assert rows[1][1] <= rows[0][1] + 1e-9


def test_microbench_simulator_throughput(benchmark):
    """Raw simulator stepping rate (intervals simulated per benchmark run)."""
    config = StorageSystemConfig()
    traces = _real_traces(config, count=2, seed=5)

    from repro.storage.simulator import StorageSimulator

    def run():
        sim = StorageSimulator(config, rng=0)
        total = 0
        for trace in traces:
            metrics = sim.run(trace, lambda s: 0, rng=0)
            total += metrics.makespan
        return total

    total = benchmark(run)
    assert total >= sum(len(t) for t in traces)


def test_microbench_gru_step(benchmark):
    """Single GRU policy step latency (inference path used by the controller)."""
    from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet

    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=128), rng=0)
    observation = np.random.default_rng(0).random(policy.config.observation_dim)
    hidden = policy.initial_state().numpy()

    def step():
        return policy.act(observation, hidden, rng=0).action

    action = benchmark(step)
    assert 0 <= action < 7
