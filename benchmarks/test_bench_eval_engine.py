"""Micro-benchmark: FSM-in-the-loop evaluation through the inference engine.

Measures decisions/second for the whole closed loop — simulator step plus
policy decision every interval — when a 12-trace evaluation set runs

* through the :class:`~repro.engine.evaluation.EvaluationEngine` on the
  compiled-FSM dense tables (one lockstep batch, the PR 8 path),
* through the engine with the interpreted agent lifted per-slot
  (``AgentBatchBackend``, same lockstep batch, scalar ``act`` per slot),
* through the engine on the batched GRU forwards, and
* through the sequential reference harness
  (:func:`~repro.pipeline.evaluation.evaluate_agent` with the interpreted
  ``FSMPolicyAgent``) — the status-quo path the engine replaces and the
  baseline of the headline speedup.

The bench asserts all FSM paths are **bit-identical** (same makespans,
same total rewards, exact float equality) before it reports any rate: a
faster evaluation that answers differently is not an optimisation.

Knobs (environment variables):

* ``EVAL_BENCH_DURATION`` — workload-suite duration in hours per trace
  (default 48; CI smoke runs shorter).
* ``EVAL_BENCH_ROUNDS`` — measurement rounds, best-of (default 3).
* ``EVAL_BENCH_MIN_SPEEDUP`` — hard assertion floor for compiled-engine
  vs sequential-interpreted throughput (default 2.0; the headline number
  lives in the JSON, shared CI workers are too noisy for it).
* ``EVAL_BENCH_KERNEL`` — inference kernel for the GRU policy (``numpy``
  default, ``native`` for the fused C micro-kernel); stamped into the
  JSON so regression checks refuse cross-kernel comparisons.
* ``EVAL_BENCH_RNG_FAMILY`` — stamped alongside the kernel (evaluation
  itself is greedy/deterministic, the stamp keeps the perf trajectory
  comparable with the rollout benchmarks).
* ``BENCH_OUTPUT_DIR`` — also write the JSON summary to
  ``$BENCH_OUTPUT_DIR/BENCH_eval_engine.json`` for artifact upload / the
  ``benchmarks/results/`` perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    GRUPolicyBackend,
)
from repro.engine.evaluation import EvaluationEngine
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.fsm.agent import FSMPolicyAgent
from repro.fsm.extraction import ExtractionConfig, FSMExtractor
from repro.pipeline.evaluation import evaluate_agent
from repro.qbn.autoencoder import build_hidden_qbn, build_observation_qbn
from repro.qbn.dataset import TransitionDataset
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler

DURATION = int(os.environ.get("EVAL_BENCH_DURATION", "48"))
ROUNDS = int(os.environ.get("EVAL_BENCH_ROUNDS", "3"))
MIN_ASSERTED_SPEEDUP = float(os.environ.get("EVAL_BENCH_MIN_SPEEDUP", "2.0"))
KERNEL = os.environ.get("EVAL_BENCH_KERNEL", "numpy")
RNG_FAMILY = os.environ.get("EVAL_BENCH_RNG_FAMILY", "legacy")
HIDDEN_SIZE = 128


def _best_of(measure, rounds: int) -> tuple:
    """Best decisions/s over ``rounds`` runs (after one warm-up run)."""
    measure()  # warm-up: BLAS init, lazy buffers, allocator steady state
    best_rate, result = 0.0, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = measure()
        elapsed = time.perf_counter() - start
        best_rate = max(best_rate, sum(result.makespans) / elapsed)
    return best_rate, result


def test_bench_eval_engine(tmp_path):
    system_config = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=0)
    suite = generator.generate_suite(duration=DURATION)
    eval_traces = list(suite.values())
    rollout_traces = RealTraceSampler(suite, rng=1).sample_many(4)
    policy = RecurrentPolicyValueNet(
        PolicyConfig(hidden_size=HIDDEN_SIZE, kernel=KERNEL), rng=5
    )

    # Same artifact chain as the serving benchmark: greedy batched
    # rollouts -> transition dataset -> QBNs -> extracted FSM.
    reward_config = RewardConfig(mode="per_step_penalty")
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(system_config, reward_config), rng=0
    )
    trajectories = collector.collect_batch(policy, rollout_traces, greedy=True)
    dataset = TransitionDataset.from_trajectories(trajectories)
    observation_qbn = build_observation_qbn(35, latent_dim=12, rng=7)
    hidden_qbn = build_hidden_qbn(HIDDEN_SIZE, latent_dim=16, rng=8)
    extraction = FSMExtractor(
        observation_qbn, hidden_qbn, ExtractionConfig(min_state_visits=0)
    ).extract(dataset)

    encoder = StorageAllocationEnv(system_config).observation_encoder
    agent = FSMPolicyAgent.from_extraction(extraction, encoder, observation_qbn)
    assert agent.compiled_routable()

    engine = EvaluationEngine(system_config, reward_config)
    compiled_backend = CompiledFSMBackend(agent.compile())
    interpreted_backend = AgentBatchBackend.from_agent(agent, engine.encoder)
    gru_backend = GRUPolicyBackend(policy)

    compiled_rate, compiled_result = _best_of(
        lambda: engine.evaluate(compiled_backend, eval_traces, episode_seed=0),
        ROUNDS,
    )
    interpreted_rate, interpreted_result = _best_of(
        lambda: engine.evaluate(interpreted_backend, eval_traces, episode_seed=0),
        ROUNDS,
    )
    gru_rate, _ = _best_of(
        lambda: engine.evaluate(gru_backend, eval_traces, episode_seed=0),
        ROUNDS,
    )
    sequential_rate, sequential_result = _best_of(
        lambda: evaluate_agent(
            agent, eval_traces, reward_config=reward_config, episode_seed=0
        ),
        ROUNDS,
    )

    # Identity first, rates second: every FSM path must answer the same.
    assert compiled_result.trace_names == sequential_result.trace_names
    assert compiled_result.makespans == sequential_result.makespans
    assert compiled_result.total_rewards == sequential_result.total_rewards
    assert interpreted_result.makespans == sequential_result.makespans
    assert interpreted_result.total_rewards == sequential_result.total_rewards

    compiled = compiled_backend.policy
    summary = {
        "benchmark": "eval_engine",
        "backend": "compiled_fsm",
        "baseline_backend": "sequential_interpreted",
        "kernel": KERNEL,
        "rng_family": RNG_FAMILY,
        "traces": len(eval_traces),
        "duration": DURATION,
        "rounds": ROUNDS,
        "hidden_size": HIDDEN_SIZE,
        "fsm_states": compiled.num_states,
        "fsm_observations": compiled.num_observations,
        "decisions": int(sum(sequential_result.makespans)),
        "compiled_engine_decisions_per_s": round(compiled_rate, 1),
        "engine_interpreted_decisions_per_s": round(interpreted_rate, 1),
        "gru_engine_decisions_per_s": round(gru_rate, 1),
        "sequential_interpreted_decisions_per_s": round(sequential_rate, 1),
        "speedup": round(compiled_rate / sequential_rate, 2),
        "engine_lift_speedup": round(interpreted_rate / sequential_rate, 2),
        "compiled_vs_engine_interpreted": round(compiled_rate / interpreted_rate, 2),
        "bit_identical": True,
    }
    print()
    print(json.dumps(summary, indent=2))
    (tmp_path / "eval_engine.json").write_text(json.dumps(summary, indent=2))
    output_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if output_dir:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        suffix = (
            "" if (KERNEL, RNG_FAMILY) == ("numpy", "legacy")
            else f"_{KERNEL}_{RNG_FAMILY}"
        )
        (target / f"BENCH_eval_engine{suffix}.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )

    assert compiled_rate / sequential_rate >= MIN_ASSERTED_SPEEDUP, summary
