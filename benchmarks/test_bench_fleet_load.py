"""Benchmark: fleet-scale sim-to-serve load through the decision broker.

Closes the simulator→server loop at fleet scale: ``FLEET_BENCH_SESSIONS``
simulated storage nodes (B-major vector-simulator shards) hold
``(slot, generation)`` sessions on one micro-batching
:class:`PolicyServer` and submit a decision request per simulated
interval through a fixed three-phase schedule (steady, churn storm with
stale probes, correlated flash crowd).  Reports sustained end-to-end
decisions/s and per-phase latency percentiles, runs the whole fleet
**twice** and asserts the two reports' deterministic sections are
byte-identical, and measures a smaller fleet through the socket front
door for the networked rate.

The JSON is stamped with ``kernel`` / ``rng_family`` / ``sessions`` /
``schedule_digest`` so ``check_fleet_load_regression.py`` refuses to
compare runs with mismatched configurations, and carries a
``calibration_decisions_per_s`` (raw ``decide_now`` rate on this
machine) used to normalise cross-machine comparisons.

Knobs (environment variables):

* ``FLEET_BENCH_SESSIONS`` — fleet size for the in-process run
  (default 100000).
* ``FLEET_BENCH_SHARD`` — sessions per simulator shard (default 8192).
* ``FLEET_BENCH_SOCKET_SESSIONS`` — fleet size for the socket run
  (default 512; 0 skips the socket section).
* ``FLEET_BENCH_CLIENTS`` — socket client connections (default 4).
* ``BENCH_OUTPUT_DIR`` — also write ``BENCH_fleet_load.json`` there.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.fsm.machine import FiniteStateMachine
from repro.loadgen import (
    FleetDriver,
    FleetSchedule,
    InProcessTransport,
    LoadPhase,
    SocketTransport,
)
from repro.qbn.autoencoder import build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import (
    CompiledFSMBackend,
    CompiledFSMPolicy,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
)
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator

SESSIONS = int(os.environ.get("FLEET_BENCH_SESSIONS", "100000"))
SHARD = int(os.environ.get("FLEET_BENCH_SHARD", "8192"))
SOCKET_SESSIONS = int(os.environ.get("FLEET_BENCH_SOCKET_SESSIONS", "512"))
CLIENTS = int(os.environ.get("FLEET_BENCH_CLIENTS", "4"))
SEED = 42


def bench_schedule(sessions: int, shard_size: int) -> FleetSchedule:
    """The fixed bench schedule; its digest stamps the JSON."""
    return FleetSchedule(
        sessions=sessions,
        shard_size=shard_size,
        trace_duration=10,
        trace_variants=2,
        phases=[
            LoadPhase(name="steady", steps=2),
            LoadPhase(
                name="churn_storm", steps=2, churn_rate=0.01, stale_probes_per_step=4
            ),
            LoadPhase(
                name="flash_crowd",
                steps=2,
                burst_multiplier=2,
                burst_tenant_fraction=0.2,
            ),
        ],
    )


def _build_compiled():
    """Handmade compiled FSM over the real observation space (fast build)."""
    env = StorageAllocationEnv(
        StorageSystemConfig(),
        reward_config=RewardConfig(mode="per_step_penalty"),
        rng=SEED,
    )
    generator = StandardWorkloadGenerator(
        env.system_config, GeneratorConfig(), rng=SEED
    )
    trace = generator.generate("web_server", duration=24)
    rng = np.random.default_rng(SEED + 9)
    observation = env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    stream = np.array(rows)
    qbn = build_observation_qbn(
        stream.shape[1], latent_dim=6, hidden_dim=16, rng=SEED + 4
    )
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = env.observation_encoder.normalize_batch(stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    compiled = CompiledFSMPolicy.compile(fsm, qbn, encoder=env.observation_encoder)
    return compiled, env.observation_encoder, stream


def _make_server(compiled, encoder, capacity: int) -> PolicyServer:
    return PolicyServer(
        CompiledFSMBackend(compiled),
        encoder,
        initial_capacity=capacity,
        max_batch_size=4096,
    )


def _calibrate(compiled, encoder, stream) -> float:
    """Raw broker decide_now rate — the machine-normalisation anchor."""
    server = _make_server(compiled, encoder, 512)
    ids = server.open_sessions(512)
    batch = np.ascontiguousarray(stream[np.arange(512) % len(stream)])
    server.decide_now(ids, batch)  # warm-up
    rounds, decisions = 5, 0
    start = time.perf_counter()
    for _ in range(rounds):
        server.decide_now(ids, batch)
        decisions += 512
    return decisions / (time.perf_counter() - start)


def _run_fleet(compiled, encoder):
    schedule = bench_schedule(SESSIONS, SHARD)
    server = _make_server(compiled, encoder, SESSIONS)
    driver = FleetDriver(schedule, InProcessTransport(server), base_seed=SEED)
    return driver.run(), schedule


def _run_socket_fleet(compiled, encoder):
    async def scenario():
        schedule = bench_schedule(SOCKET_SESSIONS, min(SOCKET_SESSIONS, SHARD))
        server = _make_server(compiled, encoder, SOCKET_SESSIONS)
        netserver = PolicyNetServer(server, flush_interval=0.001, max_inflight=64)
        socket_dir = tempfile.mkdtemp(prefix="rfbench", dir="/tmp")
        socket_path = os.path.join(socket_dir, "fleet.sock")
        try:
            await netserver.start(unix_path=socket_path)
            clients = [
                await PolicyClient.connect_unix(socket_path) for _ in range(CLIENTS)
            ]
            driver = FleetDriver(
                schedule,
                SocketTransport(clients, per_connection_window=32),
                base_seed=SEED,
            )
            report = await driver.run_async()
            for client in clients:
                await client.close()
            summary = await netserver.drain()
            assert summary["pending"] == 0 and summary["parked_replies"] == 0
            assert summary["busy_rejections"] == 0
            return report
        finally:
            shutil.rmtree(socket_dir, ignore_errors=True)

    return asyncio.run(scenario())


def test_bench_fleet_load(tmp_path):
    compiled, encoder, stream = _build_compiled()
    calibration = _calibrate(compiled, encoder, stream)

    first, schedule = _run_fleet(compiled, encoder)
    second, _ = _run_fleet(compiled, encoder)
    # The headline guarantee: the whole fleet run is byte-deterministic.
    assert first.deterministic_json() == second.deterministic_json()
    assert first.digest == second.digest

    payload = first.as_dict()
    det, timing = payload["deterministic"], payload["timing"]
    assert det["occupancy_timeline"][-1] == SESSIONS  # fleet held end to end
    errors = sum(int(p["errors"]) for p in det["phases"])
    assert errors == 0

    summary = {
        "benchmark": "fleet_load",
        "kernel": "numpy",
        "rng_family": "philox",
        "sessions": SESSIONS,
        "shard_size": SHARD,
        "schedule_digest": schedule.digest(),
        "base_seed": SEED,
        "calibration_decisions_per_s": round(calibration, 1),
        "decisions_total": det["decisions_total"],
        "probe_decisions_total": det["probe_decisions_total"],
        "churn_cycles_total": det["churn_cycles_total"],
        "stale_rejections_total": det["stale_rejections_total"],
        "decisions_per_s": timing["decisions_per_sec"],
        "latency_p50_ms": timing["latency"]["p50_ms"],
        "latency_p95_ms": timing["latency"]["p95_ms"],
        "latency_p99_ms": timing["latency"]["p99_ms"],
        "elapsed_seconds": timing["elapsed_seconds"],
        "deterministic_digest": det["digest"],
    }
    if SOCKET_SESSIONS > 0:
        socket_report = _run_socket_fleet(compiled, encoder)
        socket_payload = socket_report.as_dict()
        summary["socket_sessions"] = SOCKET_SESSIONS
        summary["socket_decisions_per_s"] = socket_payload["timing"][
            "decisions_per_sec"
        ]
        summary["socket_latency_p99_ms"] = socket_payload["timing"]["latency"][
            "p99_ms"
        ]
        summary["socket_deterministic_digest"] = socket_payload["deterministic"][
            "digest"
        ]

    print()
    print(json.dumps(summary, indent=2))
    (tmp_path / "fleet_load.json").write_text(json.dumps(summary, indent=2))
    output_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if output_dir:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "BENCH_fleet_load.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )

    assert summary["decisions_per_s"] and summary["decisions_per_s"] > 0
    assert summary["latency_p99_ms"] > 0
