"""CI regression guard for the fleet-scale load benchmark.

Compares the JSON emitted by ``test_bench_fleet_load.py`` against a
committed baseline (``benchmarks/results/BENCH_fleet_load_*.json``) and
fails when the sustained end-to-end decisions/s regressed by more than
the threshold.

Raw rates are not comparable across machines, so the comparison is
**machine-normalised**: the current fleet rate is rescaled by the ratio
of the baseline's raw ``decide_now`` calibration rate to the current
one — the broker's direct path acts as the per-run hardware
calibration, making the check equivalent to comparing each run's
fleet-loop overhead on top of raw decision serving.

Runs measured under different configurations are **refused**, not
compared: fleet size, schedule digest, and the ``kernel`` /
``rng_family`` stamps must all match between current and baseline.

Usage::

    python benchmarks/check_fleet_load_regression.py \
        --current bench-artifacts/BENCH_fleet_load.json \
        --baseline benchmarks/results/BENCH_fleet_load_pr9.json

The threshold (default 0.30 = fail on >30% regression) can be
overridden with ``--threshold`` or ``BENCH_REGRESSION_THRESHOLD``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_STAMPS = ("sessions", "schedule_digest", "kernel", "rng_family")


def _load(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30")),
    )
    args = parser.parse_args()

    current = _load(args.current)
    baseline = _load(args.baseline)

    for stamp in _STAMPS:
        current_value = current.get(stamp)
        baseline_value = baseline.get(stamp)
        if current_value != baseline_value:
            raise SystemExit(
                f"configuration mismatch: current run has "
                f"{stamp}={current_value!r} but the baseline was measured "
                f"with {stamp}={baseline_value!r}; refusing to compare "
                "(re-run the benchmark with the baseline's configuration "
                "or commit a new baseline)"
            )

    current_rate = float(current["decisions_per_s"])
    baseline_rate = float(baseline["decisions_per_s"])
    current_calibration = float(current["calibration_decisions_per_s"])
    baseline_calibration = float(baseline["calibration_decisions_per_s"])

    machine_factor = baseline_calibration / current_calibration
    normalised_rate = current_rate * machine_factor
    change = (normalised_rate - baseline_rate) / baseline_rate

    print(f"baseline fleet rate:    {baseline_rate:12.1f} decisions/s")
    print(f"current  fleet rate:    {current_rate:12.1f} decisions/s (raw)")
    print(
        f"machine calibration:    {current_calibration:12.1f} vs "
        f"{baseline_calibration:.1f} decide_now/s (factor {machine_factor:.3f})"
    )
    print(f"normalised fleet rate:  {normalised_rate:12.1f} decisions/s")
    print(f"change vs baseline:     {change:+12.1%} (threshold -{args.threshold:.0%})")

    if change < -args.threshold:
        print("FAIL: fleet load throughput regressed past the threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
