"""Micro-benchmark: online decision throughput of the serving backends.

Drives the same synthetic request stream at a fixed number of concurrent
sessions through (a) the compiled-FSM fast path and (b) the full GRU
policy backend, and reports decisions/second for both — the deployment
claim of the paper in one artefact: the extracted machine serves an
order of magnitude faster than the network it explains, and (via a
short shadow-mode pass) this is how closely it tracks it.

The headline rates compare the **decision backends** on identical
pre-assembled (raw, normalised) batches with per-session state resident
in their session tables — engine vs engine, nothing else differing.
The JSON also records ``server_*`` rates for the same streams served
through the full micro-batching :class:`PolicyServer` (request
validation, shared normalisation, stats), which adds the same fixed
cost to both backends and therefore compresses the ratio slightly.

Knobs (environment variables):

* ``SERVING_BENCH_SESSIONS`` — concurrent sessions (default 1000, the
  number the acceptance target tracks; CI smoke runs fewer).
* ``SERVING_BENCH_STEPS`` — decisions per session per round (default 8).
* ``SERVING_BENCH_ROUNDS`` — measurement rounds, best-of (default 5).
* ``SERVING_BENCH_MIN_SPEEDUP`` — hard assertion floor for
  compiled/GRU throughput (default 2.0; the headline number lives in
  the JSON, shared CI workers are too noisy for it).
* ``BENCH_OUTPUT_DIR`` — also write the JSON summary to
  ``$BENCH_OUTPUT_DIR/BENCH_serving_throughput.json`` for artifact
  upload / the ``benchmarks/results/`` perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.fsm.extraction import ExtractionConfig, FSMExtractor
from repro.qbn.autoencoder import build_hidden_qbn, build_observation_qbn
from repro.qbn.dataset import TransitionDataset
from repro.serving import (
    CompiledFSMBackend,
    CompiledFSMPolicy,
    GRUPolicyBackend,
    PolicyServer,
    ShadowEvaluator,
)
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler

SESSIONS = int(os.environ.get("SERVING_BENCH_SESSIONS", "1000"))
STEPS = int(os.environ.get("SERVING_BENCH_STEPS", "8"))
ROUNDS = int(os.environ.get("SERVING_BENCH_ROUNDS", "5"))
MIN_ASSERTED_SPEEDUP = float(os.environ.get("SERVING_BENCH_MIN_SPEEDUP", "2.0"))
HIDDEN_SIZE = 128


def _measure_backend(backend, table, slots, request_rounds) -> float:
    """Backend decisions per second over one pass of ``request_rounds``."""
    start = time.perf_counter()
    served = 0
    for raw, normalized in request_rounds:
        served += backend.decide(table, slots, raw, normalized).shape[0]
    return served / (time.perf_counter() - start)


def _measure_server(server: PolicyServer, session_ids, request_rounds) -> float:
    """End-to-end server decisions per second (validation + normalise + stats)."""
    start = time.perf_counter()
    served = 0
    for raw, _normalized in request_rounds:
        served += server.decide_now(session_ids, raw).shape[0]
    return served / (time.perf_counter() - start)


def test_bench_serving_throughput(tmp_path):
    system_config = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=0)
    suite = generator.generate_suite(duration=48)
    traces = RealTraceSampler(suite, rng=1).sample_many(4)
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=HIDDEN_SIZE), rng=5)

    # Transition dataset from greedy batched rollouts -> extracted FSM.
    reward_config = RewardConfig(mode="per_step_penalty")
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(system_config, reward_config), rng=0
    )
    trajectories = collector.collect_batch(policy, traces, greedy=True)
    dataset = TransitionDataset.from_trajectories(trajectories)
    observation_qbn = build_observation_qbn(35, latent_dim=12, rng=7)
    hidden_qbn = build_hidden_qbn(HIDDEN_SIZE, latent_dim=16, rng=8)
    extraction = FSMExtractor(
        observation_qbn, hidden_qbn, ExtractionConfig(min_state_visits=0)
    ).extract(dataset)

    encoder = StorageAllocationEnv(system_config).observation_encoder
    compiled = CompiledFSMPolicy.compile(
        extraction.fsm, observation_qbn, encoder=encoder
    )

    # Synthetic request stream: every session replays dataset observations
    # from its own offset, STEPS decisions per session per round.  The
    # normalised form is precomputed once — in production the server
    # normalises each micro-batch exactly once for whichever backend is
    # mounted, so backend-level timing feeds both the same way.
    raw_pool = np.asarray(dataset.raw_observations, dtype=float)
    request_rounds = []
    for step in range(STEPS):
        raw = np.ascontiguousarray(
            raw_pool[(np.arange(SESSIONS) * 13 + step * 7) % len(raw_pool)]
        )
        request_rounds.append((raw, encoder.normalize_batch(raw)))

    def fresh_backend(backend) -> tuple:
        table = backend.session_table(SESSIONS)
        slots = table.open(SESSIONS)
        backend.begin_sessions(table, slots)
        return backend, table, slots

    compiled_backend, compiled_table, compiled_slots = fresh_backend(
        CompiledFSMBackend(compiled)
    )
    gru_backend, gru_table, gru_slots = fresh_backend(GRUPolicyBackend(policy))

    # Warm-up both paths (BLAS init, lazy buffers), then measure best-of.
    compiled_rates, gru_rates = [], []
    _measure_backend(compiled_backend, compiled_table, compiled_slots, request_rounds[:1])
    _measure_backend(gru_backend, gru_table, gru_slots, request_rounds[:1])
    for _ in range(ROUNDS):
        compiled_rates.append(
            _measure_backend(compiled_backend, compiled_table, compiled_slots, request_rounds)
        )
        gru_rates.append(
            _measure_backend(gru_backend, gru_table, gru_slots, request_rounds)
        )

    # The same comparison through the full PolicyServer front door.
    server_compiled = PolicyServer(
        CompiledFSMBackend(compiled), encoder, initial_capacity=SESSIONS
    )
    compiled_ids = server_compiled.open_sessions(SESSIONS)
    server_gru = PolicyServer(
        GRUPolicyBackend(policy), encoder, initial_capacity=SESSIONS
    )
    gru_ids = server_gru.open_sessions(SESSIONS)
    _measure_server(server_compiled, compiled_ids, request_rounds[:1])
    _measure_server(server_gru, gru_ids, request_rounds[:1])
    server_compiled_rates, server_gru_rates = [], []
    for _ in range(max(2, ROUNDS // 2)):
        server_compiled_rates.append(
            _measure_server(server_compiled, compiled_ids, request_rounds)
        )
        server_gru_rates.append(_measure_server(server_gru, gru_ids, request_rounds))

    # Shadow pass: serve from the compiled tables, audit with the GRU.
    shadow = ShadowEvaluator(CompiledFSMBackend(compiled), GRUPolicyBackend(policy))
    shadow_server = PolicyServer(shadow, encoder, initial_capacity=SESSIONS)
    shadow_ids = shadow_server.open_sessions(SESSIONS)
    for raw, _normalized in request_rounds:
        shadow_server.decide_now(shadow_ids, raw)

    best_compiled = max(compiled_rates)
    best_gru = max(gru_rates)
    summary = {
        "benchmark": "serving_throughput",
        "sessions": SESSIONS,
        "steps_per_round": STEPS,
        "rounds": ROUNDS,
        "hidden_size": HIDDEN_SIZE,
        "fsm_states": compiled.num_states,
        "fsm_observations": compiled.num_observations,
        "compiled_decisions_per_s": round(best_compiled, 1),
        "gru_decisions_per_s": round(best_gru, 1),
        "speedup": round(best_compiled / best_gru, 2),
        "compiled_rates": [round(r, 1) for r in compiled_rates],
        "gru_rates": [round(r, 1) for r in gru_rates],
        "server_compiled_decisions_per_s": round(max(server_compiled_rates), 1),
        "server_gru_decisions_per_s": round(max(server_gru_rates), 1),
        "server_speedup": round(max(server_compiled_rates) / max(server_gru_rates), 2),
        "fallback_fraction": round(
            compiled.fallback_count / max(compiled.decision_count, 1), 4
        ),
        "shadow_fidelity": round(shadow.fidelity, 4),
        "shadow_decisions": shadow.decisions,
        "shadow_divergences": shadow.divergences,
    }
    print()
    print(json.dumps(summary, indent=2))
    (tmp_path / "serving_throughput.json").write_text(json.dumps(summary, indent=2))
    output_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if output_dir:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "BENCH_serving_throughput.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )

    assert 0.0 <= shadow.fidelity <= 1.0
    assert best_compiled / best_gru >= MIN_ASSERTED_SPEEDUP, summary
