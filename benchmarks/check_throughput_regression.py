"""CI throughput regression guard for the batched-rollout benchmark.

Compares the JSON emitted by ``test_bench_rollout_throughput.py`` against
a committed baseline (``benchmarks/results/BENCH_rollout_throughput_*.json``)
and fails when batched steps/sec regressed by more than the threshold.

Raw steps/sec are not comparable across machines (CI runners differ by
2-3x from the development box and from each other), so the comparison is
**machine-normalised**: the current batched rate is rescaled by the ratio
of the baseline's sequential rate to the current sequential rate — the
sequential collector acts as the per-run hardware calibration — which
makes the check equivalent to comparing the batched-vs-sequential
speedups.  Both raw and normalised numbers are printed so a genuine
regression is easy to read off the log.

Usage::

    python benchmarks/check_throughput_regression.py \
        --current bench-artifacts/BENCH_rollout_throughput.json \
        --baseline benchmarks/results/BENCH_rollout_throughput_pr4.json

The threshold (default 0.30 = fail on >30% regression) can be overridden
with ``--threshold`` or the ``BENCH_REGRESSION_THRESHOLD`` environment
variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _rates(payload: dict) -> tuple:
    """(batch_size, sequential, batched) steps/sec from a benchmark JSON.

    Accepts both the flat shape the benchmark emits and the committed
    before/after result files (where the relevant numbers live under
    ``after.pytest_capture`` and the batch size at the top level).
    """
    if "batched_steps_per_s" in payload:
        record = payload
        batch = payload.get("batch_size")
    elif "after" in payload and "pytest_capture" in payload["after"]:
        record = payload["after"]["pytest_capture"]
        batch = payload.get("batch_size")
    else:
        raise SystemExit(f"unrecognised benchmark JSON shape: {sorted(payload)}")
    return (
        batch,
        float(record["sequential_steps_per_s"]),
        float(record["batched_steps_per_s"]),
    )


def _config_stamp(payload: dict) -> tuple:
    """(kernel, rng_family) stamps from a benchmark JSON.

    Results recorded before the stamps existed (PR 4 and earlier) were
    all measured with the pure-numpy kernel and legacy rng streams, so
    missing keys default to ``("numpy", "legacy")``.
    """
    record = payload
    if "batched_steps_per_s" not in payload and "after" in payload:
        record = payload["after"].get("pytest_capture", payload)
    return (
        str(record.get("kernel", payload.get("kernel", "numpy"))),
        str(record.get("rng_family", payload.get("rng_family", "legacy"))),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, type=Path,
                        help="JSON emitted by the benchmark run under test")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed baseline JSON to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30")),
        help="maximum tolerated fractional regression (default 0.30, "
             "env BENCH_REGRESSION_THRESHOLD)",
    )
    parser.add_argument(
        "--kernel", default=None,
        help="assert the current run was measured with this inference "
             "kernel (numpy|native)")
    parser.add_argument(
        "--rng-family", default=None,
        help="assert the current run was measured with this rng stream "
             "family (legacy|philox)")
    args = parser.parse_args(argv)

    base_payload = _load(args.baseline)
    current_payload = _load(args.current)
    base_batch, base_sequential, base_batched = _rates(base_payload)
    current_batch, current_sequential, current_batched = _rates(current_payload)
    if min(base_sequential, base_batched, current_sequential, current_batched) <= 0:
        raise SystemExit("benchmark rates must be positive")
    if base_batch is not None and current_batch is not None and base_batch != current_batch:
        # The batched-vs-sequential speedup scales with B, so comparing
        # runs at different batch sizes would flag phantom regressions.
        raise SystemExit(
            f"batch size mismatch: current run used B={current_batch} but the "
            f"baseline was recorded at B={base_batch}; rerun the benchmark with "
            f"ROLLOUT_BENCH_BATCH={base_batch} (or switch baselines)"
        )
    base_config = _config_stamp(base_payload)
    current_config = _config_stamp(current_payload)
    if args.kernel is not None and current_config[0] != args.kernel:
        raise SystemExit(
            f"kernel mismatch: expected the current run to use "
            f"kernel={args.kernel!r} but it was recorded with "
            f"kernel={current_config[0]!r}"
        )
    if args.rng_family is not None and current_config[1] != args.rng_family:
        raise SystemExit(
            f"rng family mismatch: expected the current run to use "
            f"rng_family={args.rng_family!r} but it was recorded with "
            f"rng_family={current_config[1]!r}"
        )
    if base_config != current_config:
        # A native-kernel run beating a numpy baseline (or vice versa)
        # is a configuration change, not a perf signal; only same-config
        # runs are comparable.
        raise SystemExit(
            f"configuration mismatch: current run was measured with "
            f"(kernel, rng_family)={current_config} but the baseline was "
            f"recorded with {base_config}; rerun with "
            f"ROLLOUT_BENCH_KERNEL={base_config[0]} "
            f"ROLLOUT_BENCH_RNG_FAMILY={base_config[1]} (or switch baselines)"
        )

    calibration = base_sequential / current_sequential
    normalised_batched = current_batched * calibration
    ratio = normalised_batched / base_batched
    # Equivalent formulation: speedup_now / speedup_baseline.
    print(f"baseline:   sequential {base_sequential:10.1f}  batched {base_batched:10.1f}  "
          f"speedup {base_batched / base_sequential:.2f}")
    print(f"current:    sequential {current_sequential:10.1f}  batched {current_batched:10.1f}  "
          f"speedup {current_batched / current_sequential:.2f}")
    print(f"normalised: batched {normalised_batched:10.1f} "
          f"(hardware calibration x{calibration:.3f})")
    print(f"ratio vs baseline: {ratio:.3f}  (fail below {1.0 - args.threshold:.3f})")

    if ratio < 1.0 - args.threshold:
        print(
            f"FAIL: batched rollout throughput regressed by "
            f"{(1.0 - ratio) * 100:.1f}% (> {args.threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("OK: batched rollout throughput within the regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
