"""Micro-benchmark: sequential vs batched rollout collection.

Measures steps/second of the sequential reference collector against the
vectorized lockstep collector on the same sampled traces with the
paper-scale GRU-128 policy, prints a JSON summary, and asserts the
batched path keeps a clear lead.  The hard assertion defaults to a
regression floor so a noisy CI worker does not flake the suite, and can
be tightened via ROLLOUT_BENCH_MIN_SPEEDUP.

Knobs (environment variables):

* ``ROLLOUT_BENCH_BATCH`` — batch size B (default 16, the number the
  perf trajectory tracks); the CI benchmark-smoke job runs a small B.
* ``ROLLOUT_BENCH_ROUNDS`` — measurement rounds, best-of (default 5).
* ``ROLLOUT_BENCH_POOL_WORKERS`` — when set to N > 1, also measures the
  persistent-worker-pool collector sharding the same batch across N
  resident workers (only meaningful on multi-core hosts; the pool's
  merge is bit-identical to the single-process batched collection).
* ``ROLLOUT_BENCH_KERNEL`` — inference kernel for the *batched* path
  (``numpy`` default, ``native`` for the fused C micro-kernel); the
  sequential reference always runs the default config so it stays a
  pure hardware calibration.
* ``ROLLOUT_BENCH_RNG_FAMILY`` — rng stream family for the batched path
  (``legacy`` default, ``philox`` for the counter-based vectorized
  streams).
* ``BENCH_OUTPUT_DIR`` — when set, the JSON summary is also written to
  ``$BENCH_OUTPUT_DIR/BENCH_rollout_throughput.json`` so CI can upload
  it as an artifact and the repo can accumulate perf evidence under
  ``benchmarks/results/``.  Non-default kernel/rng-family runs write a
  config-suffixed filename instead, so differently-configured artifacts
  can never be diffed against the default baseline by accident (the
  regression checker also refuses mismatched stamps).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector, RolloutCollector
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler

BATCH_SIZE = int(os.environ.get("ROLLOUT_BENCH_BATCH", "16"))
ROUNDS = int(os.environ.get("ROLLOUT_BENCH_ROUNDS", "5"))
POOL_WORKERS = int(os.environ.get("ROLLOUT_BENCH_POOL_WORKERS", "0"))
KERNEL = os.environ.get("ROLLOUT_BENCH_KERNEL", "numpy")
RNG_FAMILY = os.environ.get("ROLLOUT_BENCH_RNG_FAMILY", "legacy")
# Hard floor: batched collection slower than sequential is a real
# regression even on a loaded machine.  Shared CI runners are too noisy
# for the headline number (the JSON records the measured value); tighten
# locally with e.g. ROLLOUT_BENCH_MIN_SPEEDUP=3.
MIN_ASSERTED_SPEEDUP = float(os.environ.get("ROLLOUT_BENCH_MIN_SPEEDUP", "1.0"))


def _steps_per_second(collect, traces) -> float:
    start = time.perf_counter()
    trajectories = collect(traces)
    elapsed = time.perf_counter() - start
    return sum(len(t) for t in trajectories) / elapsed


def test_bench_rollout_throughput(tmp_path):
    system_config = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=0)
    suite = generator.generate_suite(duration=48)
    traces = RealTraceSampler(suite, rng=1).sample_many(BATCH_SIZE)
    reward_config = RewardConfig(mode="per_step_penalty")
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=128), rng=5)
    # The batched path runs the configured kernel; the sequential
    # reference keeps the default config so it stays a pure hardware
    # calibration for cross-machine normalisation.
    batched_policy = policy
    if KERNEL != "numpy":
        batched_policy = RecurrentPolicyValueNet(
            PolicyConfig(hidden_size=128, kernel=KERNEL), rng=5
        )
        batched_policy.load_state_dict(policy.state_dict())

    sequential = RolloutCollector(
        StorageAllocationEnv(system_config, reward_config=reward_config), rng=0
    )
    batched = BatchedRolloutCollector(
        VectorStorageAllocationEnv(system_config, reward_config), rng=0
    )

    # Warm-up: first calls pay one-time costs (interval caches, BLAS
    # init, kernel compilation).
    sequential.collect_many(policy, traces[:4], greedy=False)
    batched.collect_many(
        batched_policy, traces[:4], greedy=False, rng_family=RNG_FAMILY
    )

    sequential_rates = []
    batched_rates = []
    for _ in range(ROUNDS):
        sequential_rates.append(
            _steps_per_second(
                lambda t: sequential.collect_many(policy, t, greedy=False), traces
            )
        )
        batched_rates.append(
            _steps_per_second(
                lambda t: batched.collect_many(
                    batched_policy, t, greedy=False, rng_family=RNG_FAMILY
                ),
                traces,
            )
        )

    pool_rates = []
    if POOL_WORKERS > 1:
        from repro.drl.worker_pool import PersistentWorkerPool

        with PersistentWorkerPool(
            system_config, reward_config, num_workers=POOL_WORKERS
        ) as pool:
            pool.collect(policy, traces[:4], base_seed=0, greedy=False)
            for round_index in range(ROUNDS):
                pool_rates.append(
                    _steps_per_second(
                        lambda t: pool.collect(
                            policy, t, base_seed=round_index, greedy=False
                        ),
                        traces,
                    )
                )

    best_sequential = max(sequential_rates)
    best_batched = max(batched_rates)
    summary = {
        "benchmark": "rollout_throughput",
        "batch_size": BATCH_SIZE,
        "hidden_size": 128,
        "rounds": ROUNDS,
        "kernel": KERNEL,
        "rng_family": RNG_FAMILY,
        "sequential_steps_per_s": round(best_sequential, 1),
        "batched_steps_per_s": round(best_batched, 1),
        "speedup": round(best_batched / best_sequential, 2),
        "sequential_rates": [round(r, 1) for r in sequential_rates],
        "batched_rates": [round(r, 1) for r in batched_rates],
    }
    if pool_rates:
        summary["pool_workers"] = POOL_WORKERS
        summary["pool_steps_per_s"] = round(max(pool_rates), 1)
        summary["pool_rates"] = [round(r, 1) for r in pool_rates]
    print()
    print(json.dumps(summary, indent=2))
    (tmp_path / "rollout_throughput.json").write_text(json.dumps(summary, indent=2))
    output_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if output_dir:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        suffix = (
            "" if (KERNEL, RNG_FAMILY) == ("numpy", "legacy")
            else f"_{KERNEL}_{RNG_FAMILY}"
        )
        (target / f"BENCH_rollout_throughput{suffix}.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )

    assert best_batched / best_sequential >= MIN_ASSERTED_SPEEDUP, summary
