"""Setuptools entry point (legacy editable installs in offline environments)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description="Learning-aided heuristics design for storage systems (SIGMOD'21 reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.nn.native": ["*.c"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
