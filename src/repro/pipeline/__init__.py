"""End-to-end pipeline and evaluation harness.

* :mod:`repro.pipeline.evaluation` — run any controller over workload
  traces and compare makespans (the measurement behind Figure 4).
* :mod:`repro.pipeline.learning_aided` — the paper's integrated
  pipeline: curriculum-train the DRL policy, train the QBNs, extract the
  FSM and interpret it.
* :mod:`repro.pipeline.experiments` — parameterised runners that
  regenerate each of the paper's figures (used by the benchmark suite).
* :mod:`repro.pipeline.sweep` — sharded experiment sweeps: grid
  expansion into seeded jobs, multi-process execution with failure
  capture, deterministic per-job JSON results.
"""

from repro.pipeline.evaluation import EvaluationResult, evaluate_agent, compare_agents
from repro.pipeline.learning_aided import (
    FidelityReport,
    LearningAidedPipeline,
    PipelineConfig,
    PipelineResult,
)
from repro.pipeline.sweep import (
    SweepJob,
    SweepResult,
    SweepRunner,
    SweepSpec,
    expand_jobs,
)
from repro.pipeline import experiments

__all__ = [
    "EvaluationResult",
    "evaluate_agent",
    "compare_agents",
    "FidelityReport",
    "LearningAidedPipeline",
    "PipelineConfig",
    "PipelineResult",
    "SweepSpec",
    "SweepJob",
    "SweepRunner",
    "SweepResult",
    "expand_jobs",
    "experiments",
]
