"""Sharded experiment sweeps: grid expansion, multi-process execution, JSON results.

A :class:`SweepSpec` describes a family of seeded experiments as a base
parameter set plus a grid of variations; :class:`SweepRunner` expands the
grid into :class:`SweepJob` instances, executes them (optionally across
worker processes), captures failures without aborting the sweep, writes
one canonical JSON result per job plus an aggregate comparison table, and
fingerprints every job payload so reruns can be checked for determinism.

Determinism contract: a job's result payload depends only on its
``(kind, params, seed)`` triple — wall-clock timings are kept out of the
per-job payloads (they live in the aggregate summary only), so running
the same spec twice, with any worker count, produces byte-identical
per-job JSON files.

Job kinds:

* ``"agents"`` — seeded :func:`~repro.pipeline.evaluation.compare_agents`
  over generated workloads for a set of baseline controllers;
* ``"training"`` — a short seeded A2C training run, reporting final
  smoothed makespan and reward;
* ``"pipeline"`` — a full (scaled-down) :class:`LearningAidedPipeline`
  run, reporting evaluation makespans of the trained DRL policy and the
  extracted FSM against the default baseline.
"""

from __future__ import annotations

import itertools
import multiprocessing
import re
import time
import traceback
from dataclasses import dataclass, field, fields, is_dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.utils.serialization import atomic_write_text, json_digest, load_json, save_json
from repro.utils.tables import format_table

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Config override plumbing
# ----------------------------------------------------------------------
def apply_overrides(config: Any, overrides: Mapping[str, Any]) -> Any:
    """Return a copy of a (possibly nested) dataclass with dotted overrides.

    ``{"a2c.learning_rate": 1e-3}`` rebuilds ``config.a2c`` with the new
    learning rate and returns a new top-level config; unknown fields
    raise :class:`ConfigurationError` instead of silently doing nothing.
    """
    for dotted in sorted(overrides):
        config = _replace_path(config, dotted.split("."), overrides[dotted], dotted)
    return config


def _replace_path(config: Any, path: List[str], value: Any, dotted: str) -> Any:
    if not is_dataclass(config):
        raise ConfigurationError(
            f"cannot apply override {dotted!r}: {type(config).__name__} is not a dataclass"
        )
    name = path[0]
    if name not in {f.name for f in fields(config)}:
        raise ConfigurationError(
            f"unknown field {name!r} in override {dotted!r} "
            f"(available: {sorted(f.name for f in fields(config))})"
        )
    if len(path) > 1:
        value = _replace_path(getattr(config, name), path[1:], value, dotted)
    return replace(config, **{name: value})


# ----------------------------------------------------------------------
# Spec and job model
# ----------------------------------------------------------------------
_KINDS = ("agents", "training", "pipeline")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative description of one experiment sweep.

    ``base`` holds parameters shared by every job; ``grid`` maps
    parameter names to lists of values whose cartesian product (crossed
    with ``seeds``) defines the jobs.  Parameter names may be dotted
    config paths for the ``training``/``pipeline`` kinds (see
    :func:`apply_overrides`) or plain job parameters (see each kind's
    runner for the recognised keys).
    """

    name: str
    kind: str = "agents"
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must be non-empty")
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"grid values for {key!r} must be a list, got {type(values).__name__}"
                )
            if not values:
                raise ConfigurationError(f"grid axis {key!r} is empty")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "base": dict(self.base),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "seeds": list(self.seeds),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SweepSpec":
        known = {"name", "kind", "base", "grid", "seeds"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown sweep spec keys: {sorted(unknown)}")
        if "name" not in payload:
            raise ConfigurationError("sweep spec needs a 'name'")
        raw_grid = dict(payload.get("grid", {}))
        for key, values in raw_grid.items():
            # Check the raw value: list() would happily explode a string
            # typo like "0.9" into ['0', '.', '9'].
            if not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"grid values for {key!r} must be a list, got {type(values).__name__}"
                )
        raw_seeds = payload.get("seeds", [0])
        if not isinstance(raw_seeds, (list, tuple)):
            raise ConfigurationError(
                f"seeds must be a list, got {type(raw_seeds).__name__}"
            )
        spec = SweepSpec(
            name=str(payload["name"]),
            kind=str(payload.get("kind", "agents")),
            base=dict(payload.get("base", {})),
            grid={k: list(v) for k, v in raw_grid.items()},
            seeds=[int(s) for s in raw_seeds],
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class SweepJob:
    """One fully-specified, seeded experiment of a sweep."""

    index: int
    name: str
    kind: str
    seed: int
    params: Dict[str, Any]

    def payload_id(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "seed": self.seed,
                "params": dict(self.params)}


def _slug(text: str) -> str:
    """A filesystem-safe job label.

    Keeps hyphens as-is: a leading ``-`` may be a legitimate minus sign
    of a negative grid value and must survive into the job name.
    """
    return re.sub(r"[^A-Za-z0-9_.=-]+", "-", str(text)) or "job"


def expand_jobs(spec: SweepSpec) -> List[SweepJob]:
    """Expand ``spec`` into its deterministic, ordered job list.

    Grid axes are iterated in sorted-name order, values in the order
    given, seeds last — so the job list (names, indices and parameters)
    is identical on every invocation and on every machine.
    """
    spec.validate()
    axes = sorted(spec.grid)
    combos = list(itertools.product(*(list(spec.grid[axis]) for axis in axes)))
    jobs: List[SweepJob] = []
    for combo in combos:
        overrides = dict(zip(axes, combo))
        for seed in spec.seeds:
            params = dict(spec.base)
            params.update(overrides)
            label_parts = [f"{axis}={_slug(value)}" for axis, value in zip(axes, combo)]
            label_parts.append(f"seed={seed}")
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    name=f"{_slug(spec.name)}-{len(jobs):03d}-{'-'.join(label_parts)}",
                    kind=spec.kind,
                    seed=int(seed),
                    params=params,
                )
            )
    return jobs


# ----------------------------------------------------------------------
# Job execution (module-level so worker processes can pickle them)
# ----------------------------------------------------------------------
def _split_params(
    params: Mapping[str, Any],
    plain: Sequence[str],
    allow_plain_overrides: bool = False,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Partition job params into plain keys and config overrides.

    Dotted keys are always overrides; with ``allow_plain_overrides``
    undotted unknown keys are too (used by the pipeline kind, where
    top-level ``PipelineConfig`` fields are legitimate override targets
    and :func:`apply_overrides` still rejects unknown field names).
    """
    plain_params: Dict[str, Any] = {}
    overrides: Dict[str, Any] = {}
    for key, value in params.items():
        if key in plain:
            plain_params[key] = value
        elif "." in key or allow_plain_overrides:
            overrides[key] = value
        else:
            raise ConfigurationError(
                f"unknown job parameter {key!r} (plain parameters: {sorted(plain)}; "
                "dotted names are treated as config overrides)"
            )
    return plain_params, overrides


def _build_agent(name: str, system_config):
    from repro.agents.default import DefaultPolicy
    from repro.agents.greedy import GreedyUtilizationPolicy
    from repro.agents.handcrafted import HandcraftedFSMPolicy
    from repro.agents.proportional import ProportionalAllocationPolicy

    builders = {
        "default": lambda: DefaultPolicy(),
        "handcrafted_fsm": lambda: HandcraftedFSMPolicy(),
        "greedy_utilization": lambda: GreedyUtilizationPolicy(),
        "proportional_allocation": lambda: ProportionalAllocationPolicy(system_config),
    }
    if name not in builders:
        raise ConfigurationError(
            f"unknown agent {name!r} (available: {sorted(builders)})"
        )
    return builders[name]()


def _build_traces(system_config, seed: int, num_traces: int, duration: int,
                  target_load: float):
    from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
    from repro.workloads.sampler import RealTraceSampler, SamplerConfig

    generator = StandardWorkloadGenerator(
        system_config, GeneratorConfig(target_load=float(target_load)), rng=seed
    )
    standard = generator.generate_suite(duration=int(duration))
    sampler = RealTraceSampler(
        standard,
        SamplerConfig(snippets_per_trace=2, min_snippet_length=max(4, duration // 3),
                      max_snippet_length=max(6, duration // 2)),
        rng=seed + 1,
    )
    return sampler.sample_many(int(num_traces))


def _run_agents_job(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Seeded baseline-controller comparison over generated workloads."""
    from repro.pipeline.evaluation import compare_agents
    from repro.storage.simulator import StorageSystemConfig

    plain, overrides = _split_params(
        params, ("num_traces", "duration", "target_load", "agents", "episode_seed")
    )
    system_config = apply_overrides(StorageSystemConfig(), overrides) if overrides \
        else StorageSystemConfig()
    agents = [
        _build_agent(name, system_config)
        for name in plain.get("agents", ["default", "greedy_utilization",
                                         "proportional_allocation"])
    ]
    traces = _build_traces(
        system_config, seed,
        num_traces=plain.get("num_traces", 4),
        duration=plain.get("duration", 24),
        target_load=plain.get("target_load", 1.0),
    )
    results = compare_agents(
        agents, traces, system_config=system_config,
        episode_seed=int(plain.get("episode_seed", seed)),
    )
    metrics: Dict[str, Any] = {"num_traces": len(traces)}
    for name, result in results.items():
        metrics[f"{name}/mean_makespan"] = result.mean_makespan()
        metrics[f"{name}/total_makespan"] = result.total_makespan()
        metrics[f"{name}/mean_total_reward"] = result.mean_total_reward()
    return metrics


def _run_training_job(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A short seeded A2C run; dotted ``a2c.*`` params override the A2C
    config (the policy is configured via the plain ``hidden_size``)."""
    from repro.drl.a2c import A2CConfig, A2CTrainer
    from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
    from repro.env.environment import StorageAllocationEnv
    from repro.env.reward import RewardConfig
    from repro.storage.simulator import StorageSystemConfig

    plain, overrides = _split_params(
        params,
        ("epochs", "num_traces", "duration", "target_load", "hidden_size"),
    )
    a2c_overrides = {k[len("a2c."):]: v for k, v in overrides.items()
                     if k.startswith("a2c.")}
    unknown = set(overrides) - {f"a2c.{k}" for k in a2c_overrides}
    if unknown:
        raise ConfigurationError(
            f"training jobs only accept 'a2c.*' overrides, got {sorted(unknown)}"
        )
    a2c_config = apply_overrides(A2CConfig(), a2c_overrides)

    system_config = StorageSystemConfig()
    traces = _build_traces(
        system_config, seed,
        num_traces=plain.get("num_traces", 2),
        duration=plain.get("duration", 16),
        target_load=plain.get("target_load", 1.0),
    )
    env = StorageAllocationEnv(
        system_config, reward_config=RewardConfig(mode="per_step_penalty"), rng=seed
    )
    policy = RecurrentPolicyValueNet(
        PolicyConfig(hidden_size=int(plain.get("hidden_size", 16))), rng=seed
    )
    trainer = A2CTrainer(policy, env, config=a2c_config, rng=seed)
    history = trainer.train(traces, epochs=int(plain.get("epochs", 3)))
    makespans = history.makespans()
    rewards = [record.total_reward for record in history.records]
    return {
        "epochs": len(history),
        "final_makespan": float(makespans[-1]),
        "mean_makespan": float(makespans.mean()),
        "final_total_reward": float(rewards[-1]),
        "learning_rate": float(a2c_config.learning_rate),
    }


def _run_pipeline_job(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A full (scaled-down) pipeline run evaluated against the default baseline."""
    from repro.agents.default import DefaultPolicy
    from repro.pipeline.experiments import small_pipeline_config
    from repro.pipeline.learning_aided import LearningAidedPipeline

    plain, overrides = _split_params(
        params,
        ("standard_epochs", "real_epochs", "hidden_size", "trace_duration",
         "num_real_traces", "num_eval_traces"),
        allow_plain_overrides=True,
    )
    config = small_pipeline_config(
        seed=seed,
        standard_epochs=int(plain.get("standard_epochs", 3)),
        real_epochs=int(plain.get("real_epochs", 3)),
        hidden_size=int(plain.get("hidden_size", 16)),
        trace_duration=int(plain.get("trace_duration", 16)),
        num_real_traces=int(plain.get("num_real_traces", 4)),
        num_eval_traces=int(plain.get("num_eval_traces", 2)),
    )
    if overrides:
        config = apply_overrides(config, overrides)
    pipeline = LearningAidedPipeline(config)
    result = pipeline.run()
    # Engine-backed evaluation stage: the FSM runs on its compiled dense
    # tables when routable, the policy as batched GRU forwards — same
    # numbers as the sequential harness, one lockstep batch per agent.
    comparison = pipeline.evaluate(
        result, baselines=[DefaultPolicy()], episode_seed=seed
    )
    fidelity = pipeline.verify_fidelity(result, episode_seed=seed)
    metrics: Dict[str, Any] = {
        "train_epochs": len(result.training_history),
        "fsm_states": result.extraction.fsm.num_states,
        "eval_traces": len(result.eval_traces),
        "fsm_compiled_routable": bool(fidelity.routable),
        "fsm_compiled_identical": fidelity.identical,
    }
    for name, evaluation in comparison.items():
        metrics[f"{name}/mean_makespan"] = evaluation.mean_makespan()
    return metrics


_JOB_RUNNERS: Dict[str, Callable[[Mapping[str, Any], int], Dict[str, Any]]] = {
    "agents": _run_agents_job,
    "training": _run_training_job,
    "pipeline": _run_pipeline_job,
}


def load_resumed_record(job: SweepJob, output_dir: PathLike) -> Optional[Dict[str, Any]]:
    """A verified previous record for ``job``, or None to re-run it.

    A record is only reused when it parses, matches the job's identity
    (name/kind/seed/params), finished with ``status == "ok"`` and
    carries a digest that matches its own payload — a corrupt, stale or
    failed file falls through to re-execution.
    """
    path = Path(output_dir) / "jobs" / f"{job.name}.json"
    if not path.exists():
        return None
    try:
        record = load_json(path)
    except Exception:
        return None
    if record.get("status") != "ok":
        return None
    identity_keys = ("name", "kind", "seed", "params")
    if any(key not in record for key in identity_keys) or "digest" not in record:
        return None
    if json_digest({k: record[k] for k in identity_keys}) != json_digest(
        job.payload_id()
    ):
        return None
    expected = json_digest(
        {k: v for k, v in record.items() if k not in ("digest", "traceback")}
    )
    if record["digest"] != expected:
        return None
    return record


def _execute_or_resume(
    task: Tuple[SweepJob, Optional[str], bool]
) -> Tuple[Dict[str, Any], bool]:
    """Worker entry point: verify-and-reuse lazily, else execute.

    Digest verification happens here — inside the worker, per job — so
    resuming a large mostly-complete sweep costs each worker only its
    own share of reads instead of one serial verification pass in the
    parent before any job can start.
    """
    job, output_dir, resume = task
    if resume and output_dir is not None:
        record = load_resumed_record(job, output_dir)
        if record is not None:
            return record, True
    return execute_job(job), False


def execute_job(job: SweepJob) -> Dict[str, Any]:
    """Run one job and return its canonical (deterministic) result record.

    Failures are captured, not raised: a failed job yields a record with
    ``status="failed"`` and a concise error string so one bad grid point
    cannot abort a multi-hour sweep.  The record deliberately excludes
    wall-clock timings — its :func:`~repro.utils.serialization.json_digest`
    depends only on the job identity and its metrics.
    """
    record = job.payload_id()
    try:
        runner = _JOB_RUNNERS[job.kind]
        record["metrics"] = runner(job.params, job.seed)
        record["status"] = "ok"
    except Exception as exc:
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = traceback.format_exc()
    record["digest"] = json_digest(
        {k: v for k, v in record.items() if k != "traceback"}
    )
    return record


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """All job records of one sweep run plus aggregate bookkeeping."""

    spec: SweepSpec
    records: List[Dict[str, Any]]
    wall_time_s: float = 0.0
    num_resumed: int = 0

    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] != "ok"]

    def metrics_columns(self) -> List[str]:
        columns: List[str] = []
        for record in self.records:
            for key in record.get("metrics", {}):
                if key not in columns:
                    columns.append(key)
        return columns

    def table(self) -> str:
        """Aggregate comparison table: one row per job, one column per metric."""
        columns = self.metrics_columns()
        headers = ["job", "seed", "status"] + columns
        rows = []
        for record in self.records:
            metrics = record.get("metrics", {})
            row: List[object] = [record["name"], record["seed"], record["status"]]
            row.extend(
                metrics[key] if key in metrics else "-" for key in columns
            )
            rows.append(row)
        return format_table(headers, rows, title=f"Sweep {self.spec.name} ({self.spec.kind})")

    def summary(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "num_jobs": self.num_jobs,
            "num_failed": len(self.failures),
            "digests": {r["name"]: r["digest"] for r in self.records},
        }


class SweepRunner:
    """Expands a :class:`SweepSpec` and executes its jobs, optionally in parallel.

    ``output_dir`` (optional) receives ``jobs/<job name>.json`` — the
    canonical per-job records, byte-identical across reruns — plus
    ``sweep.json`` (aggregate summary incl. per-job digests and the one
    place wall-clock timing is recorded) and ``summary.txt`` (the
    rendered comparison table).  All output files are written atomically
    (temp file + rename), so a killed run never leaves truncated JSON
    that a later rerun would misread.

    With ``resume=True``, jobs whose per-job JSON already exists in the
    output dir with a verified sha256 digest (and ``status == "ok"``)
    are loaded instead of re-executed — deleting one job file and
    rerunning recomputes exactly that job, byte-identically, because a
    job's payload depends only on its ``(kind, params, seed)`` triple.
    Verification is lazy, per job, *inside* the workers (see
    :func:`_execute_or_resume`): resuming a large mostly-complete sweep
    starts dispatching immediately instead of first re-verifying every
    digest serially in the parent.

    The ``progress`` callback fires once per job in dispatch order as
    ``progress(done, total, record)`` with ``total`` the full job count;
    resumed jobs are included and are marked with a ``"resumed": True``
    key on the (copied) record passed to the callback.
    """

    def __init__(
        self,
        spec: SweepSpec,
        output_dir: Optional[PathLike] = None,
        num_workers: int = 1,
        start_method: Optional[str] = None,
        progress: Optional[Callable[[int, int, Dict[str, Any]], None]] = None,
        resume: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if resume and output_dir is None:
            raise ConfigurationError("resume=True requires an output_dir")
        spec.validate()
        self.spec = spec
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self.progress = progress
        self.resume = bool(resume)

    def expand(self) -> List[SweepJob]:
        return expand_jobs(self.spec)

    def run(self) -> SweepResult:
        jobs = self.expand()
        start = time.perf_counter()
        output_dir = None if self.output_dir is None else str(self.output_dir)
        tasks = [(job, output_dir, self.resume) for job in jobs]
        if self.num_workers == 1 or len(jobs) <= 1:
            records, num_resumed = self._consume(map(_execute_or_resume, tasks), len(jobs))
        else:
            context = multiprocessing.get_context(self.start_method)
            with context.Pool(processes=min(self.num_workers, len(jobs))) as pool:
                # imap preserves job order while letting workers overlap.
                records, num_resumed = self._consume(
                    pool.imap(_execute_or_resume, tasks), len(jobs)
                )
        result = SweepResult(
            spec=self.spec, records=records,
            wall_time_s=time.perf_counter() - start,
            num_resumed=num_resumed,
        )
        if self.output_dir is not None:
            self._write_outputs(result)
        return result

    def _consume(
        self, outcomes, total: int
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Drain ``(record, resumed)`` outcomes, reporting progress."""
        records: List[Dict[str, Any]] = []
        num_resumed = 0
        for done, (record, resumed) in enumerate(outcomes, start=1):
            records.append(record)
            num_resumed += resumed
            if self.progress is not None:
                shown = dict(record, resumed=True) if resumed else record
                self.progress(done, total, shown)
        return records, num_resumed

    def _write_outputs(self, result: SweepResult) -> None:
        jobs_dir = self.output_dir / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        for record in result.records:
            save_json(jobs_dir / f"{record['name']}.json", record)
        summary = result.summary()
        summary["wall_time_s"] = result.wall_time_s
        summary["num_resumed"] = result.num_resumed
        save_json(self.output_dir / "sweep.json", summary)
        atomic_write_text(self.output_dir / "summary.txt", result.table() + "\n")
