"""The integrated learning-aided heuristics design pipeline.

This is the paper's primary contribution packaged as a single object:

1. synthesise standard workload traces and sample "real" traces;
2. curriculum-train the recurrent A2C policy (standard -> real);
3. roll out the trained policy to collect the transition dataset;
4. train the observation/hidden QBNs (optionally fine-tuning them with
   the policy in the loop);
5. extract, minimise and generalise the finite state machine;
6. interpret the states (fan-in/fan-out and history profiles).

Every stage's artefacts are returned in a :class:`PipelineResult` so
examples, tests and benchmarks can inspect intermediate products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.drl.a2c import A2CConfig, TrainingHistory
from repro.drl.agent import DRLPolicyAgent
from repro.drl.curriculum import CurriculumConfig, CurriculumTrainer
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.engine.evaluation import EvaluationResult
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import ConfigurationError
from repro.fsm.agent import FSMPolicyAgent
from repro.fsm.extraction import ExtractionConfig, ExtractionResult, FSMExtractor
from repro.fsm.interpretation import interpret_fsm
from repro.qbn.dataset import TransitionDataset
from repro.qbn.trainer import QBNTrainer, QBNTrainingConfig, QBNTrainingResult
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import RngFactory
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler, SamplerConfig


@dataclass
class PipelineConfig:
    """All knobs of the end-to-end pipeline.

    The defaults are laptop-scale; the paper-scale settings (GRU-128,
    2000 epochs, QBN latent 64) are documented per field and can be set
    explicitly for a full run.
    """

    system: StorageSystemConfig = field(default_factory=StorageSystemConfig)
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    reward: RewardConfig = field(default_factory=lambda: RewardConfig(mode="per_step_penalty"))
    policy: PolicyConfig = field(default_factory=lambda: PolicyConfig(hidden_size=64))
    a2c: A2CConfig = field(default_factory=A2CConfig)
    curriculum: CurriculumConfig = field(default_factory=CurriculumConfig)
    qbn: QBNTrainingConfig = field(default_factory=QBNTrainingConfig)
    extraction: ExtractionConfig = field(default_factory=lambda: ExtractionConfig(min_state_visits=3))
    standard_trace_duration: int = 64
    num_real_traces: int = 50
    num_eval_traces: int = 10
    rollout_traces_for_extraction: int = 5
    qbn_fine_tune_epochs: int = 0
    interpretation_window: int = 10
    bc_pretrain_epochs: int = 0
    bc_teacher: str = "greedy_utilization"
    seed: int = 0

    def validate(self) -> None:
        if self.num_real_traces <= 0:
            raise ConfigurationError("num_real_traces must be positive")
        if not 0 < self.num_eval_traces <= self.num_real_traces:
            raise ConfigurationError(
                "num_eval_traces must be positive and not exceed num_real_traces"
            )
        if self.rollout_traces_for_extraction <= 0:
            raise ConfigurationError("rollout_traces_for_extraction must be positive")
        if self.bc_pretrain_epochs < 0:
            raise ConfigurationError("bc_pretrain_epochs must be non-negative")
        if self.bc_teacher not in ("greedy_utilization", "handcrafted_fsm", "proportional_allocation"):
            raise ConfigurationError(
                "bc_teacher must be one of 'greedy_utilization', 'handcrafted_fsm', "
                f"'proportional_allocation', got {self.bc_teacher!r}"
            )
        if self.standard_trace_duration <= 0:
            raise ConfigurationError("standard_trace_duration must be positive")
        if self.interpretation_window <= 0:
            raise ConfigurationError("interpretation_window must be positive")


@dataclass
class PipelineResult:
    """Artefacts produced by a full pipeline run."""

    policy: RecurrentPolicyValueNet
    training_history: TrainingHistory
    qbn_result: QBNTrainingResult
    extraction: ExtractionResult
    interpretation: Dict[str, Dict[str, object]]
    standard_traces: Dict[str, WorkloadTrace]
    real_traces: List[WorkloadTrace]
    eval_traces: List[WorkloadTrace]
    transition_dataset: TransitionDataset

    def drl_agent(self, env: StorageAllocationEnv) -> DRLPolicyAgent:
        """Wrap the trained policy as an agent bound to ``env``'s encoder."""
        return DRLPolicyAgent(self.policy, env.observation_encoder)

    def fsm_agent(self, env: StorageAllocationEnv) -> FSMPolicyAgent:
        """Wrap the extracted FSM as an agent bound to ``env``'s encoder."""
        return FSMPolicyAgent.from_extraction(
            self.extraction, env.observation_encoder, self.qbn_result.observation_qbn
        )

    def compiled_fsm_policy(self, env: StorageAllocationEnv):
        """Compile the extracted FSM into the dense decision fast path.

        Returns a :class:`repro.engine.compiled_fsm.CompiledFSMPolicy`
        stamped with ``env``'s normalisation constants — the train →
        extract → serve handoff in one call.  The fallback metric is the
        extraction matcher's own, so compiled nearest-prototype
        resolution breaks ties exactly like the interpreted agent.
        """
        from repro.engine.compiled_fsm import CompiledFSMPolicy

        matcher = self.extraction.matcher
        return CompiledFSMPolicy.compile(
            self.extraction.fsm,
            self.qbn_result.observation_qbn,
            encoder=env.observation_encoder,
            metric=matcher.metric_name if matcher is not None else "euclidean",
        )


@dataclass
class FidelityReport:
    """Compiled-vs-interpreted FSM verification (one engine, same seeds).

    ``identical`` is None when the machine is not compiled-routable (the
    matcher does not mirror the machine's prototype table) — the
    interpreted agent is then the only trustworthy deployment.
    """

    routable: bool
    identical: Optional[bool]
    interpreted: "EvaluationResult"
    compiled: Optional["EvaluationResult"]

    def as_dict(self) -> Dict[str, object]:
        return {
            "routable": self.routable,
            "identical": self.identical,
            "interpreted_mean_makespan": self.interpreted.mean_makespan(),
            "compiled_mean_makespan": (
                self.compiled.mean_makespan() if self.compiled is not None else None
            ),
        }


class LearningAidedPipeline:
    """Orchestrates the full learning-aided heuristics design process."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.config.validate()
        self.config.system.validate()
        self._rngs = RngFactory(self.config.seed)

    # ------------------------------------------------------------------
    # Stage 0: workload synthesis
    # ------------------------------------------------------------------
    def build_workloads(self) -> tuple[Dict[str, WorkloadTrace], List[WorkloadTrace]]:
        """Generate the 12 standard traces and the sampled real traces."""
        generator = StandardWorkloadGenerator(
            self.config.system, self.config.generator, rng=self._rngs.get("generator")
        )
        standard = generator.generate_suite(duration=self.config.standard_trace_duration)
        sampler = RealTraceSampler(
            standard, self.config.sampler, rng=self._rngs.get("sampler")
        )
        real = sampler.sample_many(self.config.num_real_traces)
        return standard, real

    def make_env(self) -> StorageAllocationEnv:
        """Build an environment with this pipeline's system and reward configs."""
        return StorageAllocationEnv(
            self.config.system,
            reward_config=self.config.reward,
            rng=self._rngs.get("environment"),
        )

    def _behaviour_clone(
        self, policy: RecurrentPolicyValueNet, traces: Sequence[WorkloadTrace]
    ) -> None:
        """Warm-start ``policy`` by imitating the configured expert heuristic."""
        from repro.agents.greedy import GreedyUtilizationPolicy
        from repro.agents.handcrafted import HandcraftedFSMPolicy
        from repro.agents.proportional import ProportionalAllocationPolicy
        from repro.drl.imitation import BehaviorCloningTrainer, ImitationConfig

        teachers = {
            "greedy_utilization": GreedyUtilizationPolicy,
            "handcrafted_fsm": HandcraftedFSMPolicy,
            "proportional_allocation": lambda: ProportionalAllocationPolicy(self.config.system),
        }
        teacher = teachers[self.config.bc_teacher]()
        trainer = BehaviorCloningTrainer(
            self.make_env(),
            ImitationConfig(epochs=self.config.bc_pretrain_epochs),
            rng=self._rngs.get("imitation"),
        )
        demos = trainer.collect_demonstrations(teacher, list(traces))
        trainer.fit(policy, demos)

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def run(
        self,
        standard_traces: Optional[Dict[str, WorkloadTrace]] = None,
        real_traces: Optional[Sequence[WorkloadTrace]] = None,
    ) -> PipelineResult:
        """Execute every stage and return all artefacts."""
        if standard_traces is None or real_traces is None:
            generated_standard, generated_real = self.build_workloads()
            standard_traces = standard_traces or generated_standard
            real_traces = list(real_traces) if real_traces is not None else generated_real
        else:
            real_traces = list(real_traces)

        train_real = real_traces[: max(1, len(real_traces) - self.config.num_eval_traces)]
        eval_traces = real_traces[-self.config.num_eval_traces:]

        env = self.make_env()
        policy = RecurrentPolicyValueNet(self.config.policy, rng=self._rngs.get("policy"))
        if self.config.bc_pretrain_epochs > 0:
            self._behaviour_clone(policy, list(standard_traces.values()))
        trainer = CurriculumTrainer(
            env,
            policy_config=self.config.policy,
            a2c_config=self.config.a2c,
            rng=self._rngs.get("trainer"),
        )
        policy, history = trainer.train_with_curriculum(
            list(standard_traces.values()), train_real, self.config.curriculum, policy=policy
        )

        # Collect the transition dataset by running the trained policy
        # greedily — all rollout traces in one vectorized lockstep batch.
        vector_env = VectorStorageAllocationEnv(self.config.system, self.config.reward)
        collector = BatchedRolloutCollector(vector_env, rng=self._rngs.get("rollout"))
        rollout_traces = train_real[: self.config.rollout_traces_for_extraction]
        trajectories = collector.collect_batch(policy, list(rollout_traces), greedy=True)
        dataset = TransitionDataset.from_trajectories(trajectories)

        qbn_trainer = QBNTrainer(self.config.qbn, rng=self._rngs.get("qbn"))
        qbn_result = qbn_trainer.train(
            dataset, policy=policy, fine_tune_epochs=self.config.qbn_fine_tune_epochs
        )

        extractor = FSMExtractor(
            qbn_result.observation_qbn, qbn_result.hidden_qbn, self.config.extraction
        )
        extraction = extractor.extract(dataset)
        interpretation = interpret_fsm(
            extraction.fsm, extraction.records, window=self.config.interpretation_window
        )

        return PipelineResult(
            policy=policy,
            training_history=history,
            qbn_result=qbn_result,
            extraction=extraction,
            interpretation=interpretation,
            standard_traces=dict(standard_traces),
            real_traces=list(real_traces),
            eval_traces=list(eval_traces),
            transition_dataset=dataset,
        )

    # ------------------------------------------------------------------
    # Evaluation + fidelity stages (engine-backed)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        result: PipelineResult,
        baselines: Sequence = (),
        traces: Optional[Sequence[WorkloadTrace]] = None,
        episode_seed: int = 0,
    ) -> Dict[str, EvaluationResult]:
        """Evaluate the run's artefacts (plus ``baselines``) on the eval set.

        Every agent is routed through one
        :class:`~repro.engine.evaluation.EvaluationEngine` lockstep
        batch — the DRL policy as batched (greedy) GRU forwards, the
        extracted FSM on its compiled dense tables when
        :meth:`~repro.fsm.agent.FSMPolicyAgent.compiled_routable` (the
        interpreted agent is replayed per-slot otherwise), baselines as
        per-slot replicas.  Results are keyed by agent name and
        bit-identical to :func:`~repro.pipeline.evaluation.evaluate_agent`.
        """
        from repro.pipeline.evaluation import compare_agents

        env = self.make_env()
        agents = list(baselines) + [result.drl_agent(env), result.fsm_agent(env)]
        return compare_agents(
            agents,
            list(traces) if traces is not None else list(result.eval_traces),
            system_config=self.config.system,
            reward_config=self.config.reward,
            episode_seed=episode_seed,
        )

    def verify_fidelity(
        self,
        result: PipelineResult,
        traces: Optional[Sequence[WorkloadTrace]] = None,
        episode_seed: int = 0,
    ) -> FidelityReport:
        """Verify the compiled tables against the interpreted FSM agent.

        Runs the same seeded evaluation set through the
        :class:`~repro.engine.backends.CompiledFSMBackend` and through
        per-slot replicas of the interpreted
        :class:`~repro.fsm.agent.FSMPolicyAgent` (the verification
        fallback), on one engine — then compares makespans and total
        rewards for exact equality.
        """
        from repro.engine.backends import AgentBatchBackend, CompiledFSMBackend
        from repro.engine.evaluation import EvaluationEngine

        engine = EvaluationEngine(self.config.system, self.config.reward)
        fsm_agent = result.fsm_agent(self.make_env())
        trace_list = list(traces) if traces is not None else list(result.eval_traces)
        interpreted = engine.evaluate(
            AgentBatchBackend.from_agent(fsm_agent, engine.encoder),
            trace_list,
            episode_seed=episode_seed,
            agent_name="extracted_fsm[interpreted]",
        )
        if not fsm_agent.compiled_routable():
            return FidelityReport(
                routable=False, identical=None, interpreted=interpreted, compiled=None
            )
        compiled = engine.evaluate(
            CompiledFSMBackend(fsm_agent.compile()),
            trace_list,
            episode_seed=episode_seed,
            agent_name="extracted_fsm[compiled]",
        )
        identical = (
            compiled.makespans == interpreted.makespans
            and compiled.total_rewards == interpreted.total_rewards
        )
        return FidelityReport(
            routable=True,
            identical=identical,
            interpreted=interpreted,
            compiled=compiled,
        )
