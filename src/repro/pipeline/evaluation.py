"""Policy evaluation: makespan measurement and controller comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.drl.policy import RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError
from repro.storage.metrics import EpisodeMetrics
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.tables import format_table


@dataclass
class EvaluationResult:
    """Per-trace makespans of one agent over an evaluation set."""

    agent_name: str
    trace_names: List[str] = field(default_factory=list)
    makespans: List[int] = field(default_factory=list)
    episodes: List[EpisodeMetrics] = field(default_factory=list)
    total_rewards: List[float] = field(default_factory=list)

    def mean_makespan(self) -> float:
        return float(np.mean(self.makespans)) if self.makespans else float("nan")

    def total_makespan(self) -> int:
        return int(np.sum(self.makespans)) if self.makespans else 0

    def mean_total_reward(self) -> float:
        return float(np.mean(self.total_rewards)) if self.total_rewards else float("nan")

    def as_dict(self) -> Dict[str, float]:
        return {
            "agent": self.agent_name,
            "mean_makespan": self.mean_makespan(),
            "total_makespan": float(self.total_makespan()),
            "mean_total_reward": self.mean_total_reward(),
            "traces": float(len(self.trace_names)),
        }


def evaluate_agent(
    agent: Agent,
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
) -> EvaluationResult:
    """Run ``agent`` over every trace and record the makespans.

    Every (agent, trace) episode is run with the same ``episode_seed`` so
    that the stochastic parts of the simulator (core idling) are identical
    across agents and the comparison isolates the allocation policy.
    """
    if not traces:
        raise ConfigurationError("evaluate_agent needs at least one trace")
    system_config = system_config or StorageSystemConfig()
    result = EvaluationResult(agent_name=agent.name)
    for index, trace in enumerate(traces):
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        observation = env.reset(trace, rng=episode_seed + index)
        agent.reset()
        rewards: List[float] = []
        while True:
            step = env.step(agent.act(observation))
            observation = step.observation
            rewards.append(step.reward)
            if step.done:
                break
        result.trace_names.append(trace.name)
        result.makespans.append(env.simulator.makespan)
        result.episodes.append(env.episode_metrics)
        # Reduce exactly like Trajectory.total_reward (np.sum) so the
        # batched path reports bit-identical totals.
        result.total_rewards.append(float(np.asarray(rewards).sum()))
    return result


def evaluate_policy_batched(
    policy: RecurrentPolicyValueNet,
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
    agent_name: str = "gru_drl",
) -> EvaluationResult:
    """Evaluate a recurrent policy over all traces in one lockstep batch.

    Produces the same per-trace makespans as running
    :func:`evaluate_agent` with a greedy
    :class:`~repro.drl.agent.DRLPolicyAgent` (each slot's environment is
    seeded ``episode_seed + index``, exactly like the sequential
    harness), but the whole evaluation set shares one batched GRU forward
    pass per interval.
    """
    if not traces:
        raise ConfigurationError("evaluate_policy_batched needs at least one trace")
    system_config = system_config or StorageSystemConfig()
    vector_env = VectorStorageAllocationEnv(
        system_config, reward_config, record_metrics=True
    )
    collector = BatchedRolloutCollector(vector_env)
    trajectories = collector.collect_batch(
        policy,
        list(traces),
        greedy=True,
        episode_rngs=[episode_seed + index for index in range(len(traces))],
    )
    result = EvaluationResult(agent_name=agent_name)
    for trajectory, episode in zip(trajectories, vector_env.episode_metrics()):
        result.trace_names.append(trajectory.trace_name)
        result.makespans.append(int(trajectory.makespan))
        result.episodes.append(episode)
        result.total_rewards.append(float(trajectory.total_reward))
    return result


def compare_agents(
    agents: Sequence[Agent],
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
    batched: bool = True,
) -> Dict[str, EvaluationResult]:
    """Evaluate several agents on the same traces with matched random seeds.

    With ``batched`` (the default), greedy DRL policy agents are routed
    through the vectorized evaluation path — identical makespans, one
    batched policy forward per interval instead of one call per trace.
    """
    from repro.drl.agent import DRLPolicyAgent
    from repro.env.observation import ObservationEncoder

    def _uses_default_normalisation(agent: "DRLPolicyAgent") -> bool:
        # The batched path normalises with the vector env's default
        # encoder; only route agents whose own encoder is equivalent,
        # otherwise the policy would see differently scaled features
        # than in evaluate_agent.
        default = ObservationEncoder(system_config or StorageSystemConfig())
        return default.is_equivalent(agent.encoder)

    results: Dict[str, EvaluationResult] = {}
    for agent in agents:
        if (
            batched
            and isinstance(agent, DRLPolicyAgent)
            and agent.epsilon == 0.0
            and _uses_default_normalisation(agent)
        ):
            results[agent.name] = evaluate_policy_batched(
                agent.policy,
                traces,
                system_config=system_config,
                reward_config=reward_config,
                episode_seed=episode_seed,
                agent_name=agent.name,
            )
            continue
        results[agent.name] = evaluate_agent(
            agent,
            traces,
            system_config=system_config,
            reward_config=reward_config,
            episode_seed=episode_seed,
        )
    return results


def comparison_table(results: Dict[str, EvaluationResult]) -> str:
    """Render a per-trace makespan table (rows = traces, columns = agents)."""
    if not results:
        raise ConfigurationError("comparison_table needs at least one result")
    agent_names = list(results.keys())
    first = results[agent_names[0]]
    headers = ["trace"] + agent_names
    rows = []
    for index, trace_name in enumerate(first.trace_names):
        row = [trace_name]
        for name in agent_names:
            row.append(results[name].makespans[index])
        rows.append(row)
    mean_row = ["MEAN"] + [round(results[name].mean_makespan(), 2) for name in agent_names]
    rows.append(mean_row)
    return format_table(headers, rows, title="Makespan comparison")


def relative_reduction(baseline: EvaluationResult, improved: EvaluationResult) -> float:
    """Mean relative makespan reduction of ``improved`` vs ``baseline`` (positive = better)."""
    base = baseline.mean_makespan()
    if base <= 0 or np.isnan(base):
        raise ConfigurationError("baseline makespan must be positive")
    return float((base - improved.mean_makespan()) / base)
