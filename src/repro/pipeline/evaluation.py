"""Policy evaluation: makespan measurement and controller comparison.

:func:`evaluate_agent` is the sequential reference harness (one scalar
environment, one ``agent.act`` per interval).  Everything else routes
through the :class:`~repro.engine.evaluation.EvaluationEngine`, which
runs the whole evaluation set in one lockstep batch per backend —
compiled-FSM tables, batched GRU forwards or per-slot heuristic replicas
— and is pinned bit-identical to the reference (same ``episode_seed +
index`` seeding, same ``np.sum`` reward reduction).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.drl.policy import RecurrentPolicyValueNet
from repro.engine.backends import GRUPolicyBackend
from repro.engine.evaluation import EvaluationEngine, EvaluationResult, backend_for_agent
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.errors import ConfigurationError
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.tables import format_table

__all__ = [
    "EvaluationResult",
    "compare_agents",
    "comparison_table",
    "evaluate_agent",
    "evaluate_policy_batched",
    "relative_reduction",
]


def evaluate_agent(
    agent: Agent,
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
) -> EvaluationResult:
    """Run ``agent`` over every trace and record the makespans.

    Every (agent, trace) episode is run with the same ``episode_seed`` so
    that the stochastic parts of the simulator (core idling) are identical
    across agents and the comparison isolates the allocation policy.
    """
    if not traces:
        raise ConfigurationError("evaluate_agent needs at least one trace")
    system_config = system_config or StorageSystemConfig()
    result = EvaluationResult(agent_name=agent.name)
    for index, trace in enumerate(traces):
        env = StorageAllocationEnv(system_config, reward_config=reward_config)
        observation = env.reset(trace, rng=episode_seed + index)
        agent.reset()
        rewards = []
        while True:
            step = env.step(agent.act(observation))
            observation = step.observation
            rewards.append(step.reward)
            if step.done:
                break
        result.trace_names.append(trace.name)
        result.makespans.append(env.simulator.makespan)
        result.episodes.append(env.episode_metrics)
        # Reduce exactly like Trajectory.total_reward (np.sum) so the
        # batched path reports bit-identical totals.
        result.total_rewards.append(float(np.asarray(rewards).sum()))
    return result


def evaluate_policy_batched(
    policy: RecurrentPolicyValueNet,
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
    agent_name: str = "gru_drl",
) -> EvaluationResult:
    """Evaluate a recurrent policy over all traces in one lockstep batch.

    Produces the same per-trace makespans as running
    :func:`evaluate_agent` with a greedy
    :class:`~repro.drl.agent.DRLPolicyAgent` (each slot's environment is
    seeded ``episode_seed + index``, exactly like the sequential
    harness), but the whole evaluation set shares one batched GRU forward
    pass per interval.
    """
    engine = EvaluationEngine(system_config, reward_config)
    return engine.evaluate(
        GRUPolicyBackend(policy),
        traces,
        episode_seed=episode_seed,
        agent_name=agent_name,
    )


def compare_agents(
    agents: Sequence[Agent],
    traces: Sequence[WorkloadTrace],
    system_config: Optional[StorageSystemConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    episode_seed: int = 0,
    batched: bool = True,
) -> Dict[str, EvaluationResult]:
    """Evaluate several agents on the same traces with matched random seeds.

    With ``batched`` (the default), every agent the engine can replay
    faithfully is routed through one lockstep batch per agent — greedy
    DRL agents as batched GRU forwards, routable extracted FSMs on their
    compiled dense tables, heuristics as per-slot replicas (see
    :func:`~repro.engine.evaluation.backend_for_agent`).  Agents the
    lockstep lift cannot reproduce bit for bit (exploring DRL agents,
    shared-rng agents) fall back to the sequential reference harness;
    either way the numbers are identical.
    """
    # One engine — and therefore one default encoder and one vector env
    # — serves every routed agent in this comparison; per-agent routing
    # only builds the backend.
    engine = EvaluationEngine(system_config, reward_config) if batched else None
    results: Dict[str, EvaluationResult] = {}
    for agent in agents:
        backend = backend_for_agent(agent, engine.encoder) if engine is not None else None
        if backend is not None:
            results[agent.name] = engine.evaluate(
                backend,
                traces,
                episode_seed=episode_seed,
                agent_name=agent.name,
            )
            continue
        results[agent.name] = evaluate_agent(
            agent,
            traces,
            system_config=system_config,
            reward_config=reward_config,
            episode_seed=episode_seed,
        )
    return results


def comparison_table(results: Dict[str, EvaluationResult]) -> str:
    """Render a per-trace makespan table (rows = traces, columns = agents)."""
    if not results:
        raise ConfigurationError("comparison_table needs at least one result")
    agent_names = list(results.keys())
    first = results[agent_names[0]]
    headers = ["trace"] + agent_names
    rows = []
    for index, trace_name in enumerate(first.trace_names):
        row = [trace_name]
        for name in agent_names:
            row.append(results[name].makespans[index])
        rows.append(row)
    mean_row = ["MEAN"] + [round(results[name].mean_makespan(), 2) for name in agent_names]
    rows.append(mean_row)
    return format_table(headers, rows, title="Makespan comparison")


def relative_reduction(baseline: EvaluationResult, improved: EvaluationResult) -> float:
    """Mean relative makespan reduction of ``improved`` vs ``baseline`` (positive = better)."""
    base = baseline.mean_makespan()
    if base <= 0 or np.isnan(base):
        raise ConfigurationError("baseline makespan must be positive")
    return float((base - improved.mean_makespan()) / base)
