"""Experiment runners that regenerate the paper's figures.

Each function runs a scaled-down but structurally faithful version of
one evaluation figure and returns a plain-data result object that the
benchmark harness prints and EXPERIMENTS.md records.  The scale knobs
(epochs, trace counts, durations) default to values that complete in
minutes on a laptop; passing the paper-scale values reproduces the full
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.agents.default import DefaultPolicy
from repro.agents.handcrafted import HandcraftedFSMPolicy
from repro.drl.a2c import A2CConfig, TrainingHistory
from repro.drl.curriculum import CurriculumConfig, CurriculumTrainer
from repro.drl.policy import PolicyConfig
from repro.env.reward import RewardConfig
from repro.fsm.interpretation import StateHistoryProfile, history_profile
from repro.pipeline.evaluation import (
    EvaluationResult,
    compare_agents,
    comparison_table,
    relative_reduction,
)
from repro.pipeline.learning_aided import LearningAidedPipeline, PipelineConfig, PipelineResult
from repro.qbn.trainer import QBNTrainingConfig
from repro.fsm.extraction import ExtractionConfig
from repro.storage.simulator import StorageSystemConfig
from repro.utils.tables import format_series, format_table
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler, SamplerConfig


# ----------------------------------------------------------------------
# Shared scaled-down pipeline configuration
# ----------------------------------------------------------------------
def small_pipeline_config(
    seed: int = 0,
    standard_epochs: int = 20,
    real_epochs: int = 20,
    hidden_size: int = 48,
    trace_duration: int = 48,
    num_real_traces: int = 20,
    num_eval_traces: int = 10,
) -> PipelineConfig:
    """A pipeline configuration small enough for CI-style runs.

    The paper-scale equivalents are: GRU hidden 128, 1000 + 1000 epochs of
    pure A2C on the inverse-makespan reward, QBN latent 64, 50 real traces.
    At this scaled-down budget the pipeline relies on the documented
    sample-efficiency deviations (behaviour-cloning warm start from the
    greedy-utilisation heuristic, shaped bottleneck-pressure reward and a
    conservative A2C fine-tuning learning rate); see DESIGN.md and
    EXPERIMENTS.md.
    """
    return PipelineConfig(
        system=StorageSystemConfig(),
        generator=GeneratorConfig(target_load=1.0),
        sampler=SamplerConfig(),
        reward=RewardConfig(
            mode="bottleneck_pressure", step_penalty=0.05, balance_scale=0.05
        ),
        policy=PolicyConfig(hidden_size=hidden_size),
        a2c=A2CConfig(
            learning_rate=3e-5, gamma=0.95, n_step=8, entropy_coef=0.01, epsilon=0.02
        ),
        curriculum=CurriculumConfig(standard_epochs=standard_epochs, real_epochs=real_epochs),
        qbn=QBNTrainingConfig(
            epochs=35, observation_latent_dim=12, hidden_latent_dim=16
        ),
        extraction=ExtractionConfig(min_state_visits=8),
        standard_trace_duration=trace_duration,
        num_real_traces=num_real_traces,
        num_eval_traces=num_eval_traces,
        rollout_traces_for_extraction=5,
        qbn_fine_tune_epochs=20,
        bc_pretrain_epochs=30,
        bc_teacher="greedy_utilization",
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 3 — convergence of curriculum learning vs from-scratch training
# ----------------------------------------------------------------------
@dataclass
class Figure3Result:
    """Learning curves for the curriculum and from-scratch regimes."""

    curriculum_history: TrainingHistory
    scratch_history: TrainingHistory
    smoothing_window: int = 10

    def curriculum_curve(self) -> np.ndarray:
        return self.curriculum_history.smoothed_makespans(self.smoothing_window)

    def scratch_curve(self) -> np.ndarray:
        return self.scratch_history.smoothed_makespans(self.smoothing_window)

    def final_makespans(self) -> Dict[str, float]:
        return {
            "curriculum": self.curriculum_history.final_makespan(self.smoothing_window),
            "from_scratch": self.scratch_history.final_makespan(self.smoothing_window),
        }

    def curriculum_converges_better(self) -> bool:
        finals = self.final_makespans()
        return finals["curriculum"] <= finals["from_scratch"]

    def render(self) -> str:
        lines = ["Figure 3 — convergence comparison (lower makespan is better)"]
        curve_c = self.curriculum_curve()
        curve_s = self.scratch_curve()
        lines.append(
            format_series("curriculum  ", list(range(len(curve_c))), curve_c, floatfmt=".1f")
        )
        lines.append(
            format_series("from_scratch", list(range(len(curve_s))), curve_s, floatfmt=".1f")
        )
        finals = self.final_makespans()
        lines.append(
            f"final smoothed makespan: curriculum={finals['curriculum']:.1f} "
            f"from_scratch={finals['from_scratch']:.1f}"
        )
        return "\n".join(lines)


def run_figure3(
    config: Optional[PipelineConfig] = None,
    scratch_epochs: Optional[int] = None,
    seed: int = 0,
) -> Figure3Result:
    """Reproduce Figure 3: curriculum learning vs training from scratch.

    The curriculum agent trains ``standard_epochs`` on standard traces
    then ``real_epochs`` on real traces; the comparison agent trains the
    same total number of epochs on real traces only.
    """
    config = config or small_pipeline_config(seed=seed)
    pipeline = LearningAidedPipeline(config)
    standard, real = pipeline.build_workloads()
    train_real = real[: max(1, len(real) - config.num_eval_traces)]

    env = pipeline.make_env()
    trainer = CurriculumTrainer(
        env, policy_config=config.policy, a2c_config=config.a2c, rng=seed
    )
    _, curriculum_history = trainer.train_with_curriculum(
        list(standard.values()), train_real, config.curriculum
    )

    scratch_trainer = CurriculumTrainer(
        pipeline.make_env(), policy_config=config.policy, a2c_config=config.a2c, rng=seed + 1
    )
    total_epochs = scratch_epochs or config.curriculum.total_epochs
    _, scratch_history = scratch_trainer.train_from_scratch(train_real, total_epochs)

    return Figure3Result(curriculum_history=curriculum_history, scratch_history=scratch_history)


# ----------------------------------------------------------------------
# Figure 4 — makespan of Default / Handcrafted / GRU DRL / Extracted FSM
# ----------------------------------------------------------------------
@dataclass
class Figure4Result:
    """Per-trace makespans of the four controllers over the evaluation traces."""

    results: Dict[str, EvaluationResult]
    pipeline_result: PipelineResult

    def mean_makespans(self) -> Dict[str, float]:
        return {name: result.mean_makespan() for name, result in self.results.items()}

    def reduction_vs_default(self) -> Dict[str, float]:
        default = self.results["default"]
        return {
            name: relative_reduction(default, result)
            for name, result in self.results.items()
            if name != "default"
        }

    def drl_vs_handcrafted_reduction(self) -> float:
        return relative_reduction(self.results["handcrafted_fsm"], self.results["gru_drl"])

    def fsm_vs_drl_gap(self) -> float:
        """Relative makespan increase of the extracted FSM over the DRL policy."""
        drl = self.results["gru_drl"].mean_makespan()
        fsm = self.results["extracted_fsm"].mean_makespan()
        return float((fsm - drl) / drl)

    def render(self) -> str:
        lines = ["Figure 4 — performance comparison over real workload instances"]
        lines.append(comparison_table(self.results))
        reductions = self.reduction_vs_default()
        lines.append(
            "reduction vs default: "
            + ", ".join(f"{name}={100 * value:.1f}%" for name, value in reductions.items())
        )
        lines.append(
            f"DRL vs handcrafted reduction: {100 * self.drl_vs_handcrafted_reduction():.1f}%  |  "
            f"extracted FSM vs DRL gap: {100 * self.fsm_vs_drl_gap():+.2f}%"
        )
        return "\n".join(lines)


def run_figure4(
    config: Optional[PipelineConfig] = None,
    pipeline_result: Optional[PipelineResult] = None,
    seed: int = 0,
) -> Figure4Result:
    """Reproduce Figure 4: compare the four controllers on the evaluation traces."""
    config = config or small_pipeline_config(seed=seed)
    pipeline = LearningAidedPipeline(config)
    result = pipeline_result or pipeline.run()

    env = pipeline.make_env()
    agents = [
        DefaultPolicy(),
        HandcraftedFSMPolicy(),
        result.drl_agent(env),
        result.fsm_agent(env),
    ]
    comparison = compare_agents(
        agents,
        result.eval_traces,
        system_config=config.system,
        reward_config=config.reward,
        episode_seed=seed,
        batched=True,
    )
    return Figure4Result(results=comparison, pipeline_result=result)


# ----------------------------------------------------------------------
# Figure 5 — extracted FSM structure and fan-in/fan-out interpretation
# ----------------------------------------------------------------------
@dataclass
class Figure5Result:
    """The extracted FSM, its rendering and per-state statistics."""

    pipeline_result: PipelineResult
    summary_table: str
    dot_graph: str
    num_states: int
    action_names: List[str] = field(default_factory=list)
    noop_is_most_visited: bool = False

    def render(self) -> str:
        lines = ["Figure 5 — extracted FSM visualisation and statistics"]
        lines.append(self.summary_table)
        lines.append(f"states={self.num_states} actions={sorted(set(self.action_names))}")
        lines.append(f"most visited state is Noop: {self.noop_is_most_visited}")
        return "\n".join(lines)


def run_figure5(
    config: Optional[PipelineConfig] = None,
    pipeline_result: Optional[PipelineResult] = None,
    seed: int = 0,
) -> Figure5Result:
    """Reproduce Figure 5: extract the FSM and compute its state statistics."""
    from repro.fsm.render import fsm_summary_table, fsm_to_dot

    config = config or small_pipeline_config(seed=seed)
    if pipeline_result is None:
        pipeline_result = LearningAidedPipeline(config).run()
    fsm = pipeline_result.extraction.fsm
    records = pipeline_result.extraction.records
    states = fsm.states_by_id()
    most_visited = max(states, key=lambda s: s.visit_count) if states else None
    return Figure5Result(
        pipeline_result=pipeline_result,
        summary_table=fsm_summary_table(fsm, records),
        dot_graph=fsm_to_dot(fsm),
        num_states=fsm.num_states,
        action_names=[state.action_name for state in states],
        noop_is_most_visited=bool(most_visited and most_visited.action_name == "Noop"),
    )


# ----------------------------------------------------------------------
# Figure 6 — history information preceding a non-obvious state
# ----------------------------------------------------------------------
@dataclass
class Figure6Result:
    """History profile of the analysed state (the paper's S2)."""

    state_label: str
    profile: StateHistoryProfile

    def render(self) -> str:
        lines = [f"Figure 6 — history information of {self.state_label} "
                 f"(action {self.profile.action}, {self.profile.num_entries} entries)"]
        steps = list(range(-self.profile.window, 0))
        lines.append(
            format_series("write_kb ", steps, self.profile.write_intensity, floatfmt=".0f")
        )
        lines.append(
            format_series("read_kb  ", steps, self.profile.read_intensity, floatfmt=".0f")
        )
        lines.append(
            format_series(
                "cap_ratio", steps, self.profile.capacity_ratio_series, floatfmt=".3f"
            )
        )
        lines.append(
            f"write trend={self.profile.write_trend():+.1f} KB/interval, "
            f"capacity-ratio trend={self.profile.capacity_ratio_trend():+.4f}/interval"
        )
        return "\n".join(lines)


def run_figure6(
    config: Optional[PipelineConfig] = None,
    pipeline_result: Optional[PipelineResult] = None,
    window: int = 10,
    seed: int = 0,
) -> Figure6Result:
    """Reproduce Figure 6: history window before entering an interesting state.

    The paper analyses S2, a state whose action is *not* the obvious
    low-to-high utilisation move.  We pick the most-entered state whose
    action migrates a core toward KV or RV (falling back to the most
    visited non-Noop state, then to the most visited state overall).
    """
    config = config or small_pipeline_config(seed=seed)
    if pipeline_result is None:
        pipeline_result = LearningAidedPipeline(config).run()
    fsm = pipeline_result.extraction.fsm
    records = pipeline_result.extraction.records

    states = fsm.states_by_id()
    toward_kv_rv = [
        s for s in states if s.action_name in ("N=>K", "N=>R", "K=>R", "R=>K")
    ]
    non_noop = [s for s in states if s.action_name != "Noop"]
    candidates = toward_kv_rv or non_noop or states
    target = max(candidates, key=lambda s: s.visit_count)
    profile = history_profile(fsm, records, target.label, window=window)
    return Figure6Result(state_label=target.label, profile=profile)


# ----------------------------------------------------------------------
# Baseline-only comparison (used by tests and the §4.3.2 text claim)
# ----------------------------------------------------------------------
def run_baseline_comparison(
    system_config: Optional[StorageSystemConfig] = None,
    num_traces: int = 10,
    seed: int = 0,
    duration: int = 48,
) -> Dict[str, float]:
    """Compare only Default and Handcrafted FSM (no training involved)."""
    system_config = system_config or StorageSystemConfig()
    generator = StandardWorkloadGenerator(system_config, GeneratorConfig(), rng=seed)
    standard = generator.generate_suite(duration=duration)
    sampler = RealTraceSampler(standard, rng=seed + 1)
    traces = sampler.sample_many(num_traces)
    comparison = compare_agents(
        [DefaultPolicy(), HandcraftedFSMPolicy()], traces,
        system_config=system_config, episode_seed=seed,
    )
    default = comparison["default"]
    handcrafted = comparison["handcrafted_fsm"]
    return {
        "default_mean": default.mean_makespan(),
        "handcrafted_mean": handcrafted.mean_makespan(),
        "handcrafted_reduction": relative_reduction(default, handcrafted),
    }
