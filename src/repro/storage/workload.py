"""Workload model: per-interval IO mixes and whole traces.

A workload interval ``w(t)`` is the paper's Definition 1: a vector ``S``
of IO type descriptors (fixed by :func:`repro.storage.iorequest.standard_io_types`),
a vector ``I`` of mixing ratios that sums to one, and a scalar ``Q``
giving the total number of IO requests in the interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.storage.iorequest import NUM_IO_TYPES, IORequestType, standard_io_types

_RATIO_TOLERANCE = 1e-6

# Immutable per-type constants shared by every interval.  These sit on the
# simulator's per-interval hot path, so they are materialised once instead
# of being rebuilt from the IORequestType objects on every call.
_IO_TYPES = tuple(standard_io_types())
_IO_SIZES_KB = np.array([t.size_kb for t in _IO_TYPES])
_IO_SIZES_KB.setflags(write=False)
_SIGNED_SIZES = np.array([t.signed_size for t in _IO_TYPES])
_SIGNED_SIZES.setflags(write=False)
_READ_INDICES = [t.index for t in _IO_TYPES if t.is_read]
_WRITE_INDICES = [t.index for t in _IO_TYPES if t.is_write]


@dataclass(frozen=True)
class WorkloadInterval:
    """IO mix arriving during one time interval.

    Attributes
    ----------
    ratios:
        The ``I`` vector — fraction of requests of each of the 14 types.
        Must be non-negative and sum to 1 (within tolerance).
    total_requests:
        The scalar ``Q`` — number of IO requests arriving in the interval.
    """

    ratios: np.ndarray
    total_requests: float

    def __post_init__(self) -> None:
        ratios = np.asarray(self.ratios, dtype=float)
        if ratios.shape != (NUM_IO_TYPES,):
            raise WorkloadError(
                f"ratios must have shape ({NUM_IO_TYPES},), got {ratios.shape}"
            )
        if np.any(ratios < -_RATIO_TOLERANCE):
            raise WorkloadError("ratios must be non-negative")
        total = float(ratios.sum())
        if abs(total - 1.0) > 1e-3:
            raise WorkloadError(f"ratios must sum to 1, got {total:.6f}")
        if self.total_requests < 0:
            raise WorkloadError(
                f"total_requests must be non-negative, got {self.total_requests}"
            )
        # Normalise exactly and freeze the array.
        normalised = np.clip(ratios, 0.0, None)
        normalised = normalised / normalised.sum() if normalised.sum() > 0 else normalised
        object.__setattr__(self, "ratios", normalised)
        object.__setattr__(self, "total_requests", float(self.total_requests))
        self.ratios.setflags(write=False)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def request_counts(self, io_types: Optional[Sequence[IORequestType]] = None) -> np.ndarray:
        """Expected number of requests of each type in this interval."""
        return self.ratios * self.total_requests

    def bytes_by_type(self, io_types: Optional[Sequence[IORequestType]] = None) -> np.ndarray:
        """Expected kilobytes of IO of each type in this interval."""
        if io_types is None:
            return self.request_counts() * _IO_SIZES_KB
        sizes = np.array([t.size_kb for t in io_types])
        return self.request_counts() * sizes

    def total_kb(self) -> float:
        """Total expected kilobytes across all types."""
        return self._derived()["total_kb"]

    def read_kb(self) -> float:
        return self._derived()["read_kb"]

    def write_kb(self) -> float:
        return self._derived()["write_kb"]

    def _derived(self) -> Dict[str, float]:
        """Lazily computed per-interval totals.

        The interval is frozen, so these values never change once
        computed; the simulator asks for them several times per step.
        """
        cache = getattr(self, "_derived_cache", None)
        if cache is None:
            per_type = self.bytes_by_type()
            values = per_type.tolist()
            # Plain left-to-right Python sums in type-index order — the
            # same accumulation the original per-call implementation
            # performed, minus the numpy-scalar boxing.
            cache = {
                "total_kb": float(per_type.sum()),
                "read_kb": float(sum(values[i] for i in _READ_INDICES)),
                "write_kb": float(sum(values[i] for i in _WRITE_INDICES)),
            }
            object.__setattr__(self, "_derived_cache", cache)
        return cache

    def write_fraction(self) -> float:
        """Fraction of IO bytes that are writes (0 when the interval is empty)."""
        total = self.total_kb()
        if total <= 0:
            return 0.0
        return self.write_kb() / total

    def size_vector(self) -> np.ndarray:
        """The paper's ``S`` vector: signed sizes (+read / -write) of the 14 types.

        The vector is identical for every interval, so a shared read-only
        array is returned instead of a fresh allocation per call.
        """
        return _SIGNED_SIZES

    def as_feature_vector(self) -> np.ndarray:
        """Concatenate S, I and Q into the 29-value workload descriptor."""
        return np.concatenate([self.size_vector(), self.ratios, [self.total_requests]])

    def scaled(self, factor: float) -> "WorkloadInterval":
        """Return a copy with the request count scaled by ``factor``."""
        if factor < 0:
            raise WorkloadError(f"scale factor must be non-negative, got {factor}")
        return WorkloadInterval(self.ratios.copy(), self.total_requests * factor)

    @staticmethod
    def empty() -> "WorkloadInterval":
        """An interval with no arriving IO (uniform ratios, zero requests).

        Intervals are immutable, so one shared instance serves every
        caller (the simulator asks for it once per drain interval).
        """
        return _EMPTY_INTERVAL


_EMPTY_INTERVAL = WorkloadInterval(np.full(NUM_IO_TYPES, 1.0 / NUM_IO_TYPES), 0.0)


@dataclass
class WorkloadTrace:
    """A named sequence of workload intervals.

    ``metadata`` carries provenance (profile name, generator parameters,
    snippet boundaries for sampled "real" traces, …).
    """

    name: str
    intervals: List[WorkloadInterval] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("trace name must be non-empty")
        self.intervals = list(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[WorkloadInterval]:
        return iter(self.intervals)

    def __getitem__(self, index: int) -> WorkloadInterval:
        return self.intervals[index]

    @property
    def duration(self) -> int:
        """Number of intervals with arriving IO (the paper's ``T``)."""
        return len(self.intervals)

    def append(self, interval: WorkloadInterval) -> None:
        if not isinstance(interval, WorkloadInterval):
            raise WorkloadError(f"expected WorkloadInterval, got {type(interval)!r}")
        self.intervals.append(interval)

    def total_kb(self) -> float:
        return float(sum(interval.total_kb() for interval in self.intervals))

    def total_requests(self) -> float:
        return float(sum(interval.total_requests for interval in self.intervals))

    def mean_write_fraction(self) -> float:
        if not self.intervals:
            return 0.0
        return float(np.mean([interval.write_fraction() for interval in self.intervals]))

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "WorkloadTrace":
        """Return a sub-trace covering intervals ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self.intervals):
            raise WorkloadError(
                f"invalid slice [{start}, {stop}) for trace of length {len(self.intervals)}"
            )
        return WorkloadTrace(
            name=name or f"{self.name}[{start}:{stop}]",
            intervals=[self.intervals[i] for i in range(start, stop)],
            metadata={**self.metadata, "sliced_from": self.name, "slice": (start, stop)},
        )

    @staticmethod
    def concatenate(traces: Iterable["WorkloadTrace"], name: str) -> "WorkloadTrace":
        """Concatenate several traces end to end."""
        traces = list(traces)
        if not traces:
            raise WorkloadError("cannot concatenate an empty list of traces")
        intervals: List[WorkloadInterval] = []
        sources: List[str] = []
        for trace in traces:
            intervals.extend(trace.intervals)
            sources.append(trace.name)
        return WorkloadTrace(name=name, intervals=intervals, metadata={"sources": sources})

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Export as arrays: ``ratios`` (T, 14) and ``total_requests`` (T,)."""
        if not self.intervals:
            return {"ratios": np.zeros((0, NUM_IO_TYPES)), "total_requests": np.zeros(0)}
        return {
            "ratios": np.stack([interval.ratios for interval in self.intervals]),
            "total_requests": np.array(
                [interval.total_requests for interval in self.intervals]
            ),
        }

    @staticmethod
    def from_arrays(
        name: str,
        ratios: np.ndarray,
        total_requests: np.ndarray,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "WorkloadTrace":
        """Rebuild a trace from arrays produced by :meth:`to_arrays`."""
        ratios = np.asarray(ratios, dtype=float)
        total_requests = np.asarray(total_requests, dtype=float)
        if ratios.ndim != 2 or ratios.shape[1] != NUM_IO_TYPES:
            raise WorkloadError(f"ratios must be (T, {NUM_IO_TYPES}), got {ratios.shape}")
        if total_requests.shape != (ratios.shape[0],):
            raise WorkloadError(
                f"total_requests must be (T,) matching ratios, got {total_requests.shape}"
            )
        intervals = [
            WorkloadInterval(ratios[t], float(total_requests[t]))
            for t in range(ratios.shape[0])
        ]
        return WorkloadTrace(name=name, intervals=intervals, metadata=dict(metadata or {}))
