"""The three CPU levels of the storage architecture."""

from __future__ import annotations

import enum
from typing import Tuple


class Level(enum.Enum):
    """CPU residency level (paper Figure 1).

    * ``NORMAL`` — cores serving IO from the shared cache.
    * ``KV`` — Key-Value storage level, computing key-value mappings.
    * ``RV`` — Resource Volume level, disk-resource virtualisation.
    """

    NORMAL = "NORMAL"
    KV = "KV"
    RV = "RV"

    @property
    def index(self) -> int:
        return LEVELS.index(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


LEVELS: Tuple[Level, Level, Level] = (Level.NORMAL, Level.KV, Level.RV)
"""Canonical level ordering used for vectors (NORMAL, KV, RV)."""
