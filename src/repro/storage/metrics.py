"""Per-interval and per-episode measurement records emitted by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Tuple

import numpy as np

from repro.storage.levels import LEVELS, Level
from repro.storage.migration import MigrationAction


class StepValues(NamedTuple):
    """Lightweight per-interval summary, values in LEVELS order.

    Carries exactly the quantities the reward functions consume so that
    metrics-free execution (the vectorized environment's default) can
    compute identical rewards without materialising an
    :class:`IntervalMetrics` record per interval.
    """

    incoming_kb: Tuple[float, ...]
    processed_kb: Tuple[float, ...]
    capacity_kb: Tuple[float, ...]
    utilization: Tuple[float, ...]
    backlog_kb: Tuple[float, ...]


@dataclass(frozen=True)
class IntervalMetrics:
    """Everything the simulator measured during one time interval."""

    interval: int
    action: MigrationAction
    migration_applied: bool
    core_counts: Dict[Level, int]
    utilization: Dict[Level, float]
    incoming_kb: Dict[Level, float]
    processed_kb: Dict[Level, float]
    backlog_kb: Dict[Level, float]
    capacity_kb: Dict[Level, float]
    cache_miss_rate: float
    idle_cores: Dict[Level, int]

    @property
    def total_backlog_kb(self) -> float:
        return float(sum(self.backlog_kb.values()))

    @property
    def total_processed_kb(self) -> float:
        return float(sum(self.processed_kb.values()))

    def counts_vector(self) -> np.ndarray:
        return np.array([self.core_counts[level] for level in LEVELS], dtype=float)

    def utilization_vector(self) -> np.ndarray:
        return np.array([self.utilization[level] for level in LEVELS], dtype=float)


@dataclass
class EpisodeMetrics:
    """Aggregated statistics over a full simulated episode."""

    trace_name: str = ""
    intervals: List[IntervalMetrics] = field(default_factory=list)
    truncated: bool = False

    def record(self, metrics: IntervalMetrics) -> None:
        self.intervals.append(metrics)

    @property
    def makespan(self) -> int:
        """Number of intervals needed to finish all IO (the paper's K)."""
        return len(self.intervals)

    @property
    def migrations(self) -> int:
        return sum(1 for m in self.intervals if m.migration_applied)

    @property
    def total_processed_kb(self) -> float:
        return float(sum(m.total_processed_kb for m in self.intervals))

    def mean_utilization(self) -> Dict[Level, float]:
        if not self.intervals:
            return {level: 0.0 for level in LEVELS}
        return {
            level: float(np.mean([m.utilization[level] for m in self.intervals]))
            for level in LEVELS
        }

    def utilization_series(self, level: Level) -> np.ndarray:
        return np.array([m.utilization[level] for m in self.intervals])

    def backlog_series(self) -> np.ndarray:
        return np.array([m.total_backlog_kb for m in self.intervals])

    def action_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for m in self.intervals:
            key = m.action.short_name
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def as_summary(self) -> Dict[str, float]:
        means = self.mean_utilization()
        return {
            "makespan": float(self.makespan),
            "migrations": float(self.migrations),
            "truncated": float(self.truncated),
            "total_processed_kb": self.total_processed_kb,
            "mean_util_normal": means[Level.NORMAL],
            "mean_util_kv": means[Level.KV],
            "mean_util_rv": means[Level.RV],
        }
