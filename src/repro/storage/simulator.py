"""The storage-system simulator: core migration, IO processing and makespan.

One :class:`StorageSimulator` instance simulates a single episode: a
workload trace of ``T`` intervals is injected interval by interval, a
controller chooses one of the seven migration actions per interval, and
the episode ends once every injected kilobyte of IO work has been
processed.  The number of elapsed intervals is the makespan ``K``
(``K >= T``), the quantity all of the paper's experiments compare.

Work model
----------
For an interval's workload ``w(t)`` the demand placed on each level is

* NORMAL: every IO request's payload must be read from / written to the
  shared cache, so NORMAL receives the full ``total_kb`` of the interval.
* KV / RV: write requests always require key-value and resource-volume
  work (``kv_write_factor`` / ``rv_write_factor`` kilobytes of work per
  kilobyte of write payload); read requests only require KV/RV work when
  they miss the cache (probability from the cache model), weighted by
  ``kv_read_miss_factor`` / ``rv_read_miss_factor``.

Each level keeps a backlog of unfinished work; unfinished requests are
postponed to later intervals (paper Section 2, property 2).  Work inside
a level is assigned to cores by the polling dispatcher, which does not
redistribute work away from slow (penalised or idle) cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.storage.cache import CacheModel, ConstantCacheModel
from repro.storage.cores import CorePool
from repro.storage.dispatcher import get_dispatcher
from repro.storage.levels import LEVELS, Level
from repro.storage.metrics import EpisodeMetrics, IntervalMetrics, StepValues
from repro.storage.migration import MigrationAction, action_from_index
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass
class StorageSystemConfig:
    """Static parameters of the simulated storage array.

    Defaults are chosen so that the standard workload profiles load the
    array to roughly 70–120 % of its aggregate capability, which is the
    regime in which core placement matters.
    """

    total_cores: int = 12
    initial_allocation: Dict[str, int] = field(
        default_factory=lambda: {"NORMAL": 6, "KV": 3, "RV": 3}
    )
    core_capability_kb: float = 40_000.0
    cache_miss_rate: float = 0.3
    migration_penalty: float = 0.2
    migration_cooldown_intervals: int = 1
    min_cores_per_level: int = 1
    idle_rate: float = 0.04
    kv_write_factor: float = 0.9
    rv_write_factor: float = 0.7
    kv_read_miss_factor: float = 0.5
    rv_read_miss_factor: float = 0.35
    dispatcher: str = "polling"
    max_intervals_factor: float = 12.0
    max_intervals_slack: int = 50

    def validate(self) -> None:
        allocation_total = sum(int(v) for v in self.initial_allocation.values())
        if allocation_total != self.total_cores:
            raise ConfigurationError(
                f"initial allocation sums to {allocation_total} but total_cores={self.total_cores}"
            )
        if self.total_cores < 3 * self.min_cores_per_level:
            raise ConfigurationError(
                f"{self.total_cores} cores cannot satisfy min {self.min_cores_per_level} per level"
            )
        if self.core_capability_kb <= 0:
            raise ConfigurationError("core_capability_kb must be positive")
        if not 0.0 <= self.cache_miss_rate <= 1.0:
            raise ConfigurationError("cache_miss_rate must be in [0, 1]")
        if not 0.0 <= self.migration_penalty < 1.0:
            raise ConfigurationError("migration_penalty must be in [0, 1)")
        if self.migration_cooldown_intervals < 0:
            raise ConfigurationError("migration_cooldown_intervals must be >= 0")
        if self.idle_rate < 0:
            raise ConfigurationError("idle_rate must be non-negative")
        for name in (
            "kv_write_factor",
            "rv_write_factor",
            "kv_read_miss_factor",
            "rv_read_miss_factor",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.max_intervals_factor < 1.0:
            raise ConfigurationError("max_intervals_factor must be >= 1")
        get_dispatcher(self.dispatcher)

    def with_overrides(self, **kwargs) -> "StorageSystemConfig":
        """Return a copy with selected fields replaced."""
        updated = replace(self, **kwargs)
        updated.validate()
        return updated

    def build_cache_model(self) -> CacheModel:
        return ConstantCacheModel(self.cache_miss_rate)

    def total_capability_kb(self) -> float:
        """Ideal maximum processing capability per interval (Definition 2)."""
        return self.total_cores * self.core_capability_kb


class StorageSimulator:
    """Simulates CPU-core migration in the multi-level storage system."""

    def __init__(
        self,
        config: Optional[StorageSystemConfig] = None,
        cache_model: Optional[CacheModel] = None,
        rng: SeedLike = None,
        record_metrics: bool = True,
    ) -> None:
        self.config = config or StorageSystemConfig()
        self.config.validate()
        self.cache_model = cache_model or self.config.build_cache_model()
        self._dispatch = get_dispatcher(self.config.dispatcher)
        self._dispatch_is_polling = self.config.dispatcher == "polling"
        self._record_metrics = bool(record_metrics)
        self._capacity_cache: Dict[int, Tuple[np.ndarray, float]] = {}
        self._rng = new_rng(rng)
        self._trace: Optional[WorkloadTrace] = None
        self._pool: Optional[CorePool] = None
        # Per-level state kept in LEVELS order (plain lists — enum-keyed
        # dict lookups are measurable on the per-interval hot path and
        # are only materialised for the metrics records).
        self._backlog_values: List[float] = [0.0 for _ in LEVELS]
        self._interval_index = 0
        self._last_utilization: Dict[Level, float] = {level: 0.0 for level in LEVELS}
        self._episode: Optional[EpisodeMetrics] = None
        self._last_step_values: Optional[StepValues] = None
        self._steps_taken = 0
        self._max_intervals = 0

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(self, trace: WorkloadTrace, rng: SeedLike = None) -> None:
        """Start a new episode over ``trace``."""
        if len(trace) == 0:
            raise SimulationError(f"trace {trace.name!r} has no intervals")
        if rng is not None:
            self._rng = new_rng(rng)
        self._trace = trace
        self._pool = CorePool.create(
            self.config.initial_allocation, self.config.min_cores_per_level
        )
        self._backlog_values = [0.0 for _ in LEVELS]
        self._interval_index = 0
        self._last_utilization = {level: 0.0 for level in LEVELS}
        self._episode = EpisodeMetrics(trace_name=trace.name)
        self._last_step_values = None
        self._steps_taken = 0
        self.cache_model.reset()
        self._max_intervals = int(
            self.config.max_intervals_factor * len(trace) + self.config.max_intervals_slack
        )

    @property
    def is_running(self) -> bool:
        return self._trace is not None and not self.is_done

    @property
    def is_done(self) -> bool:
        """True once all injected work is processed (or the safety cap hit)."""
        if self._trace is None or self._episode is None:
            return False
        if self._episode.truncated:
            return True
        injected_all = self._interval_index >= len(self._trace)
        drained = all(backlog <= 1e-9 for backlog in self._backlog_values)
        return injected_all and drained

    @property
    def interval_index(self) -> int:
        return self._interval_index

    @property
    def core_pool(self) -> CorePool:
        self._require_episode()
        return self._pool  # type: ignore[return-value]

    @property
    def episode_metrics(self) -> EpisodeMetrics:
        self._require_episode()
        return self._episode  # type: ignore[return-value]

    @property
    def makespan(self) -> int:
        """Makespan so far (final value once :attr:`is_done`)."""
        self._require_episode()
        return self._steps_taken

    @property
    def last_step_values(self) -> StepValues:
        """Per-level summary of the most recent interval (LEVELS order)."""
        if self._last_step_values is None:
            raise SimulationError("no interval has been simulated yet")
        return self._last_step_values

    @property
    def records_metrics(self) -> bool:
        """Whether step() materialises IntervalMetrics records."""
        return self._record_metrics

    def backlog_kb(self) -> Dict[Level, float]:
        return dict(zip(LEVELS, self._backlog_values))

    def utilization(self) -> Dict[Level, float]:
        return dict(self._last_utilization)

    @property
    def last_utilization(self) -> Dict[Level, float]:
        """Previous interval's utilisation (internal dict — do not mutate)."""
        return self._last_utilization

    def core_counts(self) -> Dict[Level, int]:
        self._require_episode()
        return self._pool.counts()  # type: ignore[union-attr]

    def current_workload(self) -> WorkloadInterval:
        """The workload interval that will be injected by the next step."""
        self._require_episode()
        assert self._trace is not None
        if self._interval_index < len(self._trace):
            return self._trace[self._interval_index]
        return WorkloadInterval.empty()

    def _require_episode(self) -> None:
        if self._trace is None or self._pool is None or self._episode is None:
            raise SimulationError("simulator has not been reset with a trace")

    # ------------------------------------------------------------------
    # Demand computation
    # ------------------------------------------------------------------
    def demand_for(self, interval: WorkloadInterval) -> Dict[Level, float]:
        """Kilobytes of work each level receives from ``interval``."""
        miss_rate = self.cache_model.miss_rate(interval)
        return self._incoming_with_miss_rate(interval, miss_rate)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, action: MigrationAction | int) -> Optional[IntervalMetrics]:
        """Advance the simulation by one time interval under ``action``.

        Returns the interval's metrics record, or None when the simulator
        was created with ``record_metrics=False`` (metrics-free execution
        for high-throughput rollout collection — the per-level summary is
        still available via :attr:`last_step_values`).
        """
        self._require_episode()
        assert self._trace is not None and self._pool is not None and self._episode is not None
        if self.is_done:
            raise SimulationError("step() called on a finished episode")

        action = action_from_index(action)

        # 1. Apply the migration decided for this interval.  The migrated
        #    core starts working at its new level immediately but pays the
        #    performance penalty for `migration_cooldown_intervals`.
        migration_applied = False
        if not action.is_noop:
            migrated = self._pool.migrate_one(
                action.source,
                action.destination,
                cooldown_intervals=self.config.migration_cooldown_intervals + 1,
            )
            migration_applied = migrated is not None

        # 2. Inject this interval's workload (if the trace still has one).
        backlog = self._backlog_values
        if self._interval_index < len(self._trace):
            workload = self._trace[self._interval_index]
            cache_miss_rate = self.cache_model.miss_rate(workload)
            incoming_values = self._incoming_values(workload, cache_miss_rate)
            for index in range(len(LEVELS)):
                backlog[index] += incoming_values[index]
        else:
            cache_miss_rate = 0.0
            incoming_values = (0.0,) * len(LEVELS)

        # 3. Compute each level's per-core effective capacity and process.
        utilization_values: List[float] = []
        processed_values: List[float] = []
        capacity_values: List[float] = []
        idle_values: List[int] = []
        no_penalty = self._pool.penalized_total == 0
        for index, level in enumerate(LEVELS):
            cores = self._pool.cores_at(level)
            idle = self._sample_idle_cores(len(cores))
            idle_values.append(idle)
            if idle == 0 and no_penalty:
                # Common case: full-speed cores, none idled — serve the
                # cached per-count capacity array and its cached sum.
                capacities, total_capacity = self._uniform_capacities(len(cores))
            else:
                capacities = self._core_capacities(cores, idle)
                total_capacity = float(capacities.sum())
            pending = backlog[index]
            if self._dispatch_is_polling and capacities.size:
                # Inlined polling dispatch: an even split processed up to
                # each core's capacity.  Identical arithmetic to
                # ``polling_dispatch`` (np.minimum broadcasts the same
                # per-core assignment) without the per-call result object;
                # this loop runs three times per simulated interval.
                processed_kb = np.minimum(pending / capacities.size, capacities)
            else:
                result = self._dispatch(pending, capacities)
                processed_kb = result.processed_kb
            # Reduce once here instead of through the DispatchResult
            # properties (which each re-sum the arrays).
            total_processed = float(processed_kb.sum())
            processed_values.append(total_processed)
            capacity_values.append(total_capacity)
            utilization_values.append(
                min(1.0, total_processed / total_capacity) if total_capacity > 0 else 0.0
            )
            backlog[index] = max(0.0, pending - total_processed)

        utilization = dict(zip(LEVELS, utilization_values))
        self._last_utilization = utilization

        # 4. Advance time and decay migration penalties.
        self._pool.tick()
        self._interval_index += 1
        self._steps_taken += 1
        self._last_step_values = StepValues(
            incoming_kb=tuple(incoming_values),
            processed_kb=tuple(processed_values),
            capacity_kb=tuple(capacity_values),
            utilization=tuple(utilization_values),
            backlog_kb=tuple(backlog),
        )

        metrics: Optional[IntervalMetrics] = None
        if self._record_metrics:
            metrics = IntervalMetrics(
                interval=self._interval_index - 1,
                action=action,
                migration_applied=migration_applied,
                core_counts=self._pool.counts(),
                utilization=utilization,
                incoming_kb=dict(zip(LEVELS, incoming_values)),
                processed_kb=dict(zip(LEVELS, processed_values)),
                backlog_kb=dict(zip(LEVELS, backlog)),
                capacity_kb=dict(zip(LEVELS, capacity_values)),
                cache_miss_rate=cache_miss_rate,
                idle_cores=dict(zip(LEVELS, idle_values)),
            )
            self._episode.record(metrics)

        if self._steps_taken >= self._max_intervals and not self.is_done:
            self._episode.truncated = True
        return metrics

    def _incoming_with_miss_rate(
        self, workload: WorkloadInterval, miss_rate: float
    ) -> Dict[Level, float]:
        return dict(zip(LEVELS, self._incoming_values(workload, miss_rate)))

    def _incoming_values(
        self, workload: WorkloadInterval, miss_rate: float
    ) -> Tuple[float, float, float]:
        """Per-level incoming work in LEVELS order (NORMAL, KV, RV)."""
        read_kb = workload.read_kb()
        write_kb = workload.write_kb()
        missed_read_kb = read_kb * miss_rate
        return (
            read_kb + write_kb,
            write_kb * self.config.kv_write_factor
            + missed_read_kb * self.config.kv_read_miss_factor,
            write_kb * self.config.rv_write_factor
            + missed_read_kb * self.config.rv_read_miss_factor,
        )

    def _sample_idle_cores(self, core_count: int) -> int:
        """Number of cores at a level that are idle this interval (Poisson)."""
        if core_count <= 1 or self.config.idle_rate <= 0:
            return 0
        idle = int(self._rng.poisson(self.config.idle_rate * core_count))
        # Always keep at least one core active per level.
        return min(idle, core_count - 1)

    def _uniform_capacities(self, core_count: int) -> Tuple[np.ndarray, float]:
        """Cached (read-only array, pairwise sum) of ``core_count`` full-speed cores."""
        cached = self._capacity_cache.get(core_count)
        if cached is None:
            array = np.full(core_count, self.config.core_capability_kb, dtype=float)
            array.setflags(write=False)
            cached = (array, float(array.sum()))
            self._capacity_cache[core_count] = cached
        return cached

    def _core_capacities(self, cores, idle_count: int) -> np.ndarray:
        """Effective per-core capacities in KB for this interval."""
        capability = self.config.core_capability_kb
        if self._pool is not None and self._pool.penalized_total == 0:
            capacities = np.full(len(cores), capability, dtype=float)
        else:
            capacities = np.array(
                [
                    capability * (1.0 - self.config.migration_penalty)
                    if core.is_penalized
                    else capability
                    for core in cores
                ],
                dtype=float,
            )
        if idle_count > 0:
            # Idle the cores with the largest remaining capacity last so the
            # penalty of idling is conservative (idle full-speed cores first).
            order = np.argsort(-capacities)
            capacities[order[:idle_count]] = 0.0
        return capacities

    # ------------------------------------------------------------------
    # Whole-episode convenience
    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkloadTrace,
        policy: Callable[["StorageSimulator"], MigrationAction | int],
        rng: SeedLike = None,
    ) -> EpisodeMetrics:
        """Run a full episode, asking ``policy(simulator)`` for each action."""
        self.reset(trace, rng=rng)
        while not self.is_done:
            action = policy(self)
            self.step(action)
        return self.episode_metrics
