"""The storage-system simulator: core migration, IO processing and makespan.

One :class:`StorageSimulator` instance simulates a single episode: a
workload trace of ``T`` intervals is injected interval by interval, a
controller chooses one of the seven migration actions per interval, and
the episode ends once every injected kilobyte of IO work has been
processed.  The number of elapsed intervals is the makespan ``K``
(``K >= T``), the quantity all of the paper's experiments compare.

Work model
----------
For an interval's workload ``w(t)`` the demand placed on each level is

* NORMAL: every IO request's payload must be read from / written to the
  shared cache, so NORMAL receives the full ``total_kb`` of the interval.
* KV / RV: write requests always require key-value and resource-volume
  work (``kv_write_factor`` / ``rv_write_factor`` kilobytes of work per
  kilobyte of write payload); read requests only require KV/RV work when
  they miss the cache (probability from the cache model), weighted by
  ``kv_read_miss_factor`` / ``rv_read_miss_factor``.

Each level keeps a backlog of unfinished work; unfinished requests are
postponed to later intervals (paper Section 2, property 2).  Work inside
a level is assigned to cores by the polling dispatcher, which does not
redistribute work away from slow (penalised or idle) cores.

Implementation note: the scalar simulator is the ``B=1`` view of the
struct-of-arrays :class:`~repro.storage.vector_state.VectorSimulatorState`
core — the same array kernels advance one episode here and a whole batch
inside the vectorized environment, which is what keeps sequential and
batched execution bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.storage.cache import CacheModel, ConstantCacheModel
from repro.storage.cores import CorePool
from repro.storage.dispatcher import get_dispatcher
from repro.storage.levels import LEVELS, Level
from repro.storage.metrics import EpisodeMetrics, IntervalMetrics, StepValues
from repro.storage.migration import MigrationAction
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass
class StorageSystemConfig:
    """Static parameters of the simulated storage array.

    Defaults are chosen so that the standard workload profiles load the
    array to roughly 70–120 % of its aggregate capability, which is the
    regime in which core placement matters.
    """

    total_cores: int = 12
    initial_allocation: Dict[str, int] = field(
        default_factory=lambda: {"NORMAL": 6, "KV": 3, "RV": 3}
    )
    core_capability_kb: float = 40_000.0
    cache_miss_rate: float = 0.3
    migration_penalty: float = 0.2
    migration_cooldown_intervals: int = 1
    min_cores_per_level: int = 1
    idle_rate: float = 0.04
    kv_write_factor: float = 0.9
    rv_write_factor: float = 0.7
    kv_read_miss_factor: float = 0.5
    rv_read_miss_factor: float = 0.35
    dispatcher: str = "polling"
    max_intervals_factor: float = 12.0
    max_intervals_slack: int = 50

    def validate(self) -> None:
        allocation_total = sum(int(v) for v in self.initial_allocation.values())
        if allocation_total != self.total_cores:
            raise ConfigurationError(
                f"initial allocation sums to {allocation_total} but total_cores={self.total_cores}"
            )
        if self.total_cores < 3 * self.min_cores_per_level:
            raise ConfigurationError(
                f"{self.total_cores} cores cannot satisfy min {self.min_cores_per_level} per level"
            )
        if self.core_capability_kb <= 0:
            raise ConfigurationError("core_capability_kb must be positive")
        if not 0.0 <= self.cache_miss_rate <= 1.0:
            raise ConfigurationError("cache_miss_rate must be in [0, 1]")
        if not 0.0 <= self.migration_penalty < 1.0:
            raise ConfigurationError("migration_penalty must be in [0, 1)")
        if self.migration_cooldown_intervals < 0:
            raise ConfigurationError("migration_cooldown_intervals must be >= 0")
        if self.idle_rate < 0:
            raise ConfigurationError("idle_rate must be non-negative")
        for name in (
            "kv_write_factor",
            "rv_write_factor",
            "kv_read_miss_factor",
            "rv_read_miss_factor",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.max_intervals_factor < 1.0:
            raise ConfigurationError("max_intervals_factor must be >= 1")
        get_dispatcher(self.dispatcher)

    def with_overrides(self, **kwargs) -> "StorageSystemConfig":
        """Return a copy with selected fields replaced."""
        updated = replace(self, **kwargs)
        updated.validate()
        return updated

    def build_cache_model(self) -> CacheModel:
        return ConstantCacheModel(self.cache_miss_rate)

    def total_capability_kb(self) -> float:
        """Ideal maximum processing capability per interval (Definition 2)."""
        return self.total_cores * self.core_capability_kb


def incoming_work_values(
    config: StorageSystemConfig, workload: WorkloadInterval, miss_rate: float
) -> Tuple[float, float, float]:
    """Per-level incoming work in LEVELS order (NORMAL, KV, RV)."""
    read_kb = workload.read_kb()
    write_kb = workload.write_kb()
    missed_read_kb = read_kb * miss_rate
    return (
        read_kb + write_kb,
        write_kb * config.kv_write_factor + missed_read_kb * config.kv_read_miss_factor,
        write_kb * config.rv_write_factor + missed_read_kb * config.rv_read_miss_factor,
    )


class StorageSimulator:
    """Simulates CPU-core migration in the multi-level storage system.

    This is the B=1 view over :class:`VectorSimulatorState`: all episode
    state lives in the shared array core, and ``step()`` advances it
    through the same kernels the vectorized environment uses.
    """

    def __init__(
        self,
        config: Optional[StorageSystemConfig] = None,
        cache_model: Optional[CacheModel] = None,
        rng: SeedLike = None,
        record_metrics: bool = True,
    ) -> None:
        from repro.storage.vector_state import VectorSimulatorState

        self.config = config or StorageSystemConfig()
        self.config.validate()
        self.cache_model = cache_model or self.config.build_cache_model()
        self._record_metrics = bool(record_metrics)
        self._rng = new_rng(rng)
        self._state = VectorSimulatorState(
            self.config,
            record_metrics=self._record_metrics,
            cache_model_factory=lambda: self.cache_model,
        )
        self._trace: Optional[WorkloadTrace] = None
        self._last_step_values: Optional[StepValues] = None

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(self, trace: WorkloadTrace, rng: SeedLike = None) -> None:
        """Start a new episode over ``trace``."""
        if rng is not None:
            self._rng = new_rng(rng)
        self._state.reset([trace], rngs=[self._rng])
        self._trace = trace
        self._last_step_values = None

    @property
    def is_running(self) -> bool:
        return self._trace is not None and not self.is_done

    @property
    def is_done(self) -> bool:
        """True once all injected work is processed (or the safety cap hit)."""
        if self._trace is None:
            return False
        return bool(self._state.done[0])

    @property
    def interval_index(self) -> int:
        return int(self._state.interval_index[0]) if self._trace is not None else 0

    @property
    def core_pool(self) -> CorePool:
        """A read-only snapshot of the core pool (see ``core_pool_view``)."""
        self._require_episode()
        return self._state.core_pool_view(0)

    @property
    def episode_metrics(self) -> EpisodeMetrics:
        self._require_episode()
        return self._state.episodes[0]

    @property
    def makespan(self) -> int:
        """Makespan so far (final value once :attr:`is_done`)."""
        self._require_episode()
        return int(self._state.steps_taken[0])

    @property
    def last_step_values(self) -> StepValues:
        """Per-level summary of the most recent interval (LEVELS order)."""
        if self._last_step_values is None:
            raise SimulationError("no interval has been simulated yet")
        return self._last_step_values

    @property
    def records_metrics(self) -> bool:
        """Whether step() materialises IntervalMetrics records."""
        return self._record_metrics

    def backlog_kb(self) -> Dict[Level, float]:
        self._require_episode()
        return dict(zip(LEVELS, self._state.backlog[0].tolist()))

    def utilization(self) -> Dict[Level, float]:
        self._require_episode()
        return dict(zip(LEVELS, self._state.utilization[0].tolist()))

    @property
    def last_utilization(self) -> Dict[Level, float]:
        """Previous interval's utilisation as a fresh dict."""
        return self.utilization()

    def core_counts(self) -> Dict[Level, int]:
        self._require_episode()
        return dict(zip(LEVELS, (int(c) for c in self._state.counts[0])))

    def core_counts_vector(self) -> np.ndarray:
        """Counts in canonical order (NORMAL, KV, RV) as an int array."""
        self._require_episode()
        return self._state.counts[0]

    def current_workload(self) -> WorkloadInterval:
        """The workload interval that will be injected by the next step."""
        self._require_episode()
        assert self._trace is not None
        index = int(self._state.interval_index[0])
        if index < len(self._trace):
            return self._trace[index]
        return WorkloadInterval.empty()

    def _require_episode(self) -> None:
        if self._trace is None:
            raise SimulationError("simulator has not been reset with a trace")

    # ------------------------------------------------------------------
    # Demand computation
    # ------------------------------------------------------------------
    def demand_for(self, interval: WorkloadInterval) -> Dict[Level, float]:
        """Kilobytes of work each level receives from ``interval``."""
        miss_rate = self.cache_model.miss_rate(interval)
        return dict(zip(LEVELS, incoming_work_values(self.config, interval, miss_rate)))

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, action: MigrationAction | int) -> Optional[IntervalMetrics]:
        """Advance the simulation by one time interval under ``action``.

        Returns the interval's metrics record, or None when the simulator
        was created with ``record_metrics=False`` (metrics-free execution
        for high-throughput rollout collection — the per-level summary is
        still available via :attr:`last_step_values`).
        """
        self._require_episode()
        if self.is_done:
            raise SimulationError("step() called on a finished episode")
        self._state.step(np.array([int(action)], dtype=np.int64))
        self._last_step_values = self._state.step_values(0)
        if self._record_metrics:
            return self._state.episodes[0].intervals[-1]
        return None

    # ------------------------------------------------------------------
    # Whole-episode convenience
    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkloadTrace,
        policy: Callable[["StorageSimulator"], MigrationAction | int],
        rng: SeedLike = None,
    ) -> EpisodeMetrics:
        """Run a full episode, asking ``policy(simulator)`` for each action."""
        self.reset(trace, rng=rng)
        while not self.is_done:
            action = policy(self)
            self.step(action)
        return self.episode_metrics
