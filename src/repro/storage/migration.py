"""The seven-action migration space (paper Section 3.1).

Action ``a1`` is "no migration"; the remaining six actions move one core
between an ordered pair of distinct levels.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.storage.levels import Level


class MigrationAction(enum.IntEnum):
    """Discrete action identifiers in canonical order."""

    NOOP = 0
    NORMAL_TO_KV = 1
    NORMAL_TO_RV = 2
    KV_TO_NORMAL = 3
    KV_TO_RV = 4
    RV_TO_NORMAL = 5
    RV_TO_KV = 6

    @property
    def source(self) -> Optional[Level]:
        return _ACTION_PAIRS[self][0]

    @property
    def destination(self) -> Optional[Level]:
        return _ACTION_PAIRS[self][1]

    @property
    def is_noop(self) -> bool:
        return self is MigrationAction.NOOP

    @property
    def short_name(self) -> str:
        """Compact label matching the paper's figure notation (e.g. ``"N=>R"``)."""
        if self.is_noop:
            return "Noop"
        abbrev = {Level.NORMAL: "N", Level.KV: "K", Level.RV: "R"}
        return f"{abbrev[self.source]}=>{abbrev[self.destination]}"


_ACTION_PAIRS = {
    MigrationAction.NOOP: (None, None),
    MigrationAction.NORMAL_TO_KV: (Level.NORMAL, Level.KV),
    MigrationAction.NORMAL_TO_RV: (Level.NORMAL, Level.RV),
    MigrationAction.KV_TO_NORMAL: (Level.KV, Level.NORMAL),
    MigrationAction.KV_TO_RV: (Level.KV, Level.RV),
    MigrationAction.RV_TO_NORMAL: (Level.RV, Level.NORMAL),
    MigrationAction.RV_TO_KV: (Level.RV, Level.KV),
}

ACTION_NOOP = MigrationAction.NOOP
NUM_ACTIONS = len(MigrationAction)


def _level_index_table(position: int):
    import numpy as np

    from repro.storage.levels import LEVELS

    table = np.full(NUM_ACTIONS, -1, dtype=np.int64)
    for action, pair in _ACTION_PAIRS.items():
        level = pair[position]
        if level is not None:
            table[int(action)] = LEVELS.index(level)
    table.setflags(write=False)
    return table


#: Action index -> source/destination level index (-1 for the no-op).
#: Array form of :attr:`MigrationAction.source` / ``.destination`` used by
#: the vectorized simulator kernels to resolve whole action batches with
#: one fancy-indexing lookup instead of per-slot enum property access.
ACTION_SOURCE_INDICES = _level_index_table(0)
ACTION_DEST_INDICES = _level_index_table(1)


_ACTIONS_BY_INDEX: Tuple[MigrationAction, ...] = tuple(MigrationAction)


def all_actions() -> List[MigrationAction]:
    """All seven actions in canonical order."""
    return list(MigrationAction)


def action_from_index(value: int | MigrationAction) -> MigrationAction:
    """Index -> action lookup avoiding the enum-call overhead (hot path)."""
    if type(value) is int and 0 <= value < NUM_ACTIONS:
        return _ACTIONS_BY_INDEX[value]
    return MigrationAction(int(value))


def action_name(action: int | MigrationAction) -> str:
    """Short human-readable name of an action index."""
    return MigrationAction(int(action)).short_name


def action_from_levels(source: Optional[Level], destination: Optional[Level]) -> MigrationAction:
    """Map a (source, destination) level pair back to its action."""
    if source is None and destination is None:
        return MigrationAction.NOOP
    for action, (src, dst) in _ACTION_PAIRS.items():
        if src is source and dst is destination:
            return action
    raise ConfigurationError(f"no action migrates {source} -> {destination}")


def parse_action(value: int | str | MigrationAction) -> MigrationAction:
    """Parse an action given as an index, enum or short name like ``"N=>K"``."""
    if isinstance(value, MigrationAction):
        return value
    if isinstance(value, int):
        return MigrationAction(value)
    text = str(value).strip()
    for action in MigrationAction:
        if text.lower() in (action.short_name.lower(), action.name.lower()):
            return action
    raise ConfigurationError(f"unrecognised action {value!r}")
