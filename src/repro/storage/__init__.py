"""Discrete-time simulator of the Dorado-V6-style multi-level storage system.

The paper's experiments run against a purpose-built simulator of the
CPU-core migration behaviour of the Huawei OceanStor Dorado V6 array
(paper Section 4.1).  This package implements that simulator from the
published problem description (Section 2):

* three CPU levels — NORMAL, KV and RV — between which cores migrate;
* 14 IO request types, each with a size and a read/write kind;
* per-core maximum processing capability ``m`` per time interval;
* cache misses at NORMAL with probability ``C`` that push extra work to
  KV and RV;
* polling (round-robin) assignment of requests to cores;
* postponement of unfinished requests to later intervals (backlog);
* a performance penalty in the interval following a core migration;
* Poisson-distributed core idling (paper Section 4.1).
"""

from repro.storage.levels import Level, LEVELS
from repro.storage.iorequest import IOKind, IORequestType, standard_io_types
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.storage.cores import Core, CorePool
from repro.storage.cache import CacheModel, ConstantCacheModel, WorkingSetCacheModel
from repro.storage.migration import MigrationAction, ACTION_NOOP, action_name, all_actions
from repro.storage.simulator import StorageSimulator, StorageSystemConfig
from repro.storage.vector_state import VectorSimulatorState
from repro.storage.metrics import IntervalMetrics, EpisodeMetrics

__all__ = [
    "Level",
    "LEVELS",
    "IOKind",
    "IORequestType",
    "standard_io_types",
    "WorkloadInterval",
    "WorkloadTrace",
    "Core",
    "CorePool",
    "CacheModel",
    "ConstantCacheModel",
    "WorkingSetCacheModel",
    "MigrationAction",
    "ACTION_NOOP",
    "action_name",
    "all_actions",
    "StorageSimulator",
    "StorageSystemConfig",
    "VectorSimulatorState",
    "IntervalMetrics",
    "EpisodeMetrics",
]
