"""CPU cores and the pool that manages their residency and migrations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.storage.levels import LEVELS, Level


@dataclass
class Core:
    """One CPU core.

    Attributes
    ----------
    core_id:
        Stable identifier within the pool.
    level:
        Current residency level.
    migration_cooldown:
        Number of upcoming intervals in which this core still pays the
        migration performance penalty (paper Section 2, property 3).
    """

    core_id: int
    level: Level
    migration_cooldown: int = 0

    def tick(self) -> None:
        """Advance one interval: decay any remaining migration penalty."""
        if self.migration_cooldown > 0:
            self.migration_cooldown -= 1

    def migrate(self, destination: Level, cooldown_intervals: int = 1) -> None:
        """Move this core to ``destination`` and start the penalty window."""
        if destination is self.level:
            raise SimulationError(
                f"core {self.core_id} is already at level {self.level.value}"
            )
        self.level = destination
        self.migration_cooldown = max(self.migration_cooldown, cooldown_intervals)

    @property
    def is_penalized(self) -> bool:
        return self.migration_cooldown > 0


@dataclass
class CorePool:
    """The fixed set of ``N`` cores distributed over the three levels."""

    cores: List[Core] = field(default_factory=list)
    min_cores_per_level: int = 1

    def __post_init__(self) -> None:
        # Residency counts and the number of penalty-paying cores are
        # maintained incrementally (updated by migrate_one and tick, the
        # only pool-level mutations) — these queries sit on the
        # simulator's per-interval hot path.
        self._counts: Dict[Level, int] = {
            level: sum(1 for core in self.cores if core.level is level)
            for level in LEVELS
        }
        self._penalized_total = sum(1 for core in self.cores if core.is_penalized)

    @property
    def penalized_total(self) -> int:
        """Number of cores currently paying a migration penalty."""
        return self._penalized_total

    @staticmethod
    def create(
        allocation: Dict[Level, int] | Dict[str, int],
        min_cores_per_level: int = 1,
    ) -> "CorePool":
        """Build a pool from an initial ``{level: count}`` allocation."""
        normalised: Dict[Level, int] = {}
        for key, count in allocation.items():
            level = key if isinstance(key, Level) else Level(str(key).upper())
            normalised[level] = int(count)
        for level in LEVELS:
            normalised.setdefault(level, 0)
            if normalised[level] < min_cores_per_level:
                raise SimulationError(
                    f"initial allocation gives {normalised[level]} cores to {level.value}, "
                    f"but at least {min_cores_per_level} are required"
                )
        cores: List[Core] = []
        core_id = 0
        for level in LEVELS:
            for _ in range(normalised[level]):
                cores.append(Core(core_id=core_id, level=level))
                core_id += 1
        return CorePool(cores=cores, min_cores_per_level=min_cores_per_level)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return len(self.cores)

    def cores_at(self, level: Level) -> List[Core]:
        return [core for core in self.cores if core.level is level]

    def count(self, level: Level) -> int:
        return self._counts[level]

    def counts(self) -> Dict[Level, int]:
        return dict(self._counts)

    def counts_vector(self) -> List[int]:
        """Counts in canonical order (NORMAL, KV, RV)."""
        return [self.count(level) for level in LEVELS]

    def penalized_count(self, level: Level) -> int:
        return sum(1 for core in self.cores_at(level) if core.is_penalized)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def can_migrate(self, source: Level, destination: Level) -> bool:
        """Whether moving one core from ``source`` to ``destination`` is legal."""
        if source is destination:
            return False
        return self.count(source) > self.min_cores_per_level

    def migrate_one(
        self,
        source: Level,
        destination: Level,
        cooldown_intervals: int = 1,
    ) -> Optional[Core]:
        """Move one core from ``source`` to ``destination``.

        Returns the migrated core, or ``None`` when the migration is not
        legal (the simulator treats an illegal migration as a no-op, which
        matches how the production controller guards its actions).
        """
        if not self.can_migrate(source, destination):
            return None
        candidates = self.cores_at(source)
        # Prefer migrating a core that is not already paying a penalty so
        # repeated migrations do not stack on the same core.
        candidates.sort(key=lambda core: (core.is_penalized, core.core_id))
        core = candidates[0]
        was_penalized = core.is_penalized
        core.migrate(destination, cooldown_intervals)
        self._counts[source] -= 1
        self._counts[destination] += 1
        if not was_penalized and core.is_penalized:
            self._penalized_total += 1
        return core

    def tick(self) -> None:
        """Advance all cores by one interval (decays migration penalties)."""
        if self._penalized_total == 0:
            return
        for core in self.cores:
            if core.migration_cooldown > 0:
                core.migration_cooldown -= 1
                if core.migration_cooldown == 0:
                    self._penalized_total -= 1

    def clone(self) -> "CorePool":
        """Deep copy of the pool (used by environment reset snapshots)."""
        return CorePool(
            cores=[
                Core(core_id=c.core_id, level=c.level, migration_cooldown=c.migration_cooldown)
                for c in self.cores
            ],
            min_cores_per_level=self.min_cores_per_level,
        )

    # ------------------------------------------------------------------
    # Array form (struct-of-arrays simulator core)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Export as ``(level_indices, cooldowns)`` arrays indexed by core id.

        This is the per-slot row layout of the vectorized simulator's
        B-major core state: position ``i`` describes core ``i``, and
        "cores at level L in core-id order" is exactly the subsequence
        ``level_indices == L`` — the order :meth:`cores_at` produces.
        """
        levels = np.array([LEVELS.index(core.level) for core in self.cores], dtype=np.int64)
        cooldowns = np.array([core.migration_cooldown for core in self.cores], dtype=np.int64)
        return levels, cooldowns

    @staticmethod
    def from_arrays(
        level_indices: np.ndarray,
        cooldowns: np.ndarray,
        min_cores_per_level: int = 1,
    ) -> "CorePool":
        """Materialise a pool from one slot of the array-form core state."""
        cores = [
            Core(
                core_id=i,
                level=LEVELS[int(level_indices[i])],
                migration_cooldown=int(cooldowns[i]),
            )
            for i in range(len(level_indices))
        ]
        return CorePool(cores=cores, min_cores_per_level=min_cores_per_level)

    # ------------------------------------------------------------------
    # Level-major form (fixed layout of the vectorized simulator core)
    # ------------------------------------------------------------------
    def to_level_major(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Export as ``(core_ids, cooldowns, counts)`` in level-major order.

        The level-major layout is the vectorized simulator's per-slot row
        format: positions ``[starts[l], starts[l] + counts[l])`` hold the
        cores at level ``l`` in ascending core-id order (``starts`` being
        the exclusive prefix sums of ``counts``).  Keeping cores grouped
        by level makes "the capacities of level ``l``'s cores, in
        :meth:`cores_at` order" a plain slice — no per-interval argsort —
        while the ascending-id invariant preserves the scalar pool's
        migration tie-breaking and idle-ranking order exactly.
        """
        core_ids: List[int] = []
        cooldowns: List[int] = []
        counts: List[int] = []
        for level in LEVELS:
            members = self.cores_at(level)
            counts.append(len(members))
            core_ids.extend(core.core_id for core in members)
            cooldowns.extend(core.migration_cooldown for core in members)
        return (
            np.array(core_ids, dtype=np.int64),
            np.array(cooldowns, dtype=np.int64),
            np.array(counts, dtype=np.int64),
        )

    @staticmethod
    def from_level_major(
        core_ids: np.ndarray,
        cooldowns: np.ndarray,
        counts: np.ndarray,
        min_cores_per_level: int = 1,
    ) -> "CorePool":
        """Materialise a pool from one slot of the level-major core state."""
        total = int(np.sum(counts))
        if total != len(core_ids) or total != len(cooldowns):
            raise SimulationError(
                f"level-major arrays disagree: counts sum to {total} but "
                f"{len(core_ids)} ids / {len(cooldowns)} cooldowns given"
            )
        levels_by_position = np.repeat(np.arange(len(LEVELS)), np.asarray(counts))
        cores: List[Optional[Core]] = [None] * total
        for position in range(total):
            core_id = int(core_ids[position])
            cores[core_id] = Core(
                core_id=core_id,
                level=LEVELS[int(levels_by_position[position])],
                migration_cooldown=int(cooldowns[position]),
            )
        if any(core is None for core in cores):
            raise SimulationError("level-major core ids are not a permutation")
        return CorePool(cores=cores, min_cores_per_level=min_cores_per_level)
