"""Cache-miss models for the NORMAL-level shared cache.

The paper models cache misses with a single probability ``C``
(Definition 3).  The simulator accepts any :class:`CacheModel`; the
constant model reproduces the paper, and a working-set-sensitive model
is provided for sensitivity studies (miss rate grows when the recent IO
footprint exceeds the cache capacity).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.storage.workload import WorkloadInterval


class CacheModel(ABC):
    """Computes the probability that a read misses the NORMAL-level cache."""

    @abstractmethod
    def miss_rate(self, interval: WorkloadInterval) -> float:
        """Return the cache-miss probability for reads in ``interval``."""

    def reset(self) -> None:
        """Clear any internal state between episodes (default: stateless)."""

    def constant_miss_rate(self) -> "float | None":
        """The model's miss rate if it is a workload-independent constant.

        Returns ``None`` for stateful/workload-sensitive models.  The
        vectorized simulator core uses this to resolve a whole batch of
        cache lookups as one array broadcast; models returning ``None``
        fall back to one :meth:`miss_rate` call per environment slot,
        preserving each slot's internal-state trajectory exactly.
        """
        return None

    def signature(self) -> tuple:
        """Value-based identity of the model's dynamics.

        Two models with equal signatures produce the same miss rates;
        used to decide whether a vectorized environment twin can be
        built with the default model.  Subclasses must include every
        parameter that affects :meth:`miss_rate`.
        """
        return (type(self).__name__,)


class ConstantCacheModel(CacheModel):
    """Fixed miss probability ``C`` — the model used by the paper."""

    def __init__(self, miss_rate: float = 0.3) -> None:
        if not 0.0 <= miss_rate <= 1.0:
            raise ConfigurationError(f"miss_rate must be in [0, 1], got {miss_rate}")
        self._miss_rate = float(miss_rate)

    def miss_rate(self, interval: WorkloadInterval) -> float:
        return self._miss_rate

    def constant_miss_rate(self) -> float:
        return self._miss_rate

    def signature(self) -> tuple:
        return (type(self).__name__, self._miss_rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantCacheModel(miss_rate={self._miss_rate})"


class WorkingSetCacheModel(CacheModel):
    """Miss rate that rises with the recent read footprint.

    The model keeps an exponentially weighted estimate of the read
    working set (in KB).  When the working set is far below the cache
    capacity the miss rate approaches ``base_miss_rate``; as it grows the
    miss rate saturates towards ``max_miss_rate``.
    """

    def __init__(
        self,
        cache_capacity_kb: float = 512 * 1024,
        base_miss_rate: float = 0.05,
        max_miss_rate: float = 0.6,
        decay: float = 0.7,
    ) -> None:
        if cache_capacity_kb <= 0:
            raise ConfigurationError(
                f"cache_capacity_kb must be positive, got {cache_capacity_kb}"
            )
        if not 0.0 <= base_miss_rate <= max_miss_rate <= 1.0:
            raise ConfigurationError(
                "miss rates must satisfy 0 <= base <= max <= 1, "
                f"got base={base_miss_rate}, max={max_miss_rate}"
            )
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        self.cache_capacity_kb = float(cache_capacity_kb)
        self.base_miss_rate = float(base_miss_rate)
        self.max_miss_rate = float(max_miss_rate)
        self.decay = float(decay)
        self._working_set_kb = 0.0

    def reset(self) -> None:
        self._working_set_kb = 0.0

    def miss_rate(self, interval: WorkloadInterval) -> float:
        self._working_set_kb = (
            self.decay * self._working_set_kb + (1.0 - self.decay) * interval.read_kb()
        )
        pressure = min(1.0, self._working_set_kb / self.cache_capacity_kb)
        return self.base_miss_rate + (self.max_miss_rate - self.base_miss_rate) * pressure

    def signature(self) -> tuple:
        return (
            type(self).__name__,
            self.cache_capacity_kb,
            self.base_miss_rate,
            self.max_miss_rate,
            self.decay,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkingSetCacheModel(capacity_kb={self.cache_capacity_kb}, "
            f"base={self.base_miss_rate}, max={self.max_miss_rate})"
        )
