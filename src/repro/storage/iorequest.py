"""IO request types.

The paper describes each workload interval with two 14-dimensional
vectors: ``S`` (the size and read/write kind of each of the 14 IO
request types) and ``I`` (the fraction of each type in the interval).
This module defines the canonical 14 types: seven block sizes, each in a
read and a write variant, which mirrors how Vdbench workload profiles
are normally specified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WorkloadError


class IOKind(enum.Enum):
    """Whether an IO request reads data from or writes data to the array."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class IORequestType:
    """One of the 14 IO request classes.

    Attributes
    ----------
    index:
        Position of this type in the ``S``/``I`` vectors (0-based).
    size_kb:
        Request payload in kilobytes.
    kind:
        Read or write.
    """

    index: int
    size_kb: float
    kind: IOKind

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise WorkloadError(f"IO size must be positive, got {self.size_kb}")
        if self.index < 0:
            raise WorkloadError(f"IO type index must be non-negative, got {self.index}")

    @property
    def is_read(self) -> bool:
        return self.kind is IOKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is IOKind.WRITE

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"8K-read"``."""
        size = f"{int(self.size_kb)}K" if self.size_kb < 1024 else f"{self.size_kb / 1024:g}M"
        return f"{size}-{self.kind.value}"

    @property
    def signed_size(self) -> float:
        """Encoding of size-and-kind as a single signed scalar (the paper's S_i).

        Reads are positive, writes negative; the magnitude is the size in
        KB.  This is how the observation vector encodes the ``S`` vector.
        """
        return self.size_kb if self.is_read else -self.size_kb


_STANDARD_SIZES_KB: Tuple[float, ...] = (4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _build_standard_io_types() -> Tuple[IORequestType, ...]:
    types: List[IORequestType] = []
    index = 0
    for size in _STANDARD_SIZES_KB:
        types.append(IORequestType(index=index, size_kb=size, kind=IOKind.READ))
        index += 1
    for size in _STANDARD_SIZES_KB:
        types.append(IORequestType(index=index, size_kb=size, kind=IOKind.WRITE))
        index += 1
    return tuple(types)


_STANDARD_IO_TYPES: Tuple[IORequestType, ...] = _build_standard_io_types()


def standard_io_types() -> List[IORequestType]:
    """Return the canonical 14 IO request types (7 sizes x read/write).

    The types are immutable, so the canonical tuple is built once at
    import time; this function sits on the simulator's per-interval hot
    path and only wraps it in a fresh list.
    """
    return list(_STANDARD_IO_TYPES)


NUM_IO_TYPES = len(_STANDARD_SIZES_KB) * 2
"""Dimensionality of the S and I workload vectors (14 in the paper)."""
