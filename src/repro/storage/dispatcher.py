"""Polling (round-robin) dispatch of IO work onto heterogeneous cores.

The paper states that IO requests are assigned to cores "in a polling
manner" (Section 2, property 1) and that there is no work stealing: a
request queued on a slow core (e.g. one paying a migration penalty)
stays there.  The dispatcher therefore splits an interval's pending work
evenly across the level's cores and lets each core process at most its
own effective capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one level's work for one interval."""

    assigned_kb: np.ndarray
    processed_kb: np.ndarray
    capacity_kb: np.ndarray

    @property
    def total_processed(self) -> float:
        return float(self.processed_kb.sum())

    @property
    def total_capacity(self) -> float:
        return float(self.capacity_kb.sum())

    @property
    def leftover_kb(self) -> float:
        return float((self.assigned_kb - self.processed_kb).sum())

    @property
    def utilization(self) -> float:
        """Fraction of the level's capacity actually used this interval."""
        capacity = self.total_capacity
        if capacity <= 0:
            return 0.0
        return min(1.0, self.total_processed / capacity)

    @property
    def per_core_utilization(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(self.capacity_kb > 0, self.processed_kb / self.capacity_kb, 0.0)
        return np.clip(util, 0.0, 1.0)


def polling_dispatch(pending_kb: float, core_capacities_kb: Sequence[float]) -> DispatchResult:
    """Split ``pending_kb`` evenly over cores and process within each core's capacity.

    Round-robin assignment of many small requests is well approximated by
    an even split of bytes; the important property preserved here is that
    work assigned to a core with reduced capacity is *not* redistributed.
    """
    capacities = np.asarray(core_capacities_kb, dtype=float)
    if capacities.ndim != 1 or capacities.size == 0:
        raise SimulationError("polling_dispatch requires at least one core capacity")
    if np.any(capacities < 0):
        raise SimulationError("core capacities must be non-negative")
    if pending_kb < 0:
        raise SimulationError(f"pending work must be non-negative, got {pending_kb}")

    assigned = np.full(capacities.size, pending_kb / capacities.size)
    processed = np.minimum(assigned, capacities)
    return DispatchResult(assigned_kb=assigned, processed_kb=processed, capacity_kb=capacities)


def proportional_dispatch(pending_kb: float, core_capacities_kb: Sequence[float]) -> DispatchResult:
    """Alternative dispatcher that assigns work proportionally to capacity.

    Used by ablation benchmarks to quantify how much of the migration
    penalty comes from polling's inability to route around slow cores.
    """
    capacities = np.asarray(core_capacities_kb, dtype=float)
    if capacities.ndim != 1 or capacities.size == 0:
        raise SimulationError("proportional_dispatch requires at least one core capacity")
    total_capacity = capacities.sum()
    if total_capacity <= 0:
        assigned = np.zeros_like(capacities)
    else:
        assigned = pending_kb * capacities / total_capacity
    processed = np.minimum(assigned, capacities)
    return DispatchResult(assigned_kb=assigned, processed_kb=processed, capacity_kb=capacities)


# ----------------------------------------------------------------------
# Array-form reductions (struct-of-arrays simulator core)
# ----------------------------------------------------------------------
#: Largest row length :func:`pairwise_sum_ragged` reproduces; numpy's
#: pairwise summation switches to recursive splitting above this block
#: size (``PW_BLOCKSIZE``), which the column-accumulate model does not
#: cover.  Callers with longer rows must fall back to per-row ``sum()``.
PAIRWISE_MAX_LENGTH = 128


def pairwise_sum_ragged(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-cell ``values[..., :lengths[...]].sum()`` for ragged rows.

    ``values`` is ``(..., n_max)`` with ``0 <= lengths <= n_max``; cell
    ``c`` of the result is bit-identical to ``values[c, :lengths[c]].sum()``
    — the function replays numpy's pairwise summation order for every
    row length at once (a plain left-to-right accumulation below 8
    elements, the 8-accumulator unrolled tree with a sequential tail up
    to :data:`PAIRWISE_MAX_LENGTH`) using one masked column pass.
    Columns at and beyond a cell's length may hold arbitrary finite
    garbage; they never reach an accumulation.

    This is the **executable specification** of the summation-order
    model that the vectorized simulator's dispatch sweep
    (:meth:`~repro.storage.vector_state.VectorSimulatorState._process_intervals_grouped`)
    inlines for its hot path: ``tests/test_vector_state.py`` pins this
    function against per-row ``sum()`` across lengths, so a numpy
    upgrade that changes the pairwise internals fails here loudly
    instead of silently drifting a golden trace.
    """
    n_max = values.shape[-1]
    if n_max > PAIRWISE_MAX_LENGTH:
        raise SimulationError(
            f"pairwise_sum_ragged supports rows up to {PAIRWISE_MAX_LENGTH}, got {n_max}"
        )
    # Left-to-right accumulation: exact for lengths < 8.
    small = np.zeros(values.shape[:-1])
    for j in range(min(n_max, 7)):
        small = small + np.where(j < lengths, values[..., j], 0.0)
    if n_max < 8:
        return small
    # 8-accumulator unrolled path for lengths >= 8: full blocks of 8
    # accumulate r[j] += a[8k + j], the eight accumulators combine as a
    # balanced tree, and the non-multiple-of-8 tail adds sequentially.
    full_blocks = lengths - lengths % 8
    accumulators = [np.array(values[..., j]) for j in range(8)]
    for base in range(8, n_max - 7, 8):
        include = base + 8 <= full_blocks
        for j in range(8):
            accumulators[j] = accumulators[j] + np.where(
                include, values[..., base + j], 0.0
            )
    big = (
        (accumulators[0] + accumulators[1]) + (accumulators[2] + accumulators[3])
    ) + ((accumulators[4] + accumulators[5]) + (accumulators[6] + accumulators[7]))
    for j in range(8, n_max):
        big = big + np.where((full_blocks <= j) & (j < lengths), values[..., j], 0.0)
    return np.where(lengths < 8, small, big)


#: Largest replication count :func:`replicated_pairwise_sum` reproduces —
#: the unrolled-8 tree plus sequential tail, the same envelope the
#: vectorized dispatch sweep supports (levels never exceed 15 cores with
#: the <= 17-core configurations the grouped kernel accepts).
REPLICATED_MAX_LENGTH = 15


def replicated_pairwise_sum(
    values: np.ndarray, lengths: np.ndarray, n_max: Optional[int] = None
) -> np.ndarray:
    """Per-cell sum of ``lengths[c]`` copies of ``values[c]``, pairwise order.

    Cell ``c`` of the result is bit-identical to
    ``np.full(lengths[c], values[c]).sum()`` for ``lengths <= 15``.  This
    is the uniform-cell special case of :func:`pairwise_sum_ragged` — all
    row entries equal — which admits a much cheaper replay: the first
    eight copies combine as a balanced tree of equal values, which is the
    *exact* product ``8 * v`` (every intermediate doubles a value, and
    doubling only increments the exponent), so only the left-to-right
    head (< 8 copies) and the sequential tail (copies 8..14) need
    per-column passes.

    The vectorized simulator's uniform dispatch fast path (no penalised
    and no idled core anywhere) uses this to reduce a whole batch's
    per-level processed totals without materialising the positional
    ``(B, 3, n_max)`` capacity tensor.
    """
    values = np.asarray(values, dtype=float)
    lengths = np.asarray(lengths)
    if n_max is None:
        n_max = int(lengths.max()) if lengths.size else 0
    if n_max > REPLICATED_MAX_LENGTH:
        raise SimulationError(
            f"replicated_pairwise_sum supports up to {REPLICATED_MAX_LENGTH} "
            f"copies, got {n_max}"
        )
    small = np.where(lengths > 0, values, 0.0)
    for j in range(1, min(n_max, 8)):
        small = np.where(j < lengths, small + values, small)
    if n_max < 8:
        return small
    big = 8.0 * values
    for j in range(8, n_max):
        big = np.where(j < lengths, big + values, big)
    return np.where(lengths < 8, small, big)


DISPATCHERS = {
    "polling": polling_dispatch,
    "proportional": proportional_dispatch,
}


def get_dispatcher(name: str):
    """Look up a dispatcher by name (``"polling"`` or ``"proportional"``)."""
    try:
        return DISPATCHERS[name]
    except KeyError as exc:
        raise SimulationError(
            f"unknown dispatcher {name!r}; available: {sorted(DISPATCHERS)}"
        ) from exc
