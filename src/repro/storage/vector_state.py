"""Struct-of-arrays simulator core: B episodes advanced as array kernels.

:class:`VectorSimulatorState` holds the complete state of ``B``
independent storage-simulator episodes in B-major numpy arrays — level
occupancies (backlogs), per-core residency and migration cooldowns, and
the per-interval accumulators — and advances every unfinished episode in
one pass per interval.  Where the scalar simulator ran B Python loops
over the three levels (the dominant cost of batched rollout collection),
the vectorized kernels resolve migrations, workload injection, cache
hit/miss accounting, idle sampling, and polling dispatch with a handful
of array operations over all ``(slot, level)`` cells at once.

Determinism contract
--------------------
Slot ``i`` of a vector episode is **bit-identical** to a scalar
:class:`~repro.storage.simulator.StorageSimulator` episode on the same
trace with the same rng stream (and the scalar simulator itself is the
``B=1`` view of this state).  Three properties carry that guarantee:

* every per-cell floating-point reduction is performed on the same
  values in the same order as the scalar code (numpy's pairwise
  summation over a contiguous row matches the standalone vector sum,
  which ``tests/test_vector_state.py`` pins);
* per-slot rng streams are consumed identically: one masked
  ``Generator.poisson`` call per slot draws the same variates, in the
  same level order, as the scalar per-level calls;
* selection logic (migration candidate choice, idle-core ranking via
  ``np.argsort``) replicates the scalar tie-breaking exactly.

Episodes of different lengths coexist: finished slots are masked out of
every kernel and stop consuming randomness, so a partial batch drains
without perturbing the remaining slots.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.storage.cache import CacheModel
from repro.storage.cores import CorePool
from repro.storage.dispatcher import get_dispatcher
from repro.storage.levels import LEVELS
from repro.storage.metrics import EpisodeMetrics, IntervalMetrics, StepValues
from repro.storage.migration import (
    ACTION_DEST_INDICES,
    ACTION_SOURCE_INDICES,
    NUM_ACTIONS as _NUM_ACTIONS,
    action_from_index,
)
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng

_NUM_LEVELS = len(LEVELS)
_DRAIN_EPSILON = 1e-9


class VectorSimulatorState:
    """B-major state and vectorized update kernels for lockstep episodes.

    One instance is reused across resets; the batch size is set by each
    :meth:`reset` call.  Per-slot rng streams and cache models persist
    across resets (continuing their streams unless a reset supplies new
    seeds), mirroring the scalar simulator's reset semantics.
    """

    def __init__(
        self,
        config,
        record_metrics: bool = False,
        cache_model_factory: Optional[Callable[[], CacheModel]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self._record_metrics = bool(record_metrics)
        self._cache_model_factory = cache_model_factory or config.build_cache_model
        self._dispatch = get_dispatcher(config.dispatcher)
        self._dispatch_is_polling = config.dispatcher == "polling"
        self._capability = float(config.core_capability_kb)
        self._penalized_capability = self._capability * (1.0 - config.migration_penalty)
        self._capacity_cache: dict = {}
        self._arange_cache: dict = {}
        self._sweep_buffers: dict = {}
        self.last_step_all_active = False
        # Kernel selection: below this many active slots the per-cell
        # reference kernel (the scalar simulator's exact inner loop) is
        # cheaper than assembling the grouped gather; both kernels are
        # bit-identical, so this is purely a performance switch (tests
        # lower it to 1 to exercise the grouped kernel at B=1).
        self._grouped_min_rows = 2
        # The grouped kernel's column sweep replays numpy's pairwise
        # summation for rows below 16 elements (left-to-right under 8,
        # unrolled tree + tail up to 15); wider levels — impossible with
        # <= 17 cores — and non-polling dispatchers use the reference
        # kernel.
        max_level_cores = config.total_cores - 2 * config.min_cores_per_level
        self._grouped_supported = self._dispatch_is_polling and max_level_cores <= 15
        self.batch = 0
        self._cache_models: List[CacheModel] = []
        self._rngs: List[np.random.Generator] = []
        self._traces: List[WorkloadTrace] = []
        self.episodes: List[EpisodeMetrics] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_metrics(self) -> bool:
        return self._record_metrics

    @property
    def num_cores(self) -> int:
        return int(self.config.total_cores)

    def trace(self, slot: int) -> WorkloadTrace:
        return self._traces[slot]

    def trace_length(self, slot: int) -> int:
        return int(self.trace_len[slot])

    def rng(self, slot: int) -> np.random.Generator:
        return self._rngs[slot]

    def cache_model(self, slot: int) -> CacheModel:
        return self._cache_models[slot]

    def core_pool_view(self, slot: int) -> CorePool:
        """A :class:`CorePool` materialised from one slot's arrays.

        The pool is a *snapshot*: mutating it does not write back into
        the array state.  Intended for read-only consumers (action
        masking helpers, diagnostics, tests).
        """
        return CorePool.from_arrays(
            self.core_level[slot], self.cooldown[slot], self.config.min_cores_per_level
        )

    def counts_row(self, slot: int) -> np.ndarray:
        return self.counts[slot]

    def step_values(self, slot: int) -> StepValues:
        """The scalar simulator's lightweight per-interval summary for a slot."""
        return StepValues(
            incoming_kb=tuple(self.incoming[slot]),
            processed_kb=tuple(self.processed[slot]),
            capacity_kb=tuple(self.capacity[slot]),
            utilization=tuple(self.utilization[slot]),
            backlog_kb=tuple(self.backlog[slot]),
        )

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(
        self,
        traces: Sequence[WorkloadTrace],
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> None:
        """Start one episode per trace; ``rngs[i]`` (optional) seeds slot i."""
        traces = list(traces)
        if not traces:
            raise SimulationError("reset() needs at least one trace")
        if rngs is not None and len(rngs) != len(traces):
            raise SimulationError(
                f"got {len(rngs)} rng streams for {len(traces)} traces"
            )
        for trace in traces:
            if len(trace) == 0:
                raise SimulationError(f"trace {trace.name!r} has no intervals")
        batch = len(traces)
        self.batch = batch
        self._traces = traces
        while len(self._cache_models) < batch:
            self._cache_models.append(self._cache_model_factory())
        del self._cache_models[batch:]
        while len(self._rngs) < batch:
            self._rngs.append(new_rng(None))
        del self._rngs[batch:]
        if rngs is not None:
            for i, seed in enumerate(rngs):
                if seed is not None:
                    self._rngs[i] = new_rng(seed)
        for model in self._cache_models:
            model.reset()
        # Constant-miss fast path: when every slot's model is a constant,
        # the whole batch's cache resolution is one array broadcast.
        rates = [model.constant_miss_rate() for model in self._cache_models]
        self._const_miss: Optional[np.ndarray] = (
            np.array(rates, dtype=float) if all(r is not None for r in rates) else None
        )

        self.trace_len = np.array([len(t) for t in traces], dtype=np.int64)
        t_max = int(self.trace_len.max())
        self._read_kb = np.zeros((batch, t_max))
        self._write_kb = np.zeros((batch, t_max))
        for i, trace in enumerate(traces):
            for t, interval in enumerate(trace):
                self._read_kb[i, t] = interval.read_kb()
                self._write_kb[i, t] = interval.write_kb()

        initial_pool = CorePool.create(
            self.config.initial_allocation, self.config.min_cores_per_level
        )
        levels, _ = initial_pool.to_arrays()
        self.core_level = np.tile(levels, (batch, 1))
        self.cooldown = np.zeros((batch, self.num_cores), dtype=np.int64)
        self.counts = np.tile(
            np.array(initial_pool.counts_vector(), dtype=np.int64), (batch, 1)
        )
        self.backlog = np.zeros((batch, _NUM_LEVELS))
        self.interval_index = np.zeros(batch, dtype=np.int64)
        self.steps_taken = np.zeros(batch, dtype=np.int64)
        self.done = np.zeros(batch, dtype=bool)
        self.truncated = np.zeros(batch, dtype=bool)
        self.max_intervals = (
            self.config.max_intervals_factor * self.trace_len
            + self.config.max_intervals_slack
        ).astype(np.int64)
        self.incoming = np.zeros((batch, _NUM_LEVELS))
        self.processed = np.zeros((batch, _NUM_LEVELS))
        self.capacity = np.zeros((batch, _NUM_LEVELS))
        self.utilization = np.zeros((batch, _NUM_LEVELS))
        self.idle = np.zeros((batch, _NUM_LEVELS), dtype=np.int64)
        self.cache_miss = np.zeros(batch)
        self.migration_applied = np.zeros(batch, dtype=bool)
        self.episodes = [EpisodeMetrics(trace_name=t.name) for t in traces]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, actions: Sequence[int]) -> np.ndarray:
        """Advance every unfinished slot one interval; returns the stepped mask.

        Finished slots ignore their action, consume no randomness and
        keep their final accumulator values; callers that need strict
        scalar semantics (step-after-done is an error) enforce it above
        this layer.
        """
        if self.batch == 0:
            raise SimulationError("simulator has not been reset with a trace")
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.batch,):
            raise SimulationError(
                f"expected ({self.batch},) actions, got shape {actions.shape}"
            )
        if ((actions < 0) | (actions >= _NUM_ACTIONS)).any():
            raise SimulationError(
                f"action indices must be in [0, {_NUM_ACTIONS}), got {actions}"
            )
        stepped = ~self.done
        rows = np.nonzero(stepped)[0]
        self.last_step_all_active = all_active = rows.size == self.batch
        if rows.size == 0:
            return stepped
        # Whole-batch steps (the common case until episodes start
        # finishing) index with a slice: views instead of gather/scatter.
        ix = slice(None) if all_active else rows

        self._apply_migrations(rows, actions)
        self._inject_workload(rows)
        self._sample_idle(rows)
        if self._grouped_supported and rows.size >= self._grouped_min_rows:
            self._process_intervals_grouped(ix)
        else:
            self._process_intervals_reference(rows)

        # Advance time and decay migration penalties (CorePool.tick).
        if all_active:
            self.cooldown -= self.cooldown > 0
        else:
            cool = self.cooldown[rows]
            self.cooldown[rows] = cool - (cool > 0)
        self.interval_index[ix] += 1
        self.steps_taken[ix] += 1

        injected_all = self.interval_index[ix] >= self.trace_len[ix]
        if injected_all.any():
            drained = (self.backlog[ix] <= _DRAIN_EPSILON).all(axis=1)
            finished = injected_all & drained
        else:
            # No slot has injected its full trace yet, so none can finish
            # this interval (mid-episode fast path).
            finished = injected_all
        truncated_now = (self.steps_taken[ix] >= self.max_intervals[ix]) & ~finished
        if truncated_now.any():
            self.truncated[ix] |= truncated_now
            for slot in rows[truncated_now].tolist():
                self.episodes[slot].truncated = True
        self.done[ix] = finished | self.truncated[ix]

        if self._record_metrics:
            self._record_interval_metrics(rows, actions)
        return stepped

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _apply_migrations(self, rows: np.ndarray, actions: np.ndarray) -> None:
        """Resolve all slots' migration actions in one vectorized pass.

        Candidate choice matches ``CorePool.migrate_one``: the
        lowest-id core at the source level that is not already paying a
        penalty, falling back to the lowest-id penalised core.
        """
        self.migration_applied[rows] = False
        moving = rows[actions[rows] != 0]
        if moving.size == 0:
            return
        src = ACTION_SOURCE_INDICES[actions[moving]]
        dst = ACTION_DEST_INDICES[actions[moving]]
        legal = self.counts[moving, src] > self.config.min_cores_per_level
        moving, src, dst = moving[legal], src[legal], dst[legal]
        if moving.size == 0:
            return
        n = self.num_cores
        # Selection key per core: id for full-speed cores, id + N for
        # penalised ones, 2N for cores at other levels; argmin == the
        # (is_penalized, core_id) sort order of the scalar pool.
        key = np.where(
            self.core_level[moving] == src[:, None],
            self._arange(n)[None, :] + n * (self.cooldown[moving] > 0),
            2 * n,
        )
        chosen = key.argmin(axis=1)
        self.core_level[moving, chosen] = dst
        self.cooldown[moving, chosen] = np.maximum(
            self.cooldown[moving, chosen], self.config.migration_cooldown_intervals + 1
        )
        self.counts[moving, src] -= 1
        self.counts[moving, dst] += 1
        self.migration_applied[moving] = True

    def _inject_workload(self, rows: np.ndarray) -> None:
        """Add this interval's per-level demand to the backlogs (array form
        of the scalar simulator's incoming-work computation)."""
        self.incoming[rows] = 0.0
        self.cache_miss[rows] = 0.0
        inject = rows[self.interval_index[rows] < self.trace_len[rows]]
        if inject.size == 0:
            return
        t = self.interval_index[inject]
        if self._const_miss is not None:
            miss = self._const_miss[inject]
        else:
            # Stateful models advance exactly once per injected interval,
            # per slot, in slot order — matching the scalar call pattern.
            miss = np.array(
                [
                    self._cache_models[slot].miss_rate(self._traces[slot][int(ti)])
                    for slot, ti in zip(inject.tolist(), t.tolist())
                ]
            )
        self.cache_miss[inject] = miss
        read_kb = self._read_kb[inject, t]
        write_kb = self._write_kb[inject, t]
        missed_read_kb = read_kb * miss
        config = self.config
        self.incoming[inject, 0] = read_kb + write_kb
        self.incoming[inject, 1] = (
            write_kb * config.kv_write_factor
            + missed_read_kb * config.kv_read_miss_factor
        )
        self.incoming[inject, 2] = (
            write_kb * config.rv_write_factor
            + missed_read_kb * config.rv_read_miss_factor
        )
        self.backlog[inject] += self.incoming[inject]

    def _sample_idle(self, rows: np.ndarray) -> None:
        """Draw each slot's idle-core counts (Poisson, scalar draws).

        Each slot consumes the identical variates, in the identical
        NORMAL/KV/RV order, as the scalar simulator's per-level calls —
        levels with one core (or ``idle_rate == 0``) draw nothing,
        exactly like the scalar skip.  Scalar ``poisson`` calls beat one
        array-lambda call by ~6x, and draws are almost always zero, so
        only nonzero results touch the idle matrix.
        """
        self.idle[rows] = 0
        if self.config.idle_rate <= 0:
            return
        lam_rows = (self.config.idle_rate * self.counts[rows]).tolist()
        counts_rows = self.counts[rows].tolist()
        rngs = self._rngs
        idle = self.idle
        for j, slot in enumerate(rows.tolist()):
            rng = rngs[slot]
            lam = lam_rows[j]
            cell_counts = counts_rows[j]
            for level_index in range(_NUM_LEVELS):
                core_count = cell_counts[level_index]
                if core_count > 1:
                    draw = int(rng.poisson(lam[level_index]))
                    if draw:
                        idle[slot, level_index] = min(draw, core_count - 1)

    def _process_intervals_grouped(self, ix) -> None:
        """Vectorized polling dispatch + accounting over all (slot, level) cells.

        Cores are grouped by level with one stable argsort per slot and
        gathered into an ``(A, 3, n_max)`` positional capacity tensor.
        Both reductions (processed and capacity totals) then run as one
        fused masked column sweep for cells below 8 cores — numpy's
        pairwise summation is plain left-to-right there, which the sweep
        replays exactly — while the few wider cells reduce through
        numpy's own row ``sum()`` per distinct core count, so every cell
        is bit-identical to the scalar per-level reductions.  Idled cores
        are zeroed exactly like the scalar path: uniform cells (no
        penalised core at the level) idle their first ``idle`` cores —
        ``np.argsort`` of a constant row is the identity permutation —
        and the rare penalised+idle cells replay the scalar argsort
        ranking individually.
        """
        counts = self.counts[ix]
        n_max = int(counts.max())
        if int(counts.min()) == 0:
            raise SimulationError(
                "polling dispatch requires at least one core per level"
            )
        batch = counts.shape[0]
        penalized_cores = self.cooldown[ix] > 0
        any_penalty = penalized_cores.any()
        if any_penalty:
            core_level = self.core_level[ix]
            order = np.argsort(core_level, axis=1, kind="stable")
            capall = np.where(
                penalized_cores, self._penalized_capability, self._capability
            )
            arow = np.arange(batch)[:, None]
            sorted_caps = capall[arow, order]
            starts = np.zeros((batch, _NUM_LEVELS), dtype=np.int64)
            starts[:, 1] = counts[:, 0]
            starts[:, 2] = counts[:, 0] + counts[:, 1]
            cols = np.minimum(
                starts[:, :, None] + self._arange(n_max)[None, None, :],
                self.num_cores - 1,
            )
            caps = sorted_caps[arow[:, :, None], cols]
        else:
            caps = np.full((batch, _NUM_LEVELS, n_max), self._capability)

        # Zero the columns past each cell's core count: adding +0.0 is an
        # exact identity, so the column accumulations below reduce just
        # the valid prefix (all capacities are >= 0, so 0 * garbage is
        # +0.0).
        caps *= self._arange(n_max)[None, None, :] < counts[:, :, None]

        idle = self.idle[ix]
        busy = idle > 0
        if busy.any():
            if any_penalty:
                # A cell needs the argsort ranking only when the level
                # mixes full-speed and penalised cores; uniform cells
                # idle their first cores (argsort of a constant row is
                # the identity permutation).
                penalized_cells = (caps == self._penalized_capability).any(axis=-1)
                uniform_busy = busy & ~penalized_cells
                mixed_busy = busy & penalized_cells
            else:
                uniform_busy = busy
                mixed_busy = None
            if uniform_busy.any():
                zero_mask = (
                    self._arange(n_max)[None, None, :] < idle[:, :, None]
                ) & uniform_busy[:, :, None]
                caps[zero_mask] = 0.0
            if mixed_busy is not None and mixed_busy.any():
                for a, level in zip(*np.nonzero(mixed_busy)):
                    cell_caps = caps[a, level, : counts[a, level]]
                    rank = np.argsort(-cell_caps)
                    cell_caps[rank[: idle[a, level]]] = 0.0

        pending = self.backlog[ix]
        share = pending / counts
        # vals[0] = per-core processed, vals[1] = per-core capacity; the
        # stacked layout lets one column sweep reduce both.
        vals = self._sweep_buffers.get((batch, n_max))
        if vals is None:
            vals = np.empty((2, batch, _NUM_LEVELS, n_max))
            self._sweep_buffers[(batch, n_max)] = vals
        np.minimum(share[:, :, None], caps, out=vals[0])
        vals[1] = caps
        # Left-to-right column accumulation: numpy's pairwise summation
        # of fewer than 8 elements.
        totals = vals[..., 0].copy()
        for j in range(1, min(n_max, 7)):
            totals += vals[..., j]
        if n_max >= 8:
            # Cells of 8..15 cores follow numpy's unrolled-8 pairwise
            # path: a balanced tree over the first eight values plus a
            # sequential tail (columns past a cell's count add +0.0).
            tree = (
                (vals[..., 0] + vals[..., 1]) + (vals[..., 2] + vals[..., 3])
            ) + ((vals[..., 4] + vals[..., 5]) + (vals[..., 6] + vals[..., 7]))
            for j in range(8, n_max):
                tree += vals[..., j]
            totals = np.where(counts >= 8, tree, totals)

        tp, tc = totals[0], totals[1]
        self.processed[ix] = tp
        self.capacity[ix] = tc
        self.utilization[ix] = np.minimum(1.0, tp / tc)
        self.backlog[ix] = np.maximum(0.0, pending - tp)

    def _process_intervals_reference(self, rows: np.ndarray) -> None:
        """Per-cell dispatch loop — the scalar simulator's exact inner loop.

        Serves the B=1 view (where the grouped gather costs more than it
        saves) and non-polling dispatchers; bit-identical to the grouped
        kernel where both apply.
        """
        capability = self._capability
        for slot in rows.tolist():
            level_row = self.core_level[slot]
            cooldown_row = self.cooldown[slot]
            no_penalty = not (cooldown_row > 0).any()
            for level_index in range(_NUM_LEVELS):
                core_count = int(self.counts[slot, level_index])
                idle = int(self.idle[slot, level_index])
                if idle == 0 and no_penalty:
                    capacities, total_capacity = self._uniform_capacities(core_count)
                else:
                    if no_penalty:
                        capacities = np.full(core_count, capability, dtype=float)
                    else:
                        member = level_row == level_index
                        capacities = np.where(
                            cooldown_row[member] > 0,
                            self._penalized_capability,
                            capability,
                        ).astype(float)
                    if idle > 0:
                        order = np.argsort(-capacities)
                        capacities[order[:idle]] = 0.0
                    total_capacity = float(capacities.sum())
                pending = self.backlog[slot, level_index]
                if self._dispatch_is_polling and capacities.size:
                    processed_kb = np.minimum(pending / capacities.size, capacities)
                else:
                    processed_kb = self._dispatch(pending, capacities).processed_kb
                total_processed = float(processed_kb.sum())
                self.processed[slot, level_index] = total_processed
                self.capacity[slot, level_index] = total_capacity
                self.utilization[slot, level_index] = (
                    min(1.0, total_processed / total_capacity)
                    if total_capacity > 0
                    else 0.0
                )
                self.backlog[slot, level_index] = max(0.0, pending - total_processed)

    def _arange(self, n: int) -> np.ndarray:
        """Cached read-only ``np.arange(n)`` (hot-path index helper)."""
        cached = self._arange_cache.get(n)
        if cached is None:
            cached = np.arange(n)
            cached.setflags(write=False)
            self._arange_cache[n] = cached
        return cached

    def _uniform_capacities(self, core_count: int) -> Tuple[np.ndarray, float]:
        """Cached (read-only array, pairwise sum) of full-speed cores."""
        cached = self._capacity_cache.get(core_count)
        if cached is None:
            array = np.full(core_count, self._capability, dtype=float)
            array.setflags(write=False)
            cached = (array, float(array.sum()))
            self._capacity_cache[core_count] = cached
        return cached

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_interval_metrics(self, rows: np.ndarray, actions: np.ndarray) -> None:
        for slot in rows.tolist():
            metrics = IntervalMetrics(
                interval=int(self.interval_index[slot]) - 1,
                action=action_from_index(int(actions[slot])),
                migration_applied=bool(self.migration_applied[slot]),
                core_counts=dict(zip(LEVELS, (int(c) for c in self.counts[slot]))),
                utilization=dict(zip(LEVELS, self.utilization[slot].tolist())),
                incoming_kb=dict(zip(LEVELS, self.incoming[slot].tolist())),
                processed_kb=dict(zip(LEVELS, self.processed[slot].tolist())),
                backlog_kb=dict(zip(LEVELS, self.backlog[slot].tolist())),
                capacity_kb=dict(zip(LEVELS, self.capacity[slot].tolist())),
                cache_miss_rate=float(self.cache_miss[slot]),
                idle_cores=dict(zip(LEVELS, (int(c) for c in self.idle[slot]))),
            )
            self.episodes[slot].record(metrics)
