"""Struct-of-arrays simulator core: B episodes advanced as array kernels.

:class:`VectorSimulatorState` holds the complete state of ``B``
independent storage-simulator episodes in B-major numpy arrays — level
occupancies (backlogs), per-core residency and migration cooldowns, and
the per-interval accumulators — and advances every unfinished episode in
one pass per interval.  Where the scalar simulator ran B Python loops
over the three levels (the dominant cost of batched rollout collection),
the vectorized kernels resolve migrations, workload injection, cache
hit/miss accounting, idle sampling, and polling dispatch with a handful
of array operations over all ``(slot, level)`` cells at once.

Determinism contract
--------------------
Slot ``i`` of a vector episode is **bit-identical** to a scalar
:class:`~repro.storage.simulator.StorageSimulator` episode on the same
trace with the same rng stream (and the scalar simulator itself is the
``B=1`` view of this state).  Three properties carry that guarantee:

* every per-cell floating-point reduction is performed on the same
  values in the same order as the scalar code (numpy's pairwise
  summation over a contiguous row matches the standalone vector sum,
  which ``tests/test_vector_state.py`` pins);
* per-slot rng streams are consumed identically: one masked
  ``Generator.poisson`` call per slot draws the same variates, in the
  same level order, as the scalar per-level calls;
* selection logic (migration candidate choice, idle-core ranking via
  ``np.argsort``) replicates the scalar tie-breaking exactly.

Core layout
-----------
Cores are stored in a **fixed level-major layout**: per slot, a padded
positional tensor ``(level, position)`` whose row ``l`` holds the cores
currently at level ``l`` in ascending core-id order (``counts[l]`` valid
positions, then padding — sentinel ids, zero cooldowns).  "The
capacities of level ``l``'s cores in scalar order" is therefore a plain
row read — the per-interval ``argsort``/gather the id-major layout
needed is gone entirely — and a migration only rewrites the two level
rows it touches (one vectorized shift each across all migrating slots).
:meth:`CorePool.to_level_major` defines the flat form of the same
layout, used at the reset/snapshot boundary.

Episodes of different lengths coexist: finished slots are masked out of
every kernel and stop consuming randomness, so a partial batch drains
without perturbing the remaining slots.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.storage.cache import CacheModel
from repro.storage.cores import CorePool
from repro.storage.dispatcher import get_dispatcher, replicated_pairwise_sum
from repro.storage.levels import LEVELS
from repro.storage.metrics import EpisodeMetrics, IntervalMetrics, StepValues
from repro.storage.migration import (
    ACTION_DEST_INDICES,
    ACTION_SOURCE_INDICES,
    NUM_ACTIONS as _NUM_ACTIONS,
    action_from_index,
)
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import PhiloxStreams, SeedLike, _poisson_from_uniform, new_rng

_NUM_LEVELS = len(LEVELS)
_DRAIN_EPSILON = 1e-9


class VectorSimulatorState:
    """B-major state and vectorized update kernels for lockstep episodes.

    One instance is reused across resets; the batch size is set by each
    :meth:`reset` call.  Per-slot rng streams and cache models persist
    across resets (continuing their streams unless a reset supplies new
    seeds), mirroring the scalar simulator's reset semantics.
    """

    def __init__(
        self,
        config,
        record_metrics: bool = False,
        cache_model_factory: Optional[Callable[[], CacheModel]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self._record_metrics = bool(record_metrics)
        self._cache_model_factory = cache_model_factory or config.build_cache_model
        self._dispatch = get_dispatcher(config.dispatcher)
        self._dispatch_is_polling = config.dispatcher == "polling"
        self._capability = float(config.core_capability_kb)
        self._penalized_capability = self._capability * (1.0 - config.migration_penalty)
        self._capacity_cache: dict = {}
        self._arange_cache: dict = {}
        self._sweep_buffers: dict = {}
        # table[k] = numpy's pairwise sum of k full-speed capacities; the
        # uniform dispatch fast path gathers level capacity totals from
        # it instead of re-reducing per interval.
        self._uniform_sums = np.array(
            [
                np.full(k, self._capability).sum()
                for k in range(config.total_cores + 1)
            ]
        )
        self._uniform_sums.setflags(write=False)
        self._idle_drawn = False
        self.last_step_all_active = False
        # Kernel selection: the grouped kernel is gather-free on the
        # padded level-major layout and beats the per-cell reference loop
        # at every batch size, so it is the default whenever the
        # dispatcher supports it; both kernels are bit-identical, and
        # tests raise this switch to force the reference kernel.
        self._grouped_min_rows = 1
        # The grouped kernel's column sweep replays numpy's pairwise
        # summation for rows below 16 elements (left-to-right under 8,
        # unrolled tree + tail up to 15); wider levels — impossible with
        # <= 17 cores — and non-polling dispatchers use the reference
        # kernel.
        # A level can hold at most total - (levels-1) * min cores; this
        # bound is also the width of the padded positional core arrays.
        self._level_capacity = config.total_cores - (
            (_NUM_LEVELS - 1) * config.min_cores_per_level
        )
        self._grouped_supported = (
            self._dispatch_is_polling and self._level_capacity <= 15
        )
        # Sentinel core id marking padding positions; it compares greater
        # than every real id — and also greater than any penalised core's
        # selection key ``id + N`` — so insertion-point searches and the
        # migration-candidate argmin need no validity masks.
        self._id_sentinel = 2 * config.total_cores
        self.batch = 0
        self._cache_models: List[CacheModel] = []
        self._rngs: List[np.random.Generator] = []
        self._philox: Optional[PhiloxStreams] = None
        self._traces: List[WorkloadTrace] = []
        self.episodes: List[EpisodeMetrics] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_metrics(self) -> bool:
        return self._record_metrics

    @property
    def num_cores(self) -> int:
        return int(self.config.total_cores)

    def trace(self, slot: int) -> WorkloadTrace:
        return self._traces[slot]

    def trace_length(self, slot: int) -> int:
        return int(self.trace_len[slot])

    def rng(self, slot: int) -> np.random.Generator:
        return self._rngs[slot]

    def cache_model(self, slot: int) -> CacheModel:
        return self._cache_models[slot]

    def core_pool_view(self, slot: int) -> CorePool:
        """A :class:`CorePool` materialised from one slot's arrays.

        The pool is a *snapshot*: mutating it does not write back into
        the array state.  Intended for read-only consumers (action
        masking helpers, diagnostics, tests).
        """
        counts = self.counts[slot]
        core_ids = np.concatenate(
            [
                self.pos_ids[slot, level, : counts[level]]
                for level in range(_NUM_LEVELS)
            ]
        )
        cooldowns = np.concatenate(
            [
                self.pos_cooldown[slot, level, : counts[level]]
                for level in range(_NUM_LEVELS)
            ]
        )
        return CorePool.from_level_major(
            core_ids, cooldowns, counts, self.config.min_cores_per_level
        )

    def counts_row(self, slot: int) -> np.ndarray:
        return self.counts[slot]

    def step_values(self, slot: int) -> StepValues:
        """The scalar simulator's lightweight per-interval summary for a slot."""
        return StepValues(
            incoming_kb=tuple(self.incoming[slot]),
            processed_kb=tuple(self.processed[slot]),
            capacity_kb=tuple(self.capacity[slot]),
            utilization=tuple(self.utilization[slot]),
            backlog_kb=tuple(self.backlog[slot]),
        )

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(
        self,
        traces: Sequence[WorkloadTrace],
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> None:
        """Start one episode per trace; ``rngs[i]`` (optional) seeds slot i."""
        traces = list(traces)
        if not traces:
            raise SimulationError("reset() needs at least one trace")
        if rngs is not None and len(rngs) != len(traces):
            raise SimulationError(
                f"got {len(rngs)} rng streams for {len(traces)} traces"
            )
        for trace in traces:
            if len(trace) == 0:
                raise SimulationError(f"trace {trace.name!r} has no intervals")
        batch = len(traces)
        self.batch = batch
        self._traces = traces
        while len(self._cache_models) < batch:
            self._cache_models.append(self._cache_model_factory())
        del self._cache_models[batch:]
        if isinstance(rngs, PhiloxStreams):
            # Counter-based family: the batch shares one stream object so
            # idle sampling can materialise every slot's draws in a single
            # vectorized call; ``self._rngs`` holds per-slot lane views of
            # the same cursors so slot-level accessors keep working.
            self._philox = rngs
            self._rngs = [rngs.lane(i) for i in range(batch)]
        else:
            self._philox = None
            while len(self._rngs) < batch:
                self._rngs.append(new_rng(None))
            del self._rngs[batch:]
            if rngs is not None:
                for i, seed in enumerate(rngs):
                    if seed is not None:
                        self._rngs[i] = new_rng(seed)
        for model in self._cache_models:
            model.reset()
        # Constant-miss fast path: when every slot's model is a constant,
        # the whole batch's cache resolution is one array broadcast.
        rates = [model.constant_miss_rate() for model in self._cache_models]
        self._const_miss: Optional[np.ndarray] = (
            np.array(rates, dtype=float) if all(r is not None for r in rates) else None
        )

        self.trace_len = np.array([len(t) for t in traces], dtype=np.int64)
        t_max = int(self.trace_len.max())
        self._read_kb = np.zeros((batch, t_max))
        self._write_kb = np.zeros((batch, t_max))
        for i, trace in enumerate(traces):
            for t, interval in enumerate(trace):
                self._read_kb[i, t] = interval.read_kb()
                self._write_kb[i, t] = interval.write_kb()

        initial_pool = CorePool.create(
            self.config.initial_allocation, self.config.min_cores_per_level
        )
        lm_ids, lm_cooldowns, lm_counts = initial_pool.to_level_major()
        width = max(self._level_capacity, int(lm_counts.max()))
        pos_state = np.zeros((2, _NUM_LEVELS, width), dtype=np.int64)
        pos_state[0] = self._id_sentinel
        offset = 0
        for level, count in enumerate(lm_counts):
            pos_state[0, level, :count] = lm_ids[offset : offset + count]
            pos_state[1, level, :count] = lm_cooldowns[offset : offset + count]
            offset += count
        # Ids and cooldowns share one (2, B, levels, width) tensor so the
        # migration kernel moves both with single gathers; ``pos_ids`` /
        # ``pos_cooldown`` are *contiguous* views of its two leading
        # planes (the dispatch kernels read cooldowns every interval).
        self._pos_state = np.tile(pos_state[:, None], (1, batch, 1, 1))
        self.pos_ids = self._pos_state[0]
        self.pos_cooldown = self._pos_state[1]
        self.counts = np.tile(lm_counts, (batch, 1))
        # Shift permutations for delete-at-p / insert-at-q row surgery,
        # precomputed per offset so a migration only gathers table rows.
        offs = np.arange(width)
        self._del_perm_table = np.minimum(
            offs[None, :] + (offs[None, :] >= offs[:, None]), width - 1
        )
        self._ins_perm_table = np.maximum(
            offs[None, :] - (offs[None, :] > offs[:, None]), 0
        )
        self.backlog = np.zeros((batch, _NUM_LEVELS))
        self.interval_index = np.zeros(batch, dtype=np.int64)
        # The next-interval cursor and the makespan counter advance in
        # lockstep (both +1 per stepped slot, nothing else writes them),
        # so they share one array; the two names keep the two meanings
        # readable at their use sites.
        self.steps_taken = self.interval_index
        self.done = np.zeros(batch, dtype=bool)
        self.truncated = np.zeros(batch, dtype=bool)
        self.max_intervals = (
            self.config.max_intervals_factor * self.trace_len
            + self.config.max_intervals_slack
        ).astype(np.int64)
        self.incoming = np.zeros((batch, _NUM_LEVELS))
        self.processed = np.zeros((batch, _NUM_LEVELS))
        self.capacity = np.zeros((batch, _NUM_LEVELS))
        self.utilization = np.zeros((batch, _NUM_LEVELS))
        self.idle = np.zeros((batch, _NUM_LEVELS), dtype=np.int64)
        # Truncation bookkeeping: no slot can hit its interval cap before
        # the smallest cap many steps have elapsed, so the per-interval
        # truncation checks are skipped until then (and the done-mask OR
        # is skipped until a truncation actually happened).
        self._steps_elapsed = 0
        self._min_max_intervals = int(self.max_intervals.min())
        self._any_truncated = False
        self.cache_miss = np.zeros(batch)
        self.migration_applied = np.zeros(batch, dtype=bool)
        self.episodes = [EpisodeMetrics(trace_name=t.name) for t in traces]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, actions: Sequence[int]) -> np.ndarray:
        """Advance every unfinished slot one interval; returns the stepped mask.

        Finished slots ignore their action, consume no randomness and
        keep their final accumulator values; callers that need strict
        scalar semantics (step-after-done is an error) enforce it above
        this layer.
        """
        if self.batch == 0:
            raise SimulationError("simulator has not been reset with a trace")
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.batch,):
            raise SimulationError(
                f"expected ({self.batch},) actions, got shape {actions.shape}"
            )
        if int(actions.min()) < 0 or int(actions.max()) >= _NUM_ACTIONS:
            raise SimulationError(
                f"action indices must be in [0, {_NUM_ACTIONS}), got {actions}"
            )
        stepped = ~self.done
        active_count = int(stepped.sum())
        self.last_step_all_active = all_active = active_count == self.batch
        if active_count == 0:
            return stepped
        rows = self._arange(self.batch) if all_active else np.nonzero(stepped)[0]
        # Whole-batch steps (the common case until episodes start
        # finishing) index with a slice: views instead of gather/scatter.
        ix = slice(None) if all_active else rows

        self._apply_migrations(rows, actions)
        self._inject_workload(rows)
        self._sample_idle(rows)
        if self._grouped_supported and rows.size >= self._grouped_min_rows:
            self._process_intervals_grouped(ix)
        else:
            self._process_intervals_reference(rows)

        # Advance time and decay migration penalties (CorePool.tick);
        # padding positions hold zero cooldowns and stay zero.
        if all_active:
            self.pos_cooldown -= self.pos_cooldown > 0
        else:
            cool = self.pos_cooldown[rows]
            self.pos_cooldown[rows] = cool - (cool > 0)
        self.interval_index[ix] += 1  # also advances steps_taken (shared array)

        self._steps_elapsed += 1
        injected_all = self.interval_index[ix] >= self.trace_len[ix]
        if injected_all.any():
            drained = (self.backlog[ix] <= _DRAIN_EPSILON).all(axis=1)
            finished = injected_all & drained
        else:
            # No slot has injected its full trace yet, so none can finish
            # this interval (mid-episode fast path).
            finished = injected_all
        if self._steps_elapsed >= self._min_max_intervals:
            truncated_now = (
                self.steps_taken[ix] >= self.max_intervals[ix]
            ) & ~finished
            if truncated_now.any():
                self.truncated[ix] |= truncated_now
                self._any_truncated = True
                for slot in rows[truncated_now].tolist():
                    self.episodes[slot].truncated = True
        if self._any_truncated:
            self.done[ix] = finished | self.truncated[ix]
        else:
            self.done[ix] = finished

        if self._record_metrics:
            self._record_interval_metrics(rows, actions)
        return stepped

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _apply_migrations(self, rows: np.ndarray, actions: np.ndarray) -> None:
        """Resolve all slots' migration actions in one vectorized pass.

        Candidate choice matches ``CorePool.migrate_one``: the
        lowest-id core at the source level that is not already paying a
        penalty, falling back to the lowest-id penalised core.  The
        padded level-major layout is maintained with two vectorized row
        shifts over all migrating slots: delete the chosen core from its
        source level row, insert it id-sorted into the destination row.
        """
        if self._record_metrics:
            self.migration_applied[rows] = False
        moving = rows[actions[rows] != 0]
        if moving.size == 0:
            return
        src = ACTION_SOURCE_INDICES[actions[moving]]
        dst = ACTION_DEST_INDICES[actions[moving]]
        legal = self.counts[moving, src] > self.config.min_cores_per_level
        if not legal.all():
            moving, src, dst = moving[legal], src[legal], dst[legal]
            if moving.size == 0:
                return
        m = moving.size
        m_idx = self._arange(m)

        # One gather serves both affected level rows of every migrating
        # slot: rows [0:m] are the sources, rows [m:2m] the destinations
        # (source and destination are different levels, so the final
        # scatter has no write conflicts).
        pair_slots = np.concatenate([moving, moving])
        pair_levels = np.concatenate([src, dst])
        pair_state = self._pos_state[:, pair_slots, pair_levels]   # (2, 2m, width)
        src_ids, src_cooldown = pair_state[0, :m], pair_state[1, :m]
        dst_ids = pair_state[0, m:]
        src_count = self.counts[moving, src]

        # Chosen core: id + N * is_penalized is exactly the scalar
        # (is_penalized, core_id) sort key, and the 2N sentinel of the
        # padding positions compares greater than every valid key, so the
        # argmin needs no validity mask.
        key = src_ids + self.num_cores * (src_cooldown > 0)
        p = key.argmin(axis=1)
        chosen_ids = src_ids[m_idx, p]
        chosen_cooldown = src_cooldown[m_idx, p]
        # Insertion offset in the destination row keeping ids ascending
        # (again mask-free thanks to the sentinel padding ids).
        q = (dst_ids < chosen_ids[:, None]).sum(axis=1)

        # Source rows shift left from p (delete); destination rows shift
        # right from q (insert) — both permutations come straight from
        # the precomputed shift tables.
        perm = np.concatenate([self._del_perm_table[p], self._ins_perm_table[q]])
        new_state = pair_state[
            self._arange(2)[:, None, None],
            self._arange(2 * m)[None, :, None],
            perm[None, :, :],
        ]
        # Source fix-up: when the row was full, the clipped shift leaves
        # a ghost copy of the last core in the padding — re-pad the new
        # end position (a no-op otherwise).
        new_state[0, m_idx, src_count - 1] = self._id_sentinel
        new_state[1, m_idx, src_count - 1] = 0
        # Destination fix-up: place the migrated core at q with its
        # refreshed penalty window.
        dst_rows = m_idx + m
        new_state[0, dst_rows, q] = chosen_ids
        new_state[1, dst_rows, q] = np.maximum(
            chosen_cooldown, self.config.migration_cooldown_intervals + 1
        )
        self._pos_state[:, pair_slots, pair_levels] = new_state
        self.counts[moving, src] = src_count - 1
        self.counts[moving, dst] += 1
        if self._record_metrics:
            self.migration_applied[moving] = True

    def _inject_workload(self, rows: np.ndarray) -> None:
        """Add this interval's per-level demand to the backlogs (array form
        of the scalar simulator's incoming-work computation)."""
        self.incoming[rows] = 0.0
        self.cache_miss[rows] = 0.0
        injecting = self.interval_index[rows] < self.trace_len[rows]
        if injecting.all():
            # Mid-episode fast path: every stepped slot still has trace
            # intervals left, so no filtering gathers are needed (and
            # with all slots active the accumulator updates below are
            # whole-array writes).
            inject = rows
            t = self.interval_index if rows.size == self.batch else self.interval_index[rows]
        else:
            inject = rows[injecting]
            if inject.size == 0:
                return
            t = self.interval_index[inject]
        if self._const_miss is not None:
            miss = self._const_miss[inject]
        else:
            # Stateful models advance exactly once per injected interval,
            # per slot, in slot order — matching the scalar call pattern.
            miss = np.array(
                [
                    self._cache_models[slot].miss_rate(self._traces[slot][int(ti)])
                    for slot, ti in zip(inject.tolist(), t.tolist())
                ]
            )
        read_kb = self._read_kb[inject, t]
        write_kb = self._write_kb[inject, t]
        missed_read_kb = read_kb * miss
        config = self.config
        if inject is rows and rows.size == self.batch:
            # Whole-batch injection: plain views instead of gather/scatter.
            self.cache_miss[...] = miss
            incoming = self.incoming
            incoming[:, 0] = read_kb + write_kb
            incoming[:, 1] = (
                write_kb * config.kv_write_factor
                + missed_read_kb * config.kv_read_miss_factor
            )
            incoming[:, 2] = (
                write_kb * config.rv_write_factor
                + missed_read_kb * config.rv_read_miss_factor
            )
            self.backlog += incoming
            return
        self.cache_miss[inject] = miss
        self.incoming[inject, 0] = read_kb + write_kb
        self.incoming[inject, 1] = (
            write_kb * config.kv_write_factor
            + missed_read_kb * config.kv_read_miss_factor
        )
        self.incoming[inject, 2] = (
            write_kb * config.rv_write_factor
            + missed_read_kb * config.rv_read_miss_factor
        )
        self.backlog[inject] += self.incoming[inject]

    def _sample_idle(self, rows: np.ndarray) -> None:
        """Draw each slot's idle-core counts (Poisson, scalar draws).

        Each slot consumes the identical variates, in the identical
        NORMAL/KV/RV order, as the scalar simulator's per-level calls —
        levels with one core (or ``idle_rate == 0``) draw nothing,
        exactly like the scalar skip.  Scalar ``poisson`` calls beat one
        array-lambda call by ~6x, and draws are almost always zero, so
        only nonzero results touch the idle matrix.
        """
        self._idle_drawn = False
        if self.config.idle_rate <= 0:
            self.idle[rows] = 0
            return
        streams = self._philox
        if streams is not None:
            # Counter-based family: every multi-core (slot, level) cell
            # samples in ONE block draw + ONE Poisson inversion.  A
            # lane's eligible levels map to consecutive cursor values in
            # NORMAL/KV/RV order — the exact sequence the scalar
            # per-level calls consume — so slot i stays bit-identical to
            # a scalar episode on lane i (the inversion is element-wise,
            # hence shape-independent).
            counts = self.counts[rows]
            # Fused native sampler first: keystream + inversion in one C
            # call (bit-identical by contract, self-checked at load).
            lam = self.config.idle_rate * counts
            native = streams.idle_poisson(rows, counts, lam, np.exp(-lam))
            if native is not None:
                draws, fired = native
                self.idle[rows] = draws
                self._idle_drawn = fired > 0
                return
            self.idle[rows] = 0
            eligible = counts > 1
            if eligible.all():
                # Common case: every (slot, level) cell is multi-core,
                # so each lane consumes exactly _NUM_LEVELS consecutive
                # draws — one block call, no rank bookkeeping.
                sub = rows
                gathered = streams.uniforms_block(rows, _NUM_LEVELS)
            else:
                per_lane = eligible.sum(axis=1)
                active = per_lane > 0
                if not active.any():
                    self._idle_drawn = False
                    return
                sub = rows[active]
                counts = counts[active]
                eligible = eligible[active]
                uniforms = streams.uniforms_block(sub, per_lane[active])
                # Column of each eligible cell within its lane's block =
                # rank of the level among the lane's eligible levels.
                position = np.cumsum(eligible, axis=1) - 1
                gathered = uniforms[
                    np.arange(sub.shape[0])[:, None],
                    np.minimum(position, uniforms.shape[1] - 1),
                ]
                lam = np.where(eligible, self.config.idle_rate * counts, 0.0)
            # ``u < exp(-lam)`` is the inversion's k=0 outcome, so one
            # comparison finds the (typically few) firing cells and the
            # Poisson inversion runs on those alone.  Padding cells have
            # lam=0, term=1, u < 1 — they can never fire.
            term = np.exp(-lam)
            fire = gathered >= term
            if not fire.any():
                self._idle_drawn = False
                return
            slot_idx, level_idx = np.nonzero(fire)
            draws = _poisson_from_uniform(
                gathered[slot_idx, level_idx],
                lam[slot_idx, level_idx],
                term[slot_idx, level_idx],
            )
            self.idle[sub[slot_idx], level_idx] = np.minimum(
                draws, counts[slot_idx, level_idx] - 1
            )
            self._idle_drawn = True
            return
        self.idle[rows] = 0
        lam_rows = (self.config.idle_rate * self.counts[rows]).tolist()
        counts_rows = self.counts[rows].tolist()
        rngs = self._rngs
        idle = self.idle
        drawn = False
        for j, slot in enumerate(rows.tolist()):
            poisson = rngs[slot].poisson
            lam = lam_rows[j]
            c0, c1, c2 = counts_rows[j]
            # Unrolled over the three levels: same draws, same order as
            # the scalar per-level calls, minus the inner-loop overhead.
            if c0 > 1:
                draw = poisson(lam[0])
                if draw:
                    idle[slot, 0] = min(int(draw), c0 - 1)
                    drawn = True
            if c1 > 1:
                draw = poisson(lam[1])
                if draw:
                    idle[slot, 1] = min(int(draw), c1 - 1)
                    drawn = True
            if c2 > 1:
                draw = poisson(lam[2])
                if draw:
                    idle[slot, 2] = min(int(draw), c2 - 1)
                    drawn = True
        self._idle_drawn = drawn

    def _process_intervals_grouped(self, ix) -> None:
        """Vectorized polling dispatch + accounting over all (slot, level) cells.

        The level-major core layout makes "level ``l``'s capacities in
        scalar order" a row slice, so no per-interval argsort is needed.
        Two regimes:

        * **Uniform fast path** — no core anywhere is penalised or idled
          (the overwhelmingly common interval).  Every core of a cell
          then processes the same ``min(share, capability)``, so the
          pairwise reductions collapse to
          :func:`~repro.storage.dispatcher.replicated_pairwise_sum`
          (processed) and a per-count capacity-table gather — no
          ``(A, 3, n_max)`` tensor is materialised at all.
        * **General path** — capacities are gathered positionally from
          the level-major cooldown rows and both reductions run as one
          fused masked column sweep that replays numpy's pairwise
          summation (left-to-right under 8 elements, unrolled tree +
          tail up to 15), exactly as the scalar per-level reductions.
          Idled cores are zeroed like the scalar path: uniform cells
          idle their first ``idle`` cores (``np.argsort`` of a constant
          row is the identity permutation) and the rare penalised+idle
          cells replay the scalar argsort ranking individually.
        """
        counts = self.counts[ix]
        n_max = int(counts.max())
        if int(counts.min()) == 0:
            raise SimulationError(
                "polling dispatch requires at least one core per level"
            )
        pending = self.backlog[ix]
        pos_cooldown = self.pos_cooldown[ix]
        penalized_cores = pos_cooldown > 0
        any_penalty = penalized_cores.any()
        if not any_penalty and not self._idle_drawn:
            share = pending / counts
            per_core = np.minimum(share, self._capability)
            processed = replicated_pairwise_sum(per_core, counts, n_max)
            capacity = self._uniform_sums[counts]
            self.processed[ix] = processed
            self.capacity[ix] = capacity
            self.utilization[ix] = np.minimum(1.0, processed / capacity)
            self.backlog[ix] = np.maximum(0.0, pending - processed)
            return

        batch = counts.shape[0]
        width = pos_cooldown.shape[2]
        n_max = min(n_max, width)
        # The padded positional tensor IS the per-level capacity layout —
        # no gather, no argsort: position j of level row l holds the
        # l-level core with the j-th smallest id, padding cooldowns are
        # zero.  Zero the columns past each cell's core count so the
        # column accumulations below reduce just the valid prefix
        # (adding +0.0 is an exact identity).
        if any_penalty:
            caps = np.where(
                penalized_cores[..., :n_max],
                self._penalized_capability,
                self._capability,
            )
        else:
            caps = np.full((batch, _NUM_LEVELS, n_max), self._capability)
        caps *= self._arange(n_max)[None, None, :] < counts[:, :, None]

        if self._idle_drawn:
            idle = self.idle[ix]
            busy = idle > 0
            if any_penalty:
                # A cell needs the argsort ranking only when the level
                # mixes full-speed and penalised cores; uniform cells
                # idle their first cores (argsort of a constant row is
                # the identity permutation).
                penalized_cells = (caps == self._penalized_capability).any(axis=-1)
                uniform_busy = busy & ~penalized_cells
                mixed_busy = busy & penalized_cells
            else:
                uniform_busy = busy
                mixed_busy = None
            if uniform_busy.any():
                zero_mask = (
                    self._arange(n_max)[None, None, :] < idle[:, :, None]
                ) & uniform_busy[:, :, None]
                caps[zero_mask] = 0.0
            if mixed_busy is not None and mixed_busy.any():
                for a, level in zip(*np.nonzero(mixed_busy)):
                    cell_caps = caps[a, level, : counts[a, level]]
                    rank = np.argsort(-cell_caps)
                    cell_caps[rank[: idle[a, level]]] = 0.0

        share = pending / counts
        # vals[0] = per-core processed, vals[1] = per-core capacity; the
        # stacked layout lets one row reduction serve both.
        vals = self._sweep_buffers.get((batch, n_max))
        if vals is None:
            vals = np.empty((2, batch, _NUM_LEVELS, n_max))
            self._sweep_buffers[(batch, n_max)] = vals
        np.minimum(share[:, :, None], caps, out=vals[0])
        vals[1] = caps
        # numpy's own last-axis pairwise summation IS the scalar
        # reduction order — left-to-right for rows under 8 elements, the
        # unrolled-8 tree plus sequential tail for 8..15 — and zero
        # columns are exact identities *within* each regime, so one
        # ``sum`` per width class replaces the hand-rolled column sweep.
        # Cells below 8 cores must reduce over at most 7 columns, though:
        # the 8-wide tree associates their zero-padded values differently.
        if n_max < 8:
            totals = vals.sum(axis=-1)
        else:
            totals = np.where(
                counts >= 8, vals.sum(axis=-1), vals[..., :7].sum(axis=-1)
            )

        tp, tc = totals[0], totals[1]
        self.processed[ix] = tp
        self.capacity[ix] = tc
        self.utilization[ix] = np.minimum(1.0, tp / tc)
        self.backlog[ix] = np.maximum(0.0, pending - tp)

    def _process_intervals_reference(self, rows: np.ndarray) -> None:
        """Per-cell dispatch loop — the scalar simulator's exact inner loop.

        Serves the B=1 view (where the grouped gather costs more than it
        saves) and non-polling dispatchers; bit-identical to the grouped
        kernel where both apply.
        """
        capability = self._capability
        for slot in rows.tolist():
            cooldown_rows = self.pos_cooldown[slot]
            no_penalty = not (cooldown_rows > 0).any()
            for level_index in range(_NUM_LEVELS):
                core_count = int(self.counts[slot, level_index])
                idle = int(self.idle[slot, level_index])
                if idle == 0 and no_penalty:
                    capacities, total_capacity = self._uniform_capacities(core_count)
                else:
                    if no_penalty:
                        capacities = np.full(core_count, capability, dtype=float)
                    else:
                        # Level-major rows keep a level's cores in core-id
                        # order, so this slice matches the scalar
                        # ``cores_at`` iteration exactly.
                        capacities = np.where(
                            cooldown_rows[level_index, :core_count] > 0,
                            self._penalized_capability,
                            capability,
                        ).astype(float)
                    if idle > 0:
                        order = np.argsort(-capacities)
                        capacities[order[:idle]] = 0.0
                    total_capacity = float(capacities.sum())
                pending = self.backlog[slot, level_index]
                if self._dispatch_is_polling and capacities.size:
                    processed_kb = np.minimum(pending / capacities.size, capacities)
                else:
                    processed_kb = self._dispatch(pending, capacities).processed_kb
                total_processed = float(processed_kb.sum())
                self.processed[slot, level_index] = total_processed
                self.capacity[slot, level_index] = total_capacity
                self.utilization[slot, level_index] = (
                    min(1.0, total_processed / total_capacity)
                    if total_capacity > 0
                    else 0.0
                )
                self.backlog[slot, level_index] = max(0.0, pending - total_processed)

    def _arange(self, n: int) -> np.ndarray:
        """Cached read-only ``np.arange(n)`` (hot-path index helper)."""
        cached = self._arange_cache.get(n)
        if cached is None:
            cached = np.arange(n)
            cached.setflags(write=False)
            self._arange_cache[n] = cached
        return cached

    def _uniform_capacities(self, core_count: int) -> Tuple[np.ndarray, float]:
        """Cached (read-only array, pairwise sum) of full-speed cores."""
        cached = self._capacity_cache.get(core_count)
        if cached is None:
            array = np.full(core_count, self._capability, dtype=float)
            array.setflags(write=False)
            cached = (array, float(array.sum()))
            self._capacity_cache[core_count] = cached
        return cached

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_interval_metrics(self, rows: np.ndarray, actions: np.ndarray) -> None:
        for slot in rows.tolist():
            metrics = IntervalMetrics(
                interval=int(self.interval_index[slot]) - 1,
                action=action_from_index(int(actions[slot])),
                migration_applied=bool(self.migration_applied[slot]),
                core_counts=dict(zip(LEVELS, (int(c) for c in self.counts[slot]))),
                utilization=dict(zip(LEVELS, self.utilization[slot].tolist())),
                incoming_kb=dict(zip(LEVELS, self.incoming[slot].tolist())),
                processed_kb=dict(zip(LEVELS, self.processed[slot].tolist())),
                backlog_kb=dict(zip(LEVELS, self.backlog[slot].tolist())),
                capacity_kb=dict(zip(LEVELS, self.capacity[slot].tolist())),
                cache_miss_rate=float(self.cache_miss[slot]),
                idle_cores=dict(zip(LEVELS, (int(c) for c in self.idle[slot]))),
            )
            self.episodes[slot].record(metrics)
