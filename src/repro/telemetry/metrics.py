"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the repo's single instrumentation substrate.  Every
layer — the micro-batching broker, the asyncio front door, the
evaluation engine, the rollout collectors, the worker pool and the
fleet load harness — records into :class:`MetricsRegistry` instruments,
and every consumer (the ``metrics`` socket op, benchmark JSONs, the
fleet :class:`~repro.loadgen.report.LoadReport`) reads the same
:class:`MetricsSnapshot` out of it.

Design constraints, in order:

* **Provably inert.**  Instruments touch plain Python ints/floats and
  preallocated numpy arrays only — never an rng stream, never control
  flow of the instrumented code.  The differential tests in
  ``tests/test_telemetry_inertness.py`` pin that a fully-instrumented
  run is bit-identical to a disabled one.
* **Zero overhead when disabled.**  A disabled registry hands out
  shared null instruments whose methods are empty one-liners; hot paths
  hold instrument references obtained at setup time, so the disabled
  cost is one no-op attribute call per event.
* **Mergeable across processes.**  :meth:`MetricsRegistry.snapshot`
  returns a picklable plain-dict snapshot; worker processes ship
  snapshots to the parent, which folds them in with
  :meth:`MetricsRegistry.merge_snapshot` (counters and histograms add,
  gauges combine per their declared aggregation).

Naming scheme (documented in the README): ``<subsystem>_<what>_<unit>``
with ``_total`` for counters (``serving_decisions_total``,
``fleet_wave_latency_seconds``).  Labels are for *bounded* dimensions
only — backend kind, phase name, error code, op name — never session
ids, tenant ids or error strings.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelItems = Tuple[Tuple[str, str], ...]


class LatencyHistogram:
    """Fixed-bucket geometric histogram (promoted from ``repro.serving``).

    The default bucketing — 64 geometric buckets from 1 µs up, factor
    1.5 per bucket — covers far past any realistic request latency;
    recording is O(1), merging is addition, and percentile estimates
    are conservative (each falls on its bucket's **upper** edge — the
    SLO-safe direction).  ``base``/``factor``/``num_buckets`` generalise
    the same machinery to non-latency values (batch sizes, queue
    depths); two histograms merge only when their bucketing matches.
    """

    NUM_BUCKETS = 64
    BASE = 1e-6
    FACTOR = 1.5

    def __init__(
        self,
        num_buckets: Optional[int] = None,
        base: Optional[float] = None,
        factor: Optional[float] = None,
    ) -> None:
        self.num_buckets = int(num_buckets if num_buckets is not None else self.NUM_BUCKETS)
        self.base = float(base if base is not None else self.BASE)
        self.factor = float(factor if factor is not None else self.FACTOR)
        if self.num_buckets < 2:
            raise ValueError("histogram needs at least 2 buckets")
        if self.base <= 0 or self.factor <= 1.0:
            raise ValueError("histogram needs base > 0 and factor > 1")
        # bounds[i] is bucket i's inclusive upper edge; the last bucket
        # is open-ended.
        self.bounds = self.base * self.factor ** np.arange(self.num_buckets - 1)
        self.counts = np.zeros(self.num_buckets, dtype=np.int64)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def _bucketing(self) -> Tuple[int, float, float]:
        return (self.num_buckets, self.base, self.factor)

    def reset(self) -> None:
        """Zero the recordings, keeping the bucketing (worker handoff)."""
        self.counts[:] = 0
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        index = int(self.bounds.searchsorted(seconds))
        self.counts[index] += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    # ``observe`` is the metric-instrument spelling of ``record`` —
    # histograms of non-latency values read better with it.
    observe = record

    def record_many(self, seconds: np.ndarray) -> None:
        seconds = np.asarray(seconds, dtype=float)
        if seconds.size == 0:
            return
        indices = self.bounds.searchsorted(seconds)
        self.counts += np.bincount(indices, minlength=self.num_buckets)
        self.total += int(seconds.size)
        self.sum_seconds += float(seconds.sum())
        self.max_seconds = max(self.max_seconds, float(seconds.max()))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s recordings into this histogram (pure addition)."""
        if other._bucketing() != self._bucketing():
            raise ValueError(
                f"cannot merge histograms with different bucketing "
                f"{other._bucketing()} vs {self._bucketing()}"
            )
        self.counts += other.counts
        self.total += other.total
        self.sum_seconds += other.sum_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.sum_seconds / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-th percentile (q in [0, 100])."""
        if self.total == 0:
            return 0.0
        rank = max(1, int(np.ceil(self.total * q / 100.0)))
        cumulative = np.cumsum(self.counts)
        index = int(cumulative.searchsorted(rank))
        if index >= self.bounds.shape[0]:
            return self.max_seconds
        return float(min(self.bounds[index], self.max_seconds))

    def fraction_within(self, slo_seconds: float) -> float:
        """Fraction of requests at or under ``slo_seconds`` (conservative)."""
        if self.total == 0:
            return 1.0
        index = int(self.bounds.searchsorted(slo_seconds, side="right"))
        within = int(self.counts[:index].sum())
        return within / self.total

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.total,
            "mean_ms": round(self.mean_seconds * 1e3, 4),
            "p50_ms": round(self.percentile(50) * 1e3, 4),
            "p95_ms": round(self.percentile(95) * 1e3, 4),
            "p99_ms": round(self.percentile(99) * 1e3, 4),
            "max_ms": round(self.max_seconds * 1e3, 4),
        }

    # ------------------------------------------------------------------
    # Snapshot form (picklable plain dict, added with promotion)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "bucketing": list(self._bucketing()),
            "counts": self.counts.tolist(),
            "total": int(self.total),
            "sum": float(self.sum_seconds),
            "max": float(self.max_seconds),
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        if tuple(state["bucketing"]) != self._bucketing():
            raise ValueError(
                f"cannot merge histogram state with bucketing "
                f"{tuple(state['bucketing'])} into {self._bucketing()}"
            )
        self.counts += np.asarray(state["counts"], dtype=np.int64)
        self.total += int(state["total"])
        self.sum_seconds += float(state["sum"])
        self.max_seconds = max(self.max_seconds, float(state["max"]))

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencyHistogram":
        num_buckets, base, factor = state["bucketing"]
        hist = cls(num_buckets=num_buckets, base=base, factor=factor)
        hist.merge_state(state)
        return hist


class Counter:
    """Monotonically increasing integer series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value with a declared cross-snapshot aggregation.

    ``aggregation`` decides what merging two snapshots of the series
    means: ``"last"`` (default — the merged-in value wins), ``"sum"``
    (per-worker contributions add) or ``"max"`` (high-water marks).
    """

    __slots__ = ("value", "aggregation")

    def __init__(self, aggregation: str = "last") -> None:
        if aggregation not in ("last", "sum", "max"):
            raise ValueError(f"unknown gauge aggregation {aggregation!r}")
        self.value = 0.0
        self.aggregation = aggregation

    def set(self, value: float) -> None:
        if self.aggregation == "max":
            if value > self.value:
                self.value = float(value)
        else:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(LatencyHistogram):
    """A :class:`LatencyHistogram` living as a labeled registry series."""

    # No extra state: the registry attaches (name, labels) externally.


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0
    aggregation = "last"

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    """No-op histogram honouring the full recording/reading surface."""

    __slots__ = ()
    total = 0
    sum_seconds = 0.0
    max_seconds = 0.0
    mean_seconds = 0.0

    def record(self, seconds: float) -> None:
        pass

    observe = record

    def record_many(self, seconds) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def fraction_within(self, slo_seconds: float) -> float:
        return 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def _label_items(labels: Dict[str, object]) -> LabelItems:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: Iterable[Tuple[str, str]]) -> str:
    parts = [f'{key}="{_escape_label_value(value)}"' for key, value in items]
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """One metric name: kind + help text + labeled children."""

    __slots__ = ("name", "kind", "help", "aggregation", "bucketing", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        aggregation: str = "last",
        bucketing: Optional[Tuple[int, float, float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.aggregation = aggregation
        self.bucketing = bucketing
        self.children: Dict[LabelItems, object] = {}


class MetricsSnapshot:
    """Picklable point-in-time copy of a registry's every series.

    ``data`` is plain dicts/lists/numbers only — safe to pickle across
    process boundaries, dump as JSON, or fold into another snapshot.
    """

    def __init__(self, data: Optional[Dict[str, Dict[str, object]]] = None) -> None:
        # name -> {"kind", "help", "aggregation", "series": {rendered-labels-key: {"labels": {...}, "value": ...}}}
        self.data: Dict[str, Dict[str, object]] = data if data is not None else {}

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot (counters/histograms add)."""
        for name, family in other.data.items():
            mine = self.data.get(name)
            if mine is None:
                self.data[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "aggregation": family.get("aggregation", "last"),
                    "series": {
                        key: {"labels": dict(s["labels"]), "value": _copy_value(s["value"])}
                        for key, s in family["series"].items()
                    },
                }
                continue
            if mine["kind"] != family["kind"]:
                raise ValueError(
                    f"metric {name!r} is a {mine['kind']} here but a "
                    f"{family['kind']} in the merged snapshot"
                )
            for key, series in family["series"].items():
                existing = mine["series"].get(key)
                if existing is None:
                    mine["series"][key] = {
                        "labels": dict(series["labels"]),
                        "value": _copy_value(series["value"]),
                    }
                    continue
                existing["value"] = _merge_value(
                    mine["kind"],
                    mine.get("aggregation", "last"),
                    existing["value"],
                    series["value"],
                )
        return self

    # ------------------------------------------------------------------
    # Lookups (tests, CI assertions)
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> object:
        """The value of one series, or ``None`` when absent."""
        family = self.data.get(name)
        if family is None:
            return None
        key = _render_labels(_label_items(labels))
        series = family["series"].get(key)
        return None if series is None else series["value"]

    def names(self) -> List[str]:
        return sorted(self.data)

    # ------------------------------------------------------------------
    # Expositions
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready exposition (name -> kind/help/series list)."""
        out: Dict[str, object] = {}
        for name in sorted(self.data):
            family = self.data[name]
            out[name] = {
                "kind": family["kind"],
                "help": family["help"],
                "series": [
                    {"labels": dict(s["labels"]), "value": _copy_value(s["value"])}
                    for _, s in sorted(family["series"].items())
                ],
            }
        return out

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (histograms as summaries)."""
        lines: List[str] = []
        for name in sorted(self.data):
            family = self.data[name]
            kind = family["kind"]
            prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[kind]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {prom_type}")
            for key, series in sorted(family["series"].items()):
                items = sorted(series["labels"].items())
                if kind in ("counter", "gauge"):
                    lines.append(f"{name}{_render_labels(items)} {_format_number(series['value'])}")
                    continue
                hist = LatencyHistogram.from_state(series["value"])
                for q in (0.5, 0.95, 0.99):
                    quantile_labels = _render_labels(items + [("quantile", repr(q))])
                    lines.append(
                        f"{name}{quantile_labels} {_format_number(hist.percentile(q * 100))}"
                    )
                base = _render_labels(items)
                lines.append(f"{name}_sum{base} {_format_number(hist.sum_seconds)}")
                lines.append(f"{name}_count{base} {hist.total}")
                lines.append(f"{name}_max{base} {_format_number(hist.max_seconds)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _copy_value(value: object) -> object:
    return dict(value) if isinstance(value, dict) else value


def _merge_value(kind: str, aggregation: str, mine: object, theirs: object) -> object:
    if kind == "counter":
        return int(mine) + int(theirs)
    if kind == "gauge":
        if aggregation == "sum":
            return float(mine) + float(theirs)
        if aggregation == "max":
            return max(float(mine), float(theirs))
        return float(theirs)
    hist = LatencyHistogram.from_state(mine)
    hist.merge_state(theirs)
    return hist.state_dict()


def _format_number(value: object) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class MetricsRegistry:
    """Process-local store of named, labeled metric series.

    ``counter``/``gauge``/``histogram`` get-or-create one child series —
    calling twice with the same name and labels returns the *same*
    instrument, so hot paths can resolve instruments at setup time and
    record through plain attribute calls afterwards.  A disabled
    registry returns shared null instruments instead (and snapshots
    empty), which is the zero-overhead off switch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        aggregation: str = "last",
        bucketing: Optional[Tuple[int, float, float]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, aggregation, bucketing)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        else:
            if help_text and not family.help:
                family.help = help_text
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        family = self._family(name, "counter", help)
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = Counter()
            family.children[key] = child
        return child

    def gauge(
        self, name: str, help: str = "", aggregation: str = "last", **labels
    ) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        family = self._family(name, "gauge", help, aggregation=aggregation)
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = Gauge(aggregation=family.aggregation)
            family.children[key] = child
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        num_buckets: Optional[int] = None,
        base: Optional[float] = None,
        factor: Optional[float] = None,
        **labels,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        probe = Histogram(num_buckets=num_buckets, base=base, factor=factor)
        family = self._family(
            name, "histogram", help, bucketing=probe._bucketing()
        )
        if family.bucketing != probe._bucketing():
            raise ValueError(
                f"metric {name!r} already registered with bucketing "
                f"{family.bucketing}, got {probe._bucketing()}"
            )
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = probe
            family.children[key] = child
        return child

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        data: Dict[str, Dict[str, object]] = {}
        for name, family in self._families.items():
            series: Dict[str, Dict[str, object]] = {}
            for items, child in family.children.items():
                if family.kind == "counter":
                    value: object = int(child.value)
                elif family.kind == "gauge":
                    value = float(child.value)
                else:
                    value = child.state_dict()
                series[_render_labels(items)] = {
                    "labels": dict(items),
                    "value": value,
                }
            data[name] = {
                "kind": family.kind,
                "help": family.help,
                "aggregation": family.aggregation,
                "series": series,
            }
        return MetricsSnapshot(data)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry's live series."""
        if not self.enabled:
            return
        for name, family in snapshot.data.items():
            for series in family["series"].values():
                labels = dict(series["labels"])
                if family["kind"] == "counter":
                    self.counter(name, family["help"], **labels).inc(
                        int(series["value"])
                    )
                elif family["kind"] == "gauge":
                    gauge = self.gauge(
                        name,
                        family["help"],
                        aggregation=family.get("aggregation", "last"),
                        **labels,
                    )
                    if gauge.aggregation == "sum":
                        gauge.inc(float(series["value"]))
                    else:
                        gauge.set(float(series["value"]))
                else:
                    num_buckets, base, factor = series["value"]["bucketing"]
                    self.histogram(
                        name,
                        family["help"],
                        num_buckets=num_buckets,
                        base=base,
                        factor=factor,
                        **labels,
                    ).merge_state(series["value"])

    def drain_snapshot(self) -> MetricsSnapshot:
        """Snapshot, then zero the live series *in place* (worker handoff).

        Unlike :meth:`clear`, instruments components already resolved
        stay attached: counters and histograms restart from zero and
        ``sum``-aggregated gauges reset, so repeated drains ship
        non-overlapping deltas.  ``last``/``max`` gauges keep their
        value — re-merging a point-in-time reading is idempotent.
        """
        snapshot = self.snapshot()
        for family in self._families.values():
            for child in family.children.values():
                if family.kind == "counter":
                    child.value = 0
                elif family.kind == "histogram":
                    child.reset()
                elif child.aggregation == "sum":
                    child.value = 0.0
        return snapshot

    # ------------------------------------------------------------------
    # Expositions (delegating to a fresh snapshot)
    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        return self.snapshot().to_prometheus_text()

    def as_dict(self) -> Dict[str, object]:
        return self.snapshot().as_dict()

    def clear(self) -> None:
        self._families = {}


#: Shared always-disabled registry (hand it to components that should
#: never record, regardless of the process-global telemetry switch).
NULL_REGISTRY = MetricsRegistry(enabled=False)
