"""Unified telemetry: the metrics registry and the structured tracer.

One substrate for every layer's observability — the micro-batching
broker and its asyncio front door, the evaluation engine, the rollout
hot path, the persistent worker pool and the fleet load harness all
record into the same process-global :class:`MetricsRegistry` and
:class:`Tracer`, reachable through :func:`registry` / :func:`tracer` /
:func:`span`.  The ``metrics`` socket op, benchmark JSONs and the fleet
:class:`~repro.loadgen.report.LoadReport` read the same snapshots back
out.

Switches
--------
Telemetry defaults **on** (it is cheap and provably inert — see
``tests/test_telemetry_inertness.py``).  ``REPRO_TELEMETRY=0`` in the
environment, or :func:`configure` ``(enabled=False)`` at runtime,
swaps the process defaults for disabled ones whose instruments are
shared no-op singletons — zero overhead beyond one empty attribute
call per event.  ``REPRO_TRACE_CAPACITY`` sizes the span ring buffer
(default 4096 spans; the ring overwrites oldest-first, so long runs
cost bounded memory).

Components capture their instruments when they are *constructed*:
``configure`` affects objects built afterwards, not instruments already
resolved (that is what makes the hot paths allocation- and lookup-free).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "configure",
    "enabled",
    "registry",
    "span",
    "tracer",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "1").lower() not in ("0", "false", "off")


def _env_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_TRACE_CAPACITY", "4096")))
    except ValueError:
        return 4096


_registry = MetricsRegistry(enabled=_env_enabled())
_tracer = Tracer(capacity=_env_capacity(), enabled=_env_enabled())


def registry() -> MetricsRegistry:
    """The process-default metrics registry (possibly disabled)."""
    return _registry


def tracer() -> Tracer:
    """The process-default span tracer (possibly disabled)."""
    return _tracer


def span(name: str, /, **attributes):
    """``with telemetry.span("broker.flush", batch=n):`` on the default tracer."""
    return _tracer.span(name, **attributes)


def enabled() -> bool:
    return _registry.enabled


def configure(
    enabled: Optional[bool] = None,
    trace_capacity: Optional[int] = None,
) -> None:
    """Replace the process defaults (fresh registry + fresh tracer).

    Existing components keep the instruments they already resolved;
    components constructed after this call pick up the new defaults.
    Passing ``enabled=False`` installs no-op defaults (the differential
    inertness tests build one stack per mode around this switch).
    """
    global _registry, _tracer
    if enabled is None:
        enabled = _registry.enabled
    if trace_capacity is None:
        trace_capacity = _tracer.capacity
    _registry = MetricsRegistry(enabled=enabled)
    _tracer = Tracer(capacity=trace_capacity, enabled=enabled)
