"""Structured tracing: named spans into a bounded in-memory ring buffer.

A span is one timed operation — ``with tracer.span("broker.flush",
batch=n):`` — recorded as a plain dict (name, wall-clock start,
duration, attributes) into a fixed-capacity ring.  The ring overwrites
oldest-first, so tracing a long fleet run costs bounded memory; the
``dropped`` counter says how many spans were overwritten.  Records
export as JSONL (one span per line) for offline tooling, and workers
ship their records to the parent with :meth:`Tracer.drain` /
:meth:`Tracer.ingest`.

Like the metrics registry, tracing is provably inert: spans read
``time.perf_counter()``/``time.time()`` and touch Python objects only —
no rng stream, no control flow of the traced code.  A disabled tracer
yields a shared null span and records nothing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

from repro.utils.serialization import atomic_write_text

__all__ = ["Span", "Tracer", "NULL_TRACER"]

DEFAULT_CAPACITY = 4096


class Span:
    """One in-flight (or finished) span; attributes may be added mid-span."""

    __slots__ = ("name", "start_wall", "_start_perf", "duration_s", "attributes")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None
        self.attributes = attributes

    def set(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def _finish(self) -> None:
        self.duration_s = time.perf_counter() - self._start_perf

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start_wall,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    __slots__ = ()
    name = ""
    duration_s = None
    attributes: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded ring buffer of span records.

    ``capacity`` bounds memory; the ring overwrites oldest-first and
    ``dropped`` counts the overwritten spans.  One tracer may be shared
    across an entire process — spans are appended at exit time, so
    nested spans land child-before-parent (by design; consumers sort on
    ``start`` when they need tree order).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._ring: List[Optional[Dict[str, object]]] = [None] * self.capacity
        self._next = 0
        self._count = 0
        self.dropped = 0

    @contextmanager
    def span(self, name: str, /, **attributes) -> Iterator[object]:
        """Time one operation; always records, even when the body raises."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        record = Span(name, attributes)
        try:
            yield record
        finally:
            record._finish()
            self._append(record.as_dict())

    def _append(self, record: Dict[str, object]) -> None:
        if self._ring[self._next] is not None:
            self.dropped += 1
        self._ring[self._next] = record
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    # ------------------------------------------------------------------
    # Reading / merging
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def records(self) -> List[Dict[str, object]]:
        """Resident spans, oldest first."""
        if self._count < self.capacity:
            stored = self._ring[: self._count]
        else:
            stored = self._ring[self._next :] + self._ring[: self._next]
        return [dict(record) for record in stored if record is not None]

    def ingest(self, records: Iterable[Dict[str, object]], **extra) -> int:
        """Append foreign span records (e.g. a worker's), oldest first.

        ``extra`` keys are folded into each record's attributes — the
        worker pool stamps ``worker=<id>`` so merged rings stay
        attributable.  Returns the number of ingested records.
        """
        count = 0
        if not self.enabled:
            return count
        for record in records:
            record = dict(record)
            if extra:
                attributes = dict(record.get("attributes") or {})
                attributes.update(extra)
                record["attributes"] = attributes
            self._append(record)
            count += 1
        return count

    def drain(self) -> List[Dict[str, object]]:
        """Return every resident span and clear the ring (worker handoff)."""
        records = self.records()
        self.clear()
        return records

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self._count = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in self.records()
        )

    def export_jsonl(self, path) -> int:
        """Write one span per line (atomic); returns the span count."""
        records = self.records()
        atomic_write_text(path, self.to_jsonl())
        return len(records)


#: Shared always-disabled tracer.
NULL_TRACER = Tracer(capacity=1, enabled=False)
NULL_TRACER.enabled = False
