"""Array-backed per-session state for the policy serving layer.

A *session* is one client's decision stream (in the paper's setting: one
tenant's storage array being steered interval by interval).  At serving
scale there are far too many concurrent sessions for one Python object
each, so :class:`SessionTable` keeps every session's state in dense
arrays — an integer FSM-state row and/or a GRU hidden row, plus request
counters — indexed by a small integer *slot*.  Closed slots go onto a
free list and are reused (LIFO) by later opens, so the table's footprint
tracks the number of *concurrent* sessions, not the total ever opened.

Stepping a slot that is currently closed is an explicit error (the
``active`` mask is checked on every validated access).  A session handle
is only its slot id, so a stale handle held across a close *and a
reuse of the same slot* passes that check — the per-slot ``generation``
counter (incremented on every close) exists so callers that hold
handles across unknown lifetimes can detect this themselves: capture
``generation[slot]`` at open and compare before trusting a handle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, StaleSessionError

SlotLike = Union[int, np.integer, Sequence[int], np.ndarray]
GenerationLike = Union[int, np.integer, Sequence[int], np.ndarray]


class SessionTable:
    """Dense per-session state with free-list slot reuse.

    ``hidden_size`` > 0 allocates a float64 hidden matrix (GRU backends);
    the integer ``state`` column (FSM state rows) and the ``steps``
    request counter exist for every table.  Arrays grow by doubling, so
    opening N sessions is amortised O(N) regardless of the initial
    capacity.
    """

    def __init__(self, capacity: int = 1024, hidden_size: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError("SessionTable capacity must be positive")
        if hidden_size < 0:
            raise ConfigurationError("hidden_size must be non-negative")
        self.hidden_size = int(hidden_size)
        self._capacity = int(capacity)
        self.state = np.zeros(capacity, dtype=np.int64)
        self.hidden = np.zeros((capacity, hidden_size)) if hidden_size else None
        self.steps = np.zeros(capacity, dtype=np.int64)
        self.active = np.zeros(capacity, dtype=bool)
        self.generation = np.zeros(capacity, dtype=np.int64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._num_active = 0
        self.peak_active = 0
        self.total_opened = 0
        self.total_closed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_active(self) -> int:
        return self._num_active

    def active_slots(self) -> np.ndarray:
        """Slots currently holding an open session (ascending order)."""
        return np.nonzero(self.active)[0]

    def occupancy(self) -> dict:
        """Occupancy snapshot (the fleet load harness samples this per step)."""
        return {
            "active": self._num_active,
            "peak_active": self.peak_active,
            "capacity": self._capacity,
            "total_opened": self.total_opened,
            "total_closed": self.total_closed,
        }

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def ensure_capacity(self, capacity: int) -> None:
        """Grow the backing arrays (never shrinks) to at least ``capacity``."""
        if capacity <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < capacity:
            new_capacity *= 2
        grown = new_capacity - self._capacity
        self.state = np.concatenate([self.state, np.zeros(grown, dtype=np.int64)])
        if self.hidden is not None:
            self.hidden = np.concatenate(
                [self.hidden, np.zeros((grown, self.hidden_size))]
            )
        self.steps = np.concatenate([self.steps, np.zeros(grown, dtype=np.int64)])
        self.active = np.concatenate([self.active, np.zeros(grown, dtype=bool)])
        self.generation = np.concatenate(
            [self.generation, np.zeros(grown, dtype=np.int64)]
        )
        # New slots go under the existing free stack so previously-freed
        # (warm) slots are still reused first.
        self._free = list(range(new_capacity - 1, self._capacity - 1, -1)) + self._free
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, count: int = 1) -> np.ndarray:
        """Allocate ``count`` fresh session slots and return their ids."""
        if count <= 0:
            raise ConfigurationError("open() needs a positive session count")
        if count > len(self._free):
            self.ensure_capacity(self._capacity + (count - len(self._free)))
        slots = np.array([self._free.pop() for _ in range(count)], dtype=np.int64)
        self.active[slots] = True
        self.state[slots] = 0
        if self.hidden is not None:
            self.hidden[slots] = 0.0
        self.steps[slots] = 0
        self._num_active += count
        if self._num_active > self.peak_active:
            self.peak_active = self._num_active
        self.total_opened += count
        return slots

    def close(
        self, slots: SlotLike, expected_generation: Optional[GenerationLike] = None
    ) -> None:
        """Release session slots back to the free list.

        Duplicate slots in one call are rejected: closing ``[3, 3]``
        would push slot 3 onto the free list twice and hand it out to
        two different sessions later.
        """
        slots = self._check_slots(
            slots, unique=True, expected_generation=expected_generation
        )
        self.active[slots] = False
        self.generation[slots] += 1
        self._free.extend(int(s) for s in slots)
        self._num_active -= len(slots)
        self.total_closed += len(slots)

    def adopt_allocation(self, other: "SessionTable") -> None:
        """Take over ``other``'s slot allocation (blue/green backend swap).

        Copies everything that defines *which* sessions exist — the
        active mask, free list, generations, step counters and open/close
        totals — but not the per-session decision state (``state`` /
        ``hidden``), which the new backend either migrates or re-seeds.
        The two tables must have equal capacity (grow first).
        """
        if other.capacity != self._capacity:
            raise ConfigurationError(
                f"cannot adopt allocation across capacities "
                f"({other.capacity} -> {self._capacity}); grow the target first"
            )
        self.active[:] = other.active
        self.generation[:] = other.generation
        self.steps[:] = other.steps
        self._free = list(other._free)
        self._num_active = other._num_active
        self.peak_active = max(self.peak_active, other.peak_active)
        self.total_opened = other.total_opened
        self.total_closed = other.total_closed

    def record_steps(self, slots: SlotLike) -> None:
        """Count one served decision against each of ``slots``."""
        slots = self._check_slots(slots)
        self.steps[slots] += 1

    def _check_slots(
        self,
        slots: SlotLike,
        unique: bool = False,
        expected_generation: Optional[GenerationLike] = None,
    ) -> np.ndarray:
        slots = np.atleast_1d(np.asarray(slots, dtype=np.int64))
        if slots.size == 0:
            return slots
        if slots.min() < 0 or slots.max() >= self._capacity:
            raise ConfigurationError(
                f"session slot out of range [0, {self._capacity}): {slots}"
            )
        inactive = slots[~self.active[slots]]
        if inactive.size:
            raise ConfigurationError(
                f"sessions {inactive.tolist()} are not open (closed slot reused?)"
            )
        if unique and slots.size > 1:
            # O(batch) duplicate detection — never scans the table.
            seen = set()
            duplicates = [
                s for s in slots.tolist() if s in seen or seen.add(s)
            ]
            if duplicates:
                raise ConfigurationError(
                    f"duplicate session slots in one call: {sorted(set(duplicates))}"
                )
        if expected_generation is not None:
            expected = np.broadcast_to(
                np.asarray(expected_generation, dtype=np.int64), slots.shape
            )
            stale = slots[self.generation[slots] != expected]
            if stale.size:
                raise StaleSessionError(
                    f"stale session handles for slots {stale.tolist()}: the "
                    "slot was closed (and possibly reopened by another "
                    "session) since the handle was issued"
                )
        return slots

    def checked_slots(
        self,
        slots: SlotLike,
        unique: bool = False,
        expected_generation: Optional[GenerationLike] = None,
    ) -> np.ndarray:
        """Validate ``slots`` refer to open sessions and return them as an array.

        ``unique=True`` additionally rejects duplicate slots (O(batch));
        ``expected_generation`` (scalar or per-slot array) rejects stale
        handles whose slot was recycled since they were issued.
        """
        return self._check_slots(
            slots, unique=unique, expected_generation=expected_generation
        )

    def __len__(self) -> int:
        return self._num_active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionTable(active={self._num_active}, capacity={self._capacity}, "
            f"hidden_size={self.hidden_size})"
        )
