"""Lockstep batched evaluation of any :class:`DecisionBackend`.

:class:`EvaluationEngine` is the evaluation-side consumer of the
decision-engine contract: it runs one episode per trace on a
:class:`~repro.env.vector_env.VectorStorageAllocationEnv`, asking a
backend for one micro-batch of actions per interval — so compiled-FSM
tables, the (fused-kernel) GRU and scalar heuristic agents are all
evaluated through the identical loop, and FSM-in-the-loop evaluation
runs at compiled-table speed.

Bit-identity contract: the engine reproduces
:func:`~repro.pipeline.evaluation.evaluate_agent` exactly — slot ``i``
is seeded ``episode_seed + i`` (same trace, same simulator rng stream),
and a slot's total reward is the :func:`np.sum` of exactly its
``makespan`` active-step rewards, so makespans, episode metrics and
total rewards are equal bit for bit, not approximately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import time

import numpy as np

from repro import telemetry
from repro.agents.base import Agent
from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    DecisionBackend,
    GRUPolicyBackend,
)
from repro.env.observation import ObservationEncoder
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError
from repro.storage.metrics import EpisodeMetrics
from repro.storage.simulator import StorageSystemConfig
from repro.env.reward import RewardConfig
from repro.storage.workload import WorkloadTrace


@dataclass
class EvaluationResult:
    """Per-trace makespans of one agent over an evaluation set."""

    agent_name: str
    trace_names: List[str] = field(default_factory=list)
    makespans: List[int] = field(default_factory=list)
    episodes: List[EpisodeMetrics] = field(default_factory=list)
    total_rewards: List[float] = field(default_factory=list)

    def mean_makespan(self) -> float:
        return float(np.mean(self.makespans)) if self.makespans else float("nan")

    def total_makespan(self) -> int:
        return int(np.sum(self.makespans)) if self.makespans else 0

    def mean_total_reward(self) -> float:
        return float(np.mean(self.total_rewards)) if self.total_rewards else float("nan")

    def as_dict(self) -> Dict[str, float]:
        return {
            "agent": self.agent_name,
            "mean_makespan": self.mean_makespan(),
            "total_makespan": float(self.total_makespan()),
            "mean_total_reward": self.mean_total_reward(),
            "traces": float(len(self.trace_names)),
        }


class EvaluationEngine:
    """Evaluates decision backends over trace sets in one lockstep batch.

    One engine owns one vector environment (with episode-metric
    recording on) and one default observation encoder; ``evaluate`` may
    be called repeatedly with different backends and trace sets — which
    is exactly what :func:`~repro.pipeline.evaluation.compare_agents`
    does, one backend per agent over the shared evaluation suite.
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
    ) -> None:
        self.system_config = system_config or StorageSystemConfig()
        self.reward_config = reward_config
        self.encoder = ObservationEncoder(self.system_config)
        self.vector_env = VectorStorageAllocationEnv(
            self.system_config, reward_config, record_metrics=True
        )
        metrics = telemetry.registry()
        self.tracer = telemetry.tracer()
        self._m_runs = metrics.counter(
            "engine_eval_runs_total", help="EvaluationEngine.evaluate calls"
        )
        self._m_steps = metrics.counter(
            "engine_eval_steps_total", help="Lockstep env intervals stepped"
        )
        self._m_decisions = metrics.counter(
            "engine_eval_decisions_total", help="Per-row backend decisions made"
        )
        self._m_steps_per_sec = metrics.gauge(
            "engine_eval_steps_per_sec", help="Lockstep steps/s of the last evaluate"
        )

    def evaluate(
        self,
        backend: DecisionBackend,
        traces: Sequence[WorkloadTrace],
        episode_seed: int = 0,
        agent_name: Optional[str] = None,
    ) -> EvaluationResult:
        """Run one episode per trace through ``backend`` in lockstep.

        Finished slots are fed ``NOOP`` (action 0) filler — the vector
        env ignores actions on done slots — and the backend only ever
        decides for still-active rows, so per-session state advances
        exactly once per active step, like a sequential episode.
        """
        traces = list(traces)
        if not traces:
            raise ConfigurationError("EvaluationEngine.evaluate needs at least one trace")
        check_encoder = getattr(backend, "check_encoder", None)
        if check_encoder is not None:
            check_encoder(self.encoder)

        batch = len(traces)
        venv = self.vector_env
        normalized = venv.reset(
            traces, rngs=[episode_seed + index for index in range(batch)]
        )
        raw = venv.raw_observations()

        table = backend.session_table(batch)
        slots = table.open(batch)
        backend.begin_sessions(table, slots)

        # Time-major reward accumulation so each slot's total can be
        # reduced over exactly its ``makespan`` active rows — the same
        # element count and np.sum reduction as evaluate_agent's scalar
        # loop, hence bit-identical totals.  Episodes can outlive their
        # traces (backlog drain), so the buffer doubles on overflow.
        cap = 2 * max(len(trace) for trace in traces) + 16
        rewards_buf = np.empty((cap, batch))
        makespans = np.zeros(batch, dtype=np.int64)
        active: Optional[np.ndarray] = None  # None == every slot active
        if venv.dones.any():
            active = ~venv.dones
        t = 0
        decisions = 0
        loop_started = time.perf_counter()
        with self.tracer.span(
            "engine.evaluate", backend=backend.name, traces=batch
        ) as eval_span:
            while active is None or active.any():
                if t == cap:
                    cap *= 2
                    wide = np.empty((cap, batch))
                    wide[: rewards_buf.shape[0]] = rewards_buf
                    rewards_buf = wide
                if active is None:
                    actions = np.asarray(
                        backend.decide(table, slots, raw, normalized), dtype=np.int64
                    )
                    decisions += batch
                else:
                    rows = np.nonzero(active)[0]
                    actions = np.zeros(batch, dtype=np.int64)
                    actions[rows] = backend.decide(
                        table, slots[rows], raw[rows], normalized[rows]
                    )
                    decisions += len(rows)
                result = venv.step(actions)
                rewards_buf[t] = result.rewards
                if result.newly_done.any():
                    finished = np.nonzero(result.newly_done)[0]
                    makespans[finished] = result.makespans[finished]
                normalized = result.observations
                raw = result.raw_observations
                active = None if not result.dones.any() else ~result.dones
                t += 1
            eval_span.set("steps", t)
            eval_span.set("decisions", decisions)
        elapsed = time.perf_counter() - loop_started
        self._m_runs.inc()
        self._m_steps.inc(t)
        self._m_decisions.inc(decisions)
        if elapsed > 0.0:
            self._m_steps_per_sec.set(t / elapsed)

        end_sessions = getattr(backend, "end_sessions", None)
        if end_sessions is not None:
            end_sessions(table, slots)
        table.close(slots)

        evaluation = EvaluationResult(
            agent_name=agent_name if agent_name is not None else backend.name
        )
        for b, trace in enumerate(traces):
            evaluation.trace_names.append(trace.name)
            evaluation.makespans.append(int(makespans[b]))
            # A slot's stored rows cover exactly its active steps
            # (steps_taken advances once per stored interval), so the
            # column slice below holds the same values, in the same
            # order, as the scalar loop's reward list.
            evaluation.total_rewards.append(
                float(rewards_buf[: int(makespans[b]), b].sum())
            )
        evaluation.episodes.extend(venv.episode_metrics())
        return evaluation


def backend_for_agent(
    agent: Agent, encoder: ObservationEncoder
) -> Optional[DecisionBackend]:
    """Pick the best engine backend for ``agent`` (None → sequential path).

    Upgrades, in order of preference:

    * greedy :class:`~repro.drl.agent.DRLPolicyAgent` on the default
      normalisation → :class:`GRUPolicyBackend` (one batched forward per
      interval);
    * :class:`~repro.fsm.agent.FSMPolicyAgent` whose matcher mirrors the
      machine's prototype table → :class:`CompiledFSMBackend` (dense
      table gathers, bit-identical per
      :meth:`~repro.fsm.agent.FSMPolicyAgent.compiled_routable`);
    * any other ``engine_safe`` agent → :class:`AgentBatchBackend`
      (per-slot replicas acting on raw observations with the agent's own
      encoder — faithful by construction, still one env step per
      interval for the whole set).

    Returns ``None`` for agents the lockstep lift cannot reproduce
    bit for bit: exploring DRL agents (``epsilon > 0``) and agents that
    declare ``engine_safe = False`` (shared rng streams).  Note the
    replica path leaves prototype-agent side counters (e.g.
    ``FSMPolicyAgent.unseen_observation_count``) untouched.
    """
    from repro.drl.agent import DRLPolicyAgent
    from repro.fsm.agent import FSMPolicyAgent

    if isinstance(agent, DRLPolicyAgent):
        if agent.epsilon != 0.0:
            # Exploration consumes one shared rng stream in evaluation
            # order — not reproducible slot by slot.
            return None
        if encoder.is_equivalent(agent.encoder):
            return GRUPolicyBackend(agent.policy)
        return AgentBatchBackend.from_agent(agent, encoder)
    if isinstance(agent, FSMPolicyAgent):
        if encoder.is_equivalent(agent.encoder) and agent.compiled_routable():
            return CompiledFSMBackend(agent.compile())
        # Interpreted fallback: replicas replay the matcher exactly.
        return AgentBatchBackend.from_agent(agent, encoder)
    if not getattr(agent, "engine_safe", True):
        return None
    return AgentBatchBackend.from_agent(agent, encoder)
