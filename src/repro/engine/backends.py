"""The :class:`DecisionBackend` protocol and its standard backends.

This is the repo's single inference contract: training rollouts
(:meth:`~repro.drl.rollout.BatchedRolloutCollector.collect_batch`),
batched evaluation (:class:`~repro.engine.evaluation.EvaluationEngine`)
and the serving layer (:class:`~repro.serving.server.PolicyServer`, the
asyncio front door) all drive their hot loops through the same small
protocol, so the compiled-FSM tables, the fused GRU kernel and the
scalar heuristics are interchangeable across all three consumers.

Standard backends:

* :class:`CompiledFSMBackend` — the O(1) table-gather fast path over a
  :class:`~repro.engine.compiled_fsm.CompiledFSMPolicy`;
* :class:`GRUPolicyBackend` — the full recurrent policy via
  ``act_batch`` (greedy), hidden rows resident in the session table;
* :class:`AgentBatchBackend` — lifts any scalar
  :class:`~repro.agents.base.Agent` into the protocol (one replica per
  session);
* :class:`HeuristicAgentBackend` — the serving-flavoured subclass of
  :class:`AgentBatchBackend` (``heuristic(...)`` naming for A/B stats).
"""

from __future__ import annotations

import copy
import hashlib
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.agents.base import Agent
from repro.drl.policy import RecurrentPolicyValueNet
from repro.engine.compiled_fsm import CompiledFSMPolicy
from repro.engine.sessions import SessionTable
from repro.env.observation import ObservationEncoder
from repro.errors import ConfigurationError


@runtime_checkable
class DecisionBackend(Protocol):
    """What a batched decision consumer needs from an inference engine."""

    name: str

    def session_table(self, capacity: int) -> SessionTable:
        """A :class:`SessionTable` shaped for this backend's per-session state."""

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        """Initialise per-session state for freshly opened ``slots``."""

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        """Decide one action per row and advance the sessions' state."""

    # Optional protocol extensions (consumers call them when present):
    #
    # ``check_encoder(encoder)`` — raise ConfigurationError if the
    # consumer's observation encoder is incompatible with the backend's
    # compiled artifacts.
    # ``end_sessions(table, slots)`` — release per-session resources
    # when sessions close.
    # ``session_state_signature()`` — a hashable token describing what
    # the backend's per-session state *means*.  Two backends with equal
    # signatures interpret each other's session rows identically, so a
    # blue/green :meth:`~repro.serving.server.PolicyServer.swap_backend`
    # migrates live state instead of resetting it.  Return ``None`` (or
    # omit the method) to always reset on swap.
    # ``act_rollout(observations, hiddens, rngs=..., epsilon=...,
    # greedy=..., active=...)`` — full training-mode batched step
    # (sampled actions, values, explicit hidden rows).  Backends that
    # implement it can be passed to
    # :meth:`~repro.drl.rollout.BatchedRolloutCollector.collect_batch`
    # in place of a bare policy (see :func:`resolve_rollout_backend`).


class CompiledFSMBackend:
    """Serves decisions from a :class:`CompiledFSMPolicy`'s dense tables."""

    def __init__(self, policy: CompiledFSMPolicy) -> None:
        self.policy = policy
        self.name = "compiled_fsm"

    def check_encoder(self, encoder: ObservationEncoder) -> None:
        """Refuse to serve behind an encoder the artifact was not compiled for."""
        if not self.policy.matches_encoder(encoder):
            raise ConfigurationError(
                "observation encoder normalises differently from the one the "
                "compiled FSM artifact was stamped with "
                f"(artifact constants {self.policy.encoder_constants.tolist()}, "
                f"encoder constants {encoder.constants()}) — decisions would "
                "silently diverge from the extracted policy"
            )

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=0)

    def session_state_signature(self) -> Optional[Tuple[str, str]]:
        """Identity of the compiled state space (rows + start + actions).

        Two compiled artifacts migrate session state only when their
        state rows *mean the same thing* — same codes in the same order,
        same emitted actions, same start row.  Re-extracted machines get
        fresh rows and therefore reset.
        """
        digest = hashlib.sha256()
        digest.update(self.policy.state_codes.tobytes())
        digest.update(self.policy.action_table.tobytes())
        digest.update(int(self.policy.start_state).to_bytes(8, "little"))
        return ("fsm", digest.hexdigest())

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        table.state[slots] = self.policy.start_state

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        decision = self.policy.act_batch(normalized, table.state[slots])
        table.state[slots] = decision.next_states
        return decision.actions


class GRUPolicyBackend:
    """Serves decisions from the recurrent policy (greedy ``act_batch``)."""

    def __init__(self, policy: RecurrentPolicyValueNet) -> None:
        self.policy = policy
        self.name = "gru"

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=self.policy.hidden_dim())

    def session_state_signature(self) -> Optional[Tuple[str, int]]:
        # A hidden row keeps its meaning across weight updates of the
        # same architecture (warm start after a fine-tune); only a
        # dimension change forces a reset.
        return ("gru", int(self.policy.hidden_dim()))

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        table.hidden[slots] = self.policy.initial_hidden_np(slots.shape[0])

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        output = self.policy.act_batch(normalized, table.hidden[slots], greedy=True)
        table.hidden[slots] = output.hidden_states
        return np.asarray(output.actions, dtype=np.int64)

    def act_rollout(
        self,
        observations: np.ndarray,
        hiddens: np.ndarray,
        rngs=None,
        epsilon: float = 0.0,
        greedy: bool = False,
        active: Optional[np.ndarray] = None,
    ):
        """Training-mode batched step (the rollout collectors' hot call).

        Thin delegation to ``policy.act_batch`` — the point is that the
        same backend object (same policy instance, same fused kernel)
        serves both the decision consumers' :meth:`decide` and the
        trajectory collectors.
        """
        return self.policy.act_batch(
            observations,
            hiddens,
            rngs=rngs,
            epsilon=epsilon,
            greedy=greedy,
            active=active,
        )


class AgentBatchBackend:
    """Lifts any scalar :class:`Agent` into the protocol — one replica per slot.

    Per-session Python objects make this the compatibility path, not the
    scale path; it is how baseline heuristics ride the same lockstep
    evaluation engine (and decision server) as the learned policies.

    The lift is only faithful for agents whose ``act`` is deterministic
    and whose per-episode state is fully *rebound* by ``reset()`` — see
    :attr:`Agent.engine_safe`, which routing checks before using this
    adapter.
    """

    def __init__(
        self,
        agent_factory: Callable[[], Agent],
        encoder: ObservationEncoder,
        name: Optional[str] = None,
    ) -> None:
        self.agent_factory = agent_factory
        self.encoder = encoder
        self._agents: Dict[int, Agent] = {}
        if name is None:
            # Most factories are Agent classes with a class-level name;
            # only build a throwaway instance when the factory hides it
            # (lambdas).
            label = getattr(agent_factory, "name", None)
            name = label if isinstance(label, str) else agent_factory().name
        self.name = name

    @classmethod
    def from_agent(cls, agent: Agent, encoder: ObservationEncoder) -> "AgentBatchBackend":
        """Adapt one prototype agent: every session gets a shallow copy.

        ``begin_sessions`` calls ``reset()`` on each replica, which (per
        the :attr:`Agent.engine_safe` contract) rebinds all per-episode
        state, so replicas never share mutable episode state with the
        prototype or each other.
        """
        return cls(lambda: copy.copy(agent), encoder, name=agent.name)

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=0)

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        for slot in slots.tolist():
            agent = self.agent_factory()
            agent.reset()
            self._agents[int(slot)] = agent

    def end_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        for slot in slots.tolist():
            self._agents.pop(int(slot), None)

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        actions = np.empty(slots.shape[0], dtype=np.int64)
        for i, slot in enumerate(slots.tolist()):
            observation = self.encoder.split_raw(raw[i])
            actions[i] = int(self._agents[int(slot)].act(observation))
        return actions


class HeuristicAgentBackend(AgentBatchBackend):
    """Serving-flavoured :class:`AgentBatchBackend` (``heuristic(...)`` name).

    Kept as its own class so serving stats and swap audit records keep
    their historical backend labels.
    """

    def __init__(
        self, agent_factory: Callable[[], Agent], encoder: ObservationEncoder
    ) -> None:
        super().__init__(agent_factory, encoder)
        self.name = f"heuristic({self.name})"


def resolve_rollout_backend(
    policy,
) -> Tuple["DecisionBackend", RecurrentPolicyValueNet]:
    """Normalise a rollout collector's ``policy`` argument.

    ``policy`` may be a bare :class:`RecurrentPolicyValueNet` or any
    :class:`DecisionBackend` implementing ``act_rollout`` (e.g.
    :class:`GRUPolicyBackend`).  Returns ``(backend, policy)`` with the
    underlying net unwrapped — the single place the old
    ``hasattr(policy, "act_rollout")`` probe lives now.
    """
    if hasattr(policy, "act_rollout"):
        return policy, policy.policy
    return GRUPolicyBackend(policy), policy
