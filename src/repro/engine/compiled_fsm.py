"""The compiled-FSM decision fast path.

An extracted :class:`~repro.fsm.machine.FiniteStateMachine` is a
dict-of-tuples structure built for inspection, not throughput: every
decision hashes two tuple keys and walks Python objects.
:class:`CompiledFSMPolicy` flattens the machine and its observation
quantisation into dense numpy tables once, after which serving a
decision is

1. one batched QBN-encoder pass turning normalised observations into
   discrete codes (two small matmuls through the batch-size-stable
   kernel),
2. one hash lookup per row mapping the code to an observation column
   (with the shared nearest-prototype fallback for unseen codes), and
3. one integer gather ``next = T[state, obs]`` + ``action = A[next]``.

Decisions are bit-identical to stepping the interpreted
:class:`~repro.fsm.agent.FSMPolicyAgent` per session: the encoder pass
uses the same row-stable matmul kernel the agent's scalar path resolves
to, unseen observations resolve through the same
:func:`~repro.fsm.generalize.nearest_prototype_rows` helper over the
same prototype ordering, and the gather reproduces ``FSM.step``'s
self-loop default for unseen (state, observation) pairs.

The compiled artifact is self-contained (tables + encoder weights +
normalisation constants) and roundtrips through ``save``/``load`` so a
serving process never needs the training stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.autograd.functional import _GEMM_MIN_COLS, matmul_rows_np
from repro.env.observation import ObservationEncoder
from repro.errors import ConfigurationError, ExtractionError, SerializationError
from repro.fsm.generalize import nearest_prototype_rows
from repro.fsm.machine import FiniteStateMachine
from repro.qbn.autoencoder import QuantizedBottleneckNetwork
from repro.qbn.quantize import quantization_levels
from repro.utils.serialization import PathLike, load_npz, save_npz

ARTIFACT_FORMAT_VERSION = 1

# Packed-key observation lookup is only sound while base-k positional
# packing of a whole code fits an int64 (it is injective there).
_PACK_LIMIT = 2 ** 62


def _quantize_tanh(pre_activation: np.ndarray, k: int) -> np.ndarray:
    """Reference latent quantisation: codes of ``clip(tanh(z), -1, 1)``.

    Exactly the computation ``QuantizedBottleneckNetwork.discrete_code``
    performs on the latent pre-activation (tanh is already in (-1, 1), so
    the clip only pins rounding at the open boundaries).
    """
    return _level_codes(np.clip(np.tanh(pre_activation), -1.0, 1.0), k)


def _tanh_code_thresholds(k: int) -> Optional[np.ndarray]:
    """Pre-activation thresholds that reproduce :func:`_quantize_tanh` exactly.

    The code of ``tanh(z)`` is a monotone step function of ``z`` (tanh is
    monotone, and the rounded level-distance comparisons are monotone in
    the computed tanh value), so each code boundary is one float64
    threshold: ``code(z) = sum_j (z >= threshold_j)``.  The thresholds
    are found by float bisection against the reference computation, then
    verified on a dense sample plus the exact neighbourhoods of every
    threshold; if the host's tanh breaks the monotonicity assumption the
    verification fails and the caller keeps the reference path.
    """

    def reference_code(z: float) -> int:
        return int(_quantize_tanh(np.array([z]), k)[0])

    thresholds = []
    for target in range(1, k):
        lo, hi = -40.0, 40.0
        if reference_code(lo) >= target or reference_code(hi) < target:
            return None
        while True:
            mid = (lo + hi) * 0.5
            if mid == lo or mid == hi:
                break
            if reference_code(mid) >= target:
                hi = mid
            else:
                lo = mid
        thresholds.append(hi)
    result = np.array(thresholds)

    # Verification: dense sweep + both float neighbours of each threshold.
    probes = [np.linspace(-6.0, 6.0, 4001)]
    for threshold in thresholds:
        probes.append(
            np.array(
                [
                    np.nextafter(threshold, -np.inf),
                    threshold,
                    np.nextafter(threshold, np.inf),
                ]
            )
        )
    sample = np.concatenate(probes)
    fast = (sample[:, None] >= result[None, :]).sum(axis=1)
    if not np.array_equal(fast, _quantize_tanh(sample, k)):
        return None
    return result


def _level_codes(values: np.ndarray, k: int) -> np.ndarray:
    """Integer level indices of ``values`` — fast form of ``values_to_codes``.

    ``values_to_codes`` materialises the full ``(..., k)`` distance tensor
    and argmins it; this scan keeps one running minimum per element
    instead (k passes over the input, ~5x less work on the serving hot
    path for k=3).  It is bit-identical by construction: each pass
    computes the *same rounded* ``|v - level|`` distances, and the strict
    ``<`` update reproduces argmin's lowest-index tie-break.
    """
    levels = quantization_levels(k)
    best = np.abs(values - levels[0])
    codes = np.zeros(values.shape, dtype=np.int64)
    for j in range(1, k):
        distance = np.abs(values - levels[j])
        closer = distance < best
        codes[closer] = j
        np.minimum(best, distance, out=best)
    return codes


@dataclass(frozen=True)
class CompiledDecision:
    """One batched decision: actions taken and the successor state rows."""

    actions: np.ndarray       # (B,) int64 migration-action indices
    next_states: np.ndarray   # (B,) int64 compiled state rows
    fallback_mask: np.ndarray  # (B,) bool — rows resolved via nearest prototype

    @property
    def batch_size(self) -> int:
        return int(self.actions.shape[0])


class CompiledFSMPolicy:
    """Dense-table executable form of an extracted FSM + observation QBN.

    State rows follow the machine's ``states`` insertion order and
    observation columns list the prototype codes first (in their own
    insertion order, matching the matcher's row order) followed by any
    transition-only codes — the orderings every tie-break in the
    interpreted path derives from.
    """

    def __init__(
        self,
        transition_table: np.ndarray,
        action_table: np.ndarray,
        state_codes: np.ndarray,
        state_visits: np.ndarray,
        obs_codes: np.ndarray,
        num_prototypes: int,
        prototype_matrix: np.ndarray,
        start_state: int,
        encoder_weights: Dict[str, np.ndarray],
        quantization_levels: int,
        metric: str = "euclidean",
        encoder_constants: Optional[np.ndarray] = None,
    ) -> None:
        self.transition_table = np.ascontiguousarray(transition_table, dtype=np.int64)
        self.action_table = np.ascontiguousarray(action_table, dtype=np.int64)
        self.state_codes = np.ascontiguousarray(state_codes, dtype=np.int64)
        self.state_visits = np.ascontiguousarray(state_visits, dtype=np.int64)
        self.obs_codes = np.ascontiguousarray(obs_codes, dtype=np.int64)
        self.num_prototypes = int(num_prototypes)
        self.prototype_matrix = np.ascontiguousarray(prototype_matrix, dtype=float)
        self.start_state = int(start_state)
        self.metric = str(metric)
        self.quantization_levels = int(quantization_levels)
        self._w1 = np.ascontiguousarray(encoder_weights["w1"], dtype=float)
        self._b1 = np.ascontiguousarray(encoder_weights["b1"], dtype=float)
        self._w2 = np.ascontiguousarray(encoder_weights["w2"], dtype=float)
        self._b2 = np.ascontiguousarray(encoder_weights["b2"], dtype=float)
        self.encoder_constants = (
            None if encoder_constants is None else np.asarray(encoder_constants, dtype=float)
        )
        if self.transition_table.shape != (self.num_states, self.num_observations):
            raise ConfigurationError(
                f"transition table shape {self.transition_table.shape} does not match "
                f"{self.num_states} states x {self.num_observations} observations"
            )
        # Observation-code lookup.  Fast path: pack each code row into one
        # int64 (base-k positional encoding — injective while k^L fits)
        # and binary-search a sorted key table, fully vectorized.  Codes
        # too wide to pack fall back to a per-row bytes-keyed dict.
        latent = self.obs_codes.shape[1]
        if self.quantization_levels ** latent < _PACK_LIMIT:
            self._pack_vector = np.array(
                [self.quantization_levels ** i for i in range(latent)], dtype=np.int64
            )
            packed = self.obs_codes @ self._pack_vector
            order = np.argsort(packed, kind="stable")
            self._sorted_keys = packed[order]
            self._sorted_columns = order.astype(np.int64)
            self._code_to_column = None
        else:
            self._pack_vector = None
            self._code_to_column = {
                self.obs_codes[i].tobytes(): i for i in range(self.obs_codes.shape[0])
            }
        self.fallback_count = 0
        self.decision_count = 0
        # Single-entry per-batch-size workspaces: steady-state serving
        # reuses one batch size, so the hot path stays allocation-free
        # while a fluctuating caller's memory stays bounded (the entry
        # is replaced, not accumulated, when the batch size changes).
        self._buffers: "tuple[int, np.ndarray, np.ndarray] | None" = None
        self._code_workspace: "tuple[int, np.ndarray, np.ndarray] | None" = None
        # Pre-activation quantisation thresholds (None -> reference path).
        self._latent_thresholds = _tanh_code_thresholds(self.quantization_levels)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        fsm: FiniteStateMachine,
        observation_qbn: QuantizedBottleneckNetwork,
        encoder: Optional[ObservationEncoder] = None,
        metric: str = "euclidean",
    ) -> "CompiledFSMPolicy":
        """Flatten ``fsm`` + its observation quantisation into dense tables."""
        if fsm.num_states == 0:
            raise ExtractionError("cannot compile an FSM with no states")
        fsm.validate()

        state_keys = list(fsm.states.keys())
        state_rows = {key: row for row, key in enumerate(state_keys)}
        hidden_lengths = {len(key) for key in state_keys}
        if len(hidden_lengths) != 1:
            raise ExtractionError(
                f"state codes must share one length, got lengths {sorted(hidden_lengths)}"
            )

        latent_dim = observation_qbn.config.latent_dim
        prototype_keys = list(fsm.observation_prototypes.keys())
        obs_keys = list(prototype_keys)
        seen = set(obs_keys)
        for (_source, observation) in fsm.transitions.keys():
            if observation not in seen:
                seen.add(observation)
                obs_keys.append(observation)
        for key in obs_keys:
            if len(key) != latent_dim:
                raise ExtractionError(
                    f"observation code length {len(key)} does not match the "
                    f"QBN latent dim {latent_dim}"
                )

        num_states = len(state_keys)
        obs_columns = {key: column for column, key in enumerate(obs_keys)}
        # Default transition: stay in the current state (FSM.step's
        # behaviour for (state, observation) pairs never seen together).
        transition_table = np.tile(
            np.arange(num_states, dtype=np.int64)[:, None], (1, len(obs_keys))
        )
        for (source, observation), destination in fsm.transitions.items():
            transition_table[state_rows[source], obs_columns[observation]] = state_rows[
                destination
            ]

        action_table = np.array(
            [int(fsm.states[key].action) for key in state_keys], dtype=np.int64
        )
        state_visits = np.array(
            [fsm.states[key].visit_count for key in state_keys], dtype=np.int64
        )
        state_codes = np.array(state_keys, dtype=np.int64).reshape(num_states, -1)
        obs_codes = (
            np.array(obs_keys, dtype=np.int64).reshape(len(obs_keys), -1)
            if obs_keys
            else np.zeros((0, latent_dim), dtype=np.int64)
        )
        prototype_matrix = (
            np.stack([np.asarray(fsm.observation_prototypes[k], dtype=float) for k in prototype_keys])
            if prototype_keys
            else np.zeros((0, observation_qbn.config.input_dim))
        )

        # Start state exactly as FSMPolicyAgent resolves it: the recorded
        # initial state when valid, otherwise the first most-visited
        # state in insertion order (max() tie-break).
        if fsm.initial_state is not None and fsm.initial_state in fsm.states:
            start_key = fsm.initial_state
        else:
            start_key = max(state_keys, key=lambda key: fsm.states[key].visit_count)

        encoder_weights = {
            "w1": np.array(observation_qbn.encoder_hidden.weight.data),
            "b1": np.array(observation_qbn.encoder_hidden.bias.data),
            "w2": np.array(observation_qbn.encoder_latent.weight.data),
            "b2": np.array(observation_qbn.encoder_latent.bias.data),
        }
        constants = None
        if encoder is not None:
            values = encoder.constants()
            constants = np.array(
                [values["total_cores"], values["max_size_kb"], values["nominal_requests"]]
            )
        return cls(
            transition_table=transition_table,
            action_table=action_table,
            state_codes=state_codes,
            state_visits=state_visits,
            obs_codes=obs_codes,
            num_prototypes=len(prototype_keys),
            prototype_matrix=prototype_matrix,
            start_state=state_rows[start_key],
            encoder_weights=encoder_weights,
            quantization_levels=observation_qbn.config.quantization_levels,
            metric=metric,
            encoder_constants=constants,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return int(self.state_codes.shape[0])

    @property
    def num_observations(self) -> int:
        return int(self.obs_codes.shape[0])

    @property
    def observation_dim(self) -> int:
        return int(self._w1.shape[0])

    def matches_encoder(self, encoder: ObservationEncoder) -> bool:
        """Whether ``encoder`` normalises like the one stamped at compile time.

        Always true when the artifact was compiled without an encoder (no
        constants recorded to compare against).
        """
        if self.encoder_constants is None:
            return True
        values = encoder.constants()
        recorded = self.encoder_constants
        return (
            recorded[0] == values["total_cores"]
            and recorded[1] == values["max_size_kb"]
            and recorded[2] == values["nominal_requests"]
        )

    def summary(self) -> Dict[str, int]:
        return {
            "states": self.num_states,
            "observations": self.num_observations,
            "prototypes": self.num_prototypes,
            "decisions": self.decision_count,
            "fallbacks": self.fallback_count,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def encode_codes(self, normalized: np.ndarray) -> np.ndarray:
        """Quantise normalised observations to (B, latent) integer codes.

        Bit-identical to ``observation_qbn.discrete_code`` row by row:
        the matmuls go through the batch-size-stable kernel (gemm rows
        are batch-independent for M >= 2, exactly what the agent's
        padded single-row path resolves to), and the latent tanh + clip
        + level argmin collapse into verified pre-activation threshold
        comparisons (see :func:`_tanh_code_thresholds`; the reference
        sequence runs when verification rejected the thresholds).
        """
        pre_latent = self._pre_latent(normalized)
        if self._latent_thresholds is not None:
            # Verified pre-activation thresholds: the latent tanh, clip
            # and level scan collapse into k-1 comparisons (buffered —
            # the result is consumed within the same decision).
            codes, flags = self._code_buffers(pre_latent.shape)
            np.greater_equal(pre_latent, self._latent_thresholds[0], out=flags)
            codes[...] = flags
            for threshold in self._latent_thresholds[1:]:
                np.greater_equal(pre_latent, threshold, out=flags)
                codes += flags
            return codes
        # ``discrete_code`` snaps to the nearest level and then argmins
        # the snapped value against the levels again; the snap is a
        # fixed point of that argmin, so one level scan over the clipped
        # latent yields the same codes with half the passes.
        return _quantize_tanh(pre_latent, self.quantization_levels)

    def _encode_packed(self, normalized: np.ndarray) -> np.ndarray:
        """Base-k packed int64 key of every row's code, codes unmaterialised.

        ``pack(code) = sum_c code_c * k^c`` distributes over the
        threshold indicator sum (exact integer arithmetic), so each
        threshold's flag matrix contracts directly against the pack
        vector without building the (B, L) code array first.
        """
        pre_latent = self._pre_latent(normalized)
        if self._latent_thresholds is None:
            return _quantize_tanh(pre_latent, self.quantization_levels) @ self._pack_vector
        _codes, flags = self._code_buffers(pre_latent.shape)
        np.greater_equal(pre_latent, self._latent_thresholds[0], out=flags)
        packed = flags @ self._pack_vector
        for threshold in self._latent_thresholds[1:]:
            np.greater_equal(pre_latent, threshold, out=flags)
            packed += flags @ self._pack_vector
        return packed

    def _code_buffers(self, shape: "tuple[int, int]") -> "tuple[np.ndarray, np.ndarray]":
        workspace = self._code_workspace
        if workspace is None or workspace[0] != shape[0]:
            workspace = (
                shape[0],
                np.empty(shape, dtype=np.int64),
                np.empty(shape, dtype=bool),
            )
            self._code_workspace = workspace
        return workspace[1], workspace[2]

    def _pre_latent(self, normalized: np.ndarray) -> np.ndarray:
        """Latent pre-activations (B, L) via the batch-size-stable kernels."""
        normalized = np.asarray(normalized, dtype=float)
        if normalized.ndim != 2 or normalized.shape[1] != self.observation_dim:
            raise ConfigurationError(
                f"expected (B, {self.observation_dim}) normalised "
                f"observations, got shape {normalized.shape}"
            )
        batch = normalized.shape[0]
        if (
            batch >= 2
            and self._w1.shape[1] >= _GEMM_MIN_COLS
            and self._w2.shape[1] >= _GEMM_MIN_COLS
        ):
            # Buffered in-place variant of the expression below: gemm for
            # M >= 2 and wide outputs is exactly what matmul_rows_np
            # resolves to, and the bias add / tanh round identically in
            # place — only the allocations are gone (hot serving path).
            buffers = self._buffers
            if buffers is None or buffers[0] != batch:
                buffers = (
                    batch,
                    np.empty((batch, self._w1.shape[1])),
                    np.empty((batch, self._w2.shape[1])),
                )
                self._buffers = buffers
            hidden, pre_latent = buffers[1], buffers[2]
            np.matmul(normalized, self._w1, out=hidden)
            hidden += self._b1
            np.tanh(hidden, out=hidden)
            np.matmul(hidden, self._w2, out=pre_latent)
            pre_latent += self._b2
        else:
            hidden = np.tanh(matmul_rows_np(normalized, self._w1) + self._b1)
            pre_latent = matmul_rows_np(hidden, self._w2) + self._b2
        return pre_latent

    def resolve_observations(self, normalized: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Map normalised observations to observation columns.

        Returns ``(columns, fallback_mask)``.  A code that quantises to a
        known *prototype* resolves directly; anything else goes through
        the shared nearest-prototype resolution (when prototypes exist) or
        to the ``-1`` self-loop sentinel (when none do) — mirroring
        ``FSMPolicyAgent``'s known/unseen split bit for bit.
        """
        batch = normalized.shape[0]
        if self._pack_vector is not None and self.num_observations:
            packed = self._encode_packed(normalized)
            positions = self._sorted_keys.searchsorted(packed)
            np.minimum(positions, self._sorted_keys.shape[0] - 1, out=positions)
            found = self._sorted_keys[positions] == packed
            columns = self._sorted_columns[positions]
            if self.num_prototypes > 0:
                # Known ⇔ the code is a *prototype* code: transition-only
                # and unknown codes both take the nearest-prototype
                # fallback, exactly like the interpreted agent's
                # known/unseen split.  (Fallback rows of ``columns`` hold
                # stale values here; they are overwritten below.)
                fallback = (~found) | (columns >= self.num_prototypes)
            else:
                columns = np.where(found, columns, -1)
                fallback = np.zeros(batch, dtype=bool)
        else:
            codes = self.encode_codes(normalized)
            lookup = self._code_to_column or {}
            columns = np.fromiter(
                (lookup.get(codes[i].tobytes(), -1) for i in range(batch)),
                dtype=np.int64,
                count=batch,
            )
            if self.num_prototypes > 0:
                fallback = (columns < 0) | (columns >= self.num_prototypes)
            else:
                # No prototypes to fall back to: transition-only codes
                # resolve exactly, truly unknown codes self-loop (-1).
                fallback = np.zeros(batch, dtype=bool)
        if fallback.any():
            rows = np.nonzero(fallback)[0]
            columns[rows] = nearest_prototype_rows(
                self.prototype_matrix, normalized[rows], self.metric
            )
            self.fallback_count += int(rows.shape[0])
        return columns, fallback

    def act_batch(
        self, normalized: np.ndarray, states: np.ndarray
    ) -> CompiledDecision:
        """One decision for every row: gather successors and emit actions.

        ``states`` are compiled state rows (e.g. ``SessionTable.state``
        entries seeded with :attr:`start_state`); the caller stores
        ``next_states`` back to keep each session's machine advancing.
        """
        states = np.asarray(states, dtype=np.int64)
        columns, fallback = self.resolve_observations(normalized)
        if self.num_prototypes > 0:
            # Every row resolved to a real column (fallback guarantees it).
            next_states = self.transition_table[states, columns]
        elif self.num_observations:
            next_states = self.transition_table[states, np.maximum(columns, 0)]
            unknown = columns < 0
            if unknown.any():
                next_states[unknown] = states[unknown]
        else:
            next_states = states.copy()
        actions = self.action_table[next_states]
        self.decision_count += int(states.shape[0])
        return CompiledDecision(
            actions=actions, next_states=next_states, fallback_mask=fallback
        )

    def act(self, normalized: np.ndarray, state: int) -> "tuple[int, int]":
        """Single-session convenience wrapper: returns (action, next_state)."""
        decision = self.act_batch(
            np.asarray(normalized, dtype=float)[None, :],
            np.array([state], dtype=np.int64),
        )
        return int(decision.actions[0]), int(decision.next_states[0])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the complete artifact to one ``.npz`` bundle."""
        arrays: Dict[str, np.ndarray] = {
            "transition_table": self.transition_table,
            "action_table": self.action_table,
            "state_codes": self.state_codes,
            "state_visits": self.state_visits,
            "obs_codes": self.obs_codes,
            "prototype_matrix": self.prototype_matrix,
            "enc_w1": self._w1,
            "enc_b1": self._b1,
            "enc_w2": self._w2,
            "enc_b2": self._b2,
            "meta": np.array(
                [
                    ARTIFACT_FORMAT_VERSION,
                    self.start_state,
                    self.num_prototypes,
                    self.quantization_levels,
                ],
                dtype=np.int64,
            ),
            "metric": np.array(self.metric),
        }
        if self.encoder_constants is not None:
            arrays["encoder_constants"] = self.encoder_constants
        save_npz(path, arrays)

    @classmethod
    def load(cls, path: PathLike) -> "CompiledFSMPolicy":
        """Load an artifact written by :meth:`save`."""
        arrays = load_npz(path)
        if "meta" not in arrays or "transition_table" not in arrays:
            raise SerializationError(f"{path} is not a compiled FSM artifact")
        meta = arrays["meta"].astype(int)
        if int(meta[0]) != ARTIFACT_FORMAT_VERSION:
            raise SerializationError(
                f"unsupported compiled-FSM format version {int(meta[0])} "
                f"(expected {ARTIFACT_FORMAT_VERSION})"
            )
        return cls(
            transition_table=arrays["transition_table"],
            action_table=arrays["action_table"],
            state_codes=arrays["state_codes"],
            state_visits=arrays["state_visits"],
            obs_codes=arrays["obs_codes"],
            num_prototypes=int(meta[2]),
            prototype_matrix=arrays["prototype_matrix"],
            start_state=int(meta[1]),
            encoder_weights={
                "w1": arrays["enc_w1"],
                "b1": arrays["enc_b1"],
                "w2": arrays["enc_w2"],
                "b2": arrays["enc_b2"],
            },
            quantization_levels=int(meta[3]),
            metric=str(arrays["metric"].item()),
            encoder_constants=arrays.get("encoder_constants"),
        )
