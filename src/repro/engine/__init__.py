"""The inference engine: one decision contract for train, eval and serve.

Everything that turns observations into migration decisions at batch
granularity lives here, behind the :class:`DecisionBackend` protocol:

* :mod:`repro.engine.backends` — the protocol and its standard
  implementations (compiled-FSM tables, the recurrent policy, scalar
  agents lifted per-session);
* :mod:`repro.engine.compiled_fsm` — the FSM + quantiser flattened into
  dense numpy tables; a decision is an integer gather, bit-identical to
  the interpreted :class:`~repro.fsm.agent.FSMPolicyAgent`;
* :mod:`repro.engine.sessions` — array-backed per-session state with
  free-list slot reuse for very large concurrent session counts;
* :mod:`repro.engine.evaluation` — the lockstep
  :class:`EvaluationEngine` that runs any backend over a trace set,
  bit-identical to the sequential reference harness.

The three consumers — training rollout collection
(:mod:`repro.drl.rollout`), policy evaluation
(:mod:`repro.pipeline.evaluation`) and the serving layer
(:mod:`repro.serving`) — all drive their hot loops through this package.
"""

from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    DecisionBackend,
    GRUPolicyBackend,
    HeuristicAgentBackend,
    resolve_rollout_backend,
)
from repro.engine.compiled_fsm import CompiledDecision, CompiledFSMPolicy
from repro.engine.evaluation import (
    EvaluationEngine,
    EvaluationResult,
    backend_for_agent,
)
from repro.engine.sessions import SessionTable

__all__ = [
    "AgentBatchBackend",
    "CompiledDecision",
    "CompiledFSMPolicy",
    "CompiledFSMBackend",
    "DecisionBackend",
    "EvaluationEngine",
    "EvaluationResult",
    "GRUPolicyBackend",
    "HeuristicAgentBackend",
    "SessionTable",
    "backend_for_agent",
    "resolve_rollout_backend",
]
