"""Advantage Actor-Critic trainer for the recurrent policy.

Loss design follows A2C (Mnih et al., 2016) as cited by the paper:

    L = -E[ log pi(a_t | h_t) * A_t ]  +  c_v * E[(V(h_t) - G_t)^2]
        -  c_e * E[ H(pi(.|h_t)) ]

with ``A_t = G_t - V(h_t)`` computed from Monte-Carlo discounted
returns, Adam (lr 3e-4), global gradient-norm clipping at 2.0, and
epsilon-greedy exploration at 0.1 — the hyper-parameters of paper
Section 4.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.drl.exploration import EpsilonSchedule
from repro.drl.policy import RecurrentPolicyValueNet
from repro.drl.rollout import (
    BatchedRolloutCollector,
    RolloutCollector,
    Trajectory,
    TrajectoryBatch,
)
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError, TrainingError
from repro.optim import Adam, clip_grad_norm
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class A2CConfig:
    """Hyper-parameters of the A2C training loop."""

    learning_rate: float = 3e-4
    gamma: float = 0.99
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    grad_clip_norm: float = 2.0
    epsilon: float = 0.1
    episodes_per_epoch: int = 1
    normalize_advantages: bool = True
    n_step: int = 0
    # Collect the epoch's episodes in lockstep on the vectorized
    # environment (one batched GRU forward per interval) instead of one
    # episode at a time.
    use_batched_rollouts: bool = True
    # One padded/masked gradient update over the whole episode batch
    # instead of one update per trajectory; with episodes_per_epoch=1
    # (the default) the two are mathematically identical.
    batched_updates: bool = True
    # Shard each epoch's episode collection across this many worker
    # processes (ParallelRolloutCollector).  1 keeps collection
    # in-process; any value produces bit-identical trajectories because
    # per-episode rng streams depend only on the drawn base seed and the
    # episode index, never on the worker layout.
    rollout_workers: int = 1
    # Back the parallel collector with a persistent worker pool: worker
    # processes live across epochs with resident simulator state and
    # policy weights, receiving only weight-delta + episode-shard
    # messages per epoch (amortises the per-epoch fork/pickle cost).
    # Results stay bit-identical to every other collection mode.  Close
    # the trainer (context manager or .close()) to shut the pool down.
    persistent_pool: bool = False

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError("gamma must be in [0, 1]")
        if self.value_coef < 0 or self.entropy_coef < 0:
            raise ConfigurationError("loss coefficients must be non-negative")
        if self.grad_clip_norm <= 0:
            raise ConfigurationError("grad_clip_norm must be positive")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if self.episodes_per_epoch <= 0:
            raise ConfigurationError("episodes_per_epoch must be positive")
        if self.n_step < 0:
            raise ConfigurationError("n_step must be non-negative (0 = Monte-Carlo)")
        if self.rollout_workers <= 0:
            raise ConfigurationError("rollout_workers must be positive")
        if self.rollout_workers > 1 and not self.use_batched_rollouts:
            raise ConfigurationError(
                "rollout_workers > 1 requires use_batched_rollouts (the parallel "
                "collector shards the batched lockstep path)"
            )
        if self.persistent_pool and self.rollout_workers <= 1:
            raise ConfigurationError(
                "persistent_pool=True requires rollout_workers > 1 (a pool of "
                "one in-process worker has nothing to keep resident)"
            )


@dataclass(frozen=True)
class EpochRecord:
    """Metrics from one training epoch."""

    epoch: int
    phase: str
    trace_name: str
    makespan: float
    total_reward: float
    policy_loss: float
    value_loss: float
    entropy: float
    grad_norm: float
    epsilon: float
    wall_time_s: float


@dataclass
class TrainingHistory:
    """All epoch records of a training run (possibly spanning phases)."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def extend(self, other: "TrainingHistory") -> None:
        self.records.extend(other.records)

    def __len__(self) -> int:
        return len(self.records)

    def makespans(self) -> np.ndarray:
        return np.array([r.makespan for r in self.records])

    def epochs(self) -> np.ndarray:
        return np.array([r.epoch for r in self.records])

    def phases(self) -> List[str]:
        return [r.phase for r in self.records]

    def by_phase(self) -> Dict[str, "TrainingHistory"]:
        grouped: Dict[str, TrainingHistory] = {}
        for record in self.records:
            grouped.setdefault(record.phase, TrainingHistory()).append(record)
        return grouped

    def smoothed_makespans(self, window: int = 10) -> np.ndarray:
        values = self.makespans()
        if window <= 1 or values.size == 0:
            return values
        smoothed = np.empty_like(values)
        for i in range(values.size):
            lo = max(0, i - window + 1)
            smoothed[i] = values[lo : i + 1].mean()
        return smoothed

    def final_makespan(self, window: int = 10) -> float:
        values = self.makespans()
        if values.size == 0:
            raise TrainingError("training history is empty")
        return float(values[-window:].mean())


class A2CTrainer:
    """Trains a :class:`RecurrentPolicyValueNet` on a set of workload traces."""

    def __init__(
        self,
        policy: RecurrentPolicyValueNet,
        env: StorageAllocationEnv,
        config: Optional[A2CConfig] = None,
        epsilon_schedule: Optional[EpsilonSchedule] = None,
        rng: SeedLike = None,
        vector_env: Optional[VectorStorageAllocationEnv] = None,
    ) -> None:
        self.policy = policy
        self.env = env
        self.config = config or A2CConfig()
        self.epsilon_schedule = epsilon_schedule or EpsilonSchedule(
            start=self.config.epsilon, end=self.config.epsilon, decay_epochs=0
        )
        self._rng = new_rng(rng)
        self.collector = RolloutCollector(env, rng=self._rng)
        # The vectorized twin of ``env`` used for lockstep collection.
        # A custom cache model cannot be inferred (each slot needs its
        # own instance), so demand an explicit vector_env rather than
        # silently training on different cache dynamics.  Parallel
        # workers always rebuild default vector environments, so they
        # are subject to the same constraint even with an explicit
        # vector_env.
        needs_default_cache_model = (
            vector_env is None and self.config.use_batched_rollouts
        ) or self.config.rollout_workers > 1
        if needs_default_cache_model:
            default_model = env.system_config.build_cache_model()
            if env.simulator.cache_model.signature() != default_model.signature():
                if self.config.rollout_workers > 1:
                    raise ConfigurationError(
                        "rollout_workers > 1 rebuilds default vector environments "
                        "in worker processes and cannot replicate a custom cache "
                        "model; set rollout_workers=1"
                    )
                raise ConfigurationError(
                    "the environment uses a custom cache model; pass "
                    "vector_env=VectorStorageAllocationEnv(..., "
                    "cache_model_factory=...) explicitly, or set "
                    "use_batched_rollouts=False"
                )
        if self.config.rollout_workers > 1:
            if vector_env is not None:
                raise ConfigurationError(
                    "rollout_workers > 1 cannot honour an explicit vector_env: "
                    "worker processes rebuild default vector environments from "
                    "the training env's system/reward configs; drop vector_env "
                    "or set rollout_workers=1"
                )
            from repro.drl.parallel import ParallelRolloutCollector

            # Collection always goes through the workers, so the
            # in-process vector twin is never built.
            self.vector_env = None
            self.batched_collector: Optional[BatchedRolloutCollector] = None
            self.parallel_collector: Optional[ParallelRolloutCollector] = (
                ParallelRolloutCollector(
                    env.system_config,
                    env.reward_config,
                    num_workers=self.config.rollout_workers,
                    persistent=self.config.persistent_pool,
                )
            )
        elif self.config.use_batched_rollouts or vector_env is not None:
            self.vector_env = vector_env or VectorStorageAllocationEnv(
                env.system_config, env.reward_config
            )
            self.batched_collector = BatchedRolloutCollector(
                self.vector_env, rng=self._rng
            )
            self.parallel_collector = None
        else:
            # Sequential-only configuration: do not expose a vector twin
            # that was never validated against env's cache model.
            self.vector_env = None
            self.batched_collector = None
            self.parallel_collector = None
        self.optimizer = Adam(self.policy.parameters(), lr=self.config.learning_rate)
        self._global_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle (persistent rollout pools)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release collection resources (shuts down a persistent pool)."""
        if self.parallel_collector is not None:
            self.parallel_collector.close()

    def __enter__(self) -> "A2CTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(
        self,
        traces: Sequence[WorkloadTrace],
        epochs: int,
        phase: str = "train",
        history: Optional[TrainingHistory] = None,
    ) -> TrainingHistory:
        """Run ``epochs`` training epochs, each on one trace sampled from ``traces``."""
        if not traces:
            raise TrainingError("train() needs at least one workload trace")
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        history = history if history is not None else TrainingHistory()

        for _ in range(epochs):
            start = time.perf_counter()
            epsilon = self.epsilon_schedule.value(self._global_epoch)
            trace = traces[int(self._rng.integers(len(traces)))]
            epoch_metrics = self._train_one_epoch(trace, epsilon)
            elapsed = time.perf_counter() - start
            record = EpochRecord(
                epoch=self._global_epoch,
                phase=phase,
                trace_name=trace.name,
                epsilon=epsilon,
                wall_time_s=elapsed,
                **epoch_metrics,
            )
            history.append(record)
            self._global_epoch += 1
        return history

    def _train_one_epoch(self, trace: WorkloadTrace, epsilon: float) -> Dict[str, float]:
        episodes = self.config.episodes_per_epoch
        if self.parallel_collector is not None:
            # Draw the base seed exactly like collect_batch would so the
            # sharded collection is bit-identical to the in-process
            # batched path under the same trainer rng state.
            base_seed = int(self._rng.integers(np.iinfo(np.int64).max))
            trajectories = self.parallel_collector.collect(
                self.policy,
                [trace] * episodes,
                base_seed=base_seed,
                epsilon=epsilon,
                greedy=False,
            )
        elif self.config.use_batched_rollouts:
            trajectories = self.batched_collector.collect_batch(
                self.policy, [trace] * episodes, epsilon=epsilon, greedy=False
            )
        else:
            trajectories = [
                self.collector.collect(self.policy, trace, epsilon=epsilon, greedy=False)
                for _ in range(episodes)
            ]
        if self.config.batched_updates:
            losses = [self._update_from_batch(trajectories)]
        else:
            losses = [self._update_from_trajectory(trajectory) for trajectory in trajectories]

        def mean(key: str) -> float:
            return float(np.mean([loss[key] for loss in losses]))

        return {
            "makespan": float(np.mean([t.makespan for t in trajectories])),
            "total_reward": float(np.mean([t.total_reward for t in trajectories])),
            "policy_loss": mean("policy_loss"),
            "value_loss": mean("value_loss"),
            "entropy": mean("entropy"),
            "grad_norm": mean("grad_norm"),
        }

    # ------------------------------------------------------------------
    # One gradient update
    # ------------------------------------------------------------------
    def _update_from_trajectory(self, trajectory: Trajectory) -> Dict[str, float]:
        if len(trajectory) == 0:
            raise TrainingError("cannot update from an empty trajectory")

        observations = trajectory.observations()
        actions = trajectory.actions()

        # Re-run the recurrent forward pass with gradients enabled.
        hidden = self.policy.initial_state()
        logit_rows: List[Tensor] = []
        value_rows: List[Tensor] = []
        for t in range(len(trajectory)):
            logits, value, hidden = self.policy.step(Tensor(observations[t]), hidden)
            logit_rows.append(logits)
            value_rows.append(value)
        logits_matrix = Tensor.stack(logit_rows, axis=0)
        values_vector = Tensor.stack(value_rows, axis=0).reshape(len(trajectory))
        values_np = values_vector.numpy()

        if self.config.n_step > 0:
            returns = self._n_step_returns(trajectory.rewards(), values_np)
        else:
            returns = trajectory.discounted_returns(self.config.gamma)

        advantages = returns - values_np
        if self.config.normalize_advantages and advantages.size > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        log_probs = F.log_softmax(logits_matrix, axis=-1)
        chosen_nll = F.nll_of_actions(log_probs, actions)
        policy_loss = (chosen_nll * Tensor(advantages)).mean()
        value_loss = F.mse_loss(values_vector, returns)
        probs = F.softmax(logits_matrix, axis=-1)
        entropy = F.entropy(probs, axis=-1)
        loss = (
            policy_loss
            + value_loss * self.config.value_coef
            - entropy * self.config.entropy_coef
        )

        self.optimizer.zero_grad()
        loss.backward()
        grad_norm = clip_grad_norm(self.policy.parameters(), self.config.grad_clip_norm)
        self.optimizer.step()

        return {
            "policy_loss": float(policy_loss.item()),
            "value_loss": float(value_loss.item()),
            "entropy": float(entropy.item()),
            "grad_norm": float(grad_norm),
        }

    def _update_from_batch(self, trajectories: Sequence[Trajectory]) -> Dict[str, float]:
        """One gradient update over a padded, masked batch of episodes.

        The recurrent forward pass runs once per interval with a
        ``(B, obs_dim)`` observation batch; padded positions never enter
        the losses (they are dropped by indexing with the batch's valid
        positions).  With a single trajectory this computes exactly the
        same update as :meth:`_update_from_trajectory`.
        """
        batch = TrajectoryBatch.from_trajectories(trajectories)
        horizon, width = batch.max_steps, batch.batch_size

        hidden = self.policy.initial_state(width)
        logit_steps: List[Tensor] = []
        value_steps: List[Tensor] = []
        for t in range(horizon):
            logits, value, hidden = self.policy.step(Tensor(batch.observations[t]), hidden)
            logit_steps.append(logits)
            value_steps.append(value)
        logits_stack = Tensor.stack(logit_steps, axis=0)                  # (T, B, A)
        values_stack = Tensor.stack(value_steps, axis=0).reshape(horizon, width)

        time_idx, env_idx = batch.valid_positions()
        logits_matrix = logits_stack[time_idx, env_idx]                   # (N, A)
        values_vector = values_stack[time_idx, env_idx]                   # (N,)
        values_np = values_vector.numpy()
        actions = batch.actions[time_idx, env_idx]

        if self.config.n_step > 0:
            padded_values = np.zeros((horizon, width))
            padded_values[time_idx, env_idx] = values_np
            padded_returns = np.zeros((horizon, width))
            for b, trajectory in enumerate(batch.trajectories):
                steps = len(trajectory)
                padded_returns[:steps, b] = self._n_step_returns(
                    trajectory.rewards(), padded_values[:steps, b]
                )
            returns = padded_returns[time_idx, env_idx]
        else:
            returns = batch.padded_returns(self.config.gamma)[time_idx, env_idx]

        advantages = returns - values_np
        if self.config.normalize_advantages and advantages.size > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        log_probs = F.log_softmax(logits_matrix, axis=-1)
        chosen_nll = F.nll_of_actions(log_probs, actions)
        policy_loss = (chosen_nll * Tensor(advantages)).mean()
        value_loss = F.mse_loss(values_vector, returns)
        probs = F.softmax(logits_matrix, axis=-1)
        entropy = F.entropy(probs, axis=-1)
        loss = (
            policy_loss
            + value_loss * self.config.value_coef
            - entropy * self.config.entropy_coef
        )

        self.optimizer.zero_grad()
        loss.backward()
        grad_norm = clip_grad_norm(self.policy.parameters(), self.config.grad_clip_norm)
        self.optimizer.step()

        return {
            "policy_loss": float(policy_loss.item()),
            "value_loss": float(value_loss.item()),
            "entropy": float(entropy.item()),
            "grad_norm": float(grad_norm),
        }

    def _n_step_returns(self, rewards: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Bootstrapped n-step return targets.

        ``G_t = r_t + gamma r_{t+1} + ... + gamma^{n-1} r_{t+n-1}
                + gamma^n V(h_{t+n})``, truncating (without bootstrap) at
        the end of the episode.  Compared to full Monte-Carlo returns this
        keeps the credit for each decision local to the next few
        intervals, which is what makes the shaped rewards learnable
        within a small epoch budget.
        """
        n = self.config.n_step
        gamma = self.config.gamma
        horizon = len(rewards)
        returns = np.zeros(horizon, dtype=float)
        for t in range(horizon):
            acc = 0.0
            discount = 1.0
            last = min(t + n, horizon)
            for i in range(t, last):
                acc += discount * rewards[i]
                discount *= gamma
            if t + n < horizon:
                acc += discount * values[t + n]
            returns[t] = acc
        return returns
