"""Adapter exposing a trained :class:`RecurrentPolicyValueNet` as an :class:`Agent`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import Agent
from repro.drl.policy import RecurrentPolicyValueNet
from repro.env.observation import Observation, ObservationEncoder
from repro.storage.migration import MigrationAction
from repro.utils.rng import SeedLike, new_rng


class DRLPolicyAgent(Agent):
    """Greedy (deterministic) controller backed by the trained GRU policy.

    The agent keeps the GRU hidden state across an episode and resets it
    at episode boundaries, matching how the policy was trained.
    """

    name = "gru_drl"

    def __init__(
        self,
        policy: RecurrentPolicyValueNet,
        encoder: ObservationEncoder,
        epsilon: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        self.policy = policy
        self.encoder = encoder
        self.epsilon = float(epsilon)
        self._rng = new_rng(rng)
        self._hidden: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._hidden = self.policy.initial_state().numpy()

    def act(self, observation: Observation) -> MigrationAction:
        if self._hidden is None:
            self.reset()
        normalized = self.encoder.normalize(observation)
        output = self.policy.act(
            normalized, self._hidden, rng=self._rng, epsilon=self.epsilon, greedy=True
        )
        self._hidden = output.hidden_state
        return MigrationAction(output.action)

    @property
    def hidden_state(self) -> np.ndarray:
        """Current GRU hidden state (useful for FSM extraction diagnostics)."""
        if self._hidden is None:
            self.reset()
        return np.array(self._hidden)
