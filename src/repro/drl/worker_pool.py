"""Persistent worker pools: long-lived rollout workers with resident state.

:class:`PersistentWorkerPool` replaces the per-epoch fork/pickle of
:class:`~repro.drl.parallel.ParallelRolloutCollector`'s ``Pool.map`` path
with worker processes that live across epochs:

* each worker builds its simulator/environment stack **once** at spawn
  (from the pickled system/reward configs) and keeps it resident;
* policy weights live in the workers between epochs — the parent sends
  only a **compact weight-delta message** (the parameters whose values
  actually changed since the last broadcast, full arrays so the update
  is bit-exact) plus small per-epoch episode-shard descriptors;
* results stream back over one shared queue; the parent polls it with a
  timeout and checks worker liveness on every beat, so a crashed worker
  surfaces as a prompt :class:`~repro.errors.TrainingError` naming the
  worker — never a hang, never a partial merge.

The determinism contract is identical to the fork-per-epoch collector:
episode ``i`` of a collection always consumes streams
``derive_episode_streams(base_seed, N)[i]``, so the merged trajectory
list is bit-identical to sequential, lockstep-batched, fork-per-epoch
and persistent-pool collection for any worker count.

Lifecycle: the pool is context-managed (``with PersistentWorkerPool(...)
as pool: ...``) or closed explicitly; ``close()`` is idempotent and
tolerates already-dead workers.  After a worker crash the pool is marked
broken and every subsequent ``collect`` raises cleanly.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry

# parallel.py only imports this module lazily (inside _persistent_pool),
# so this top-level import is cycle-free.
from repro.drl.parallel import shard_indices
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import (
    BatchedRolloutCollector,
    Trajectory,
    derive_episode_streams,
)
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import TrainingError
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import PhiloxStreams

#: Seconds between liveness checks while waiting for shard results.
_RESULT_POLL_INTERVAL_S = 0.05
#: Seconds a worker gets to exit voluntarily before being terminated.
_SHUTDOWN_GRACE_S = 5.0


def _drain_worker_telemetry() -> Optional[Dict[str, object]]:
    """This process's telemetry delta since the last drain (or ``None``).

    Shipped as the fourth element of every successful shard reply;
    the parent folds the metrics snapshot into its own registry and
    ingests the spans stamped ``worker=<shard id>``.
    """
    registry = telemetry.registry()
    tracer = telemetry.tracer()
    if not registry.enabled and not tracer.enabled:
        return None
    return {
        "metrics": registry.drain_snapshot(),
        "spans": tracer.drain(),
    }


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    system_config: StorageSystemConfig,
    reward_config: Optional[RewardConfig],
) -> None:
    """Worker loop: build the environment once, then serve messages.

    Messages (tuples, dispatched on the first element):

    * ``("weights", version, policy_config, changed_state)`` — create the
      resident policy on first receipt and overwrite exactly the changed
      parameters (full arrays, so the update is bit-exact; applied via
      ``Parameter.assign`` so resident packed-weight caches invalidate);
    * ``("collect", shard_id, indices, traces, base_seed, total,
      epsilon, greedy, version, rng_family)`` — run the shard's episodes
      in lockstep and reply ``(shard_id, trajectories, None, telemetry)``
      (or ``(shard_id, None, traceback_str, None)`` on failure), where
      ``telemetry`` is this worker's metrics/span delta for the shard;
    * ``("shutdown",)`` — exit the loop.
    """
    policy: Optional[RecurrentPolicyValueNet] = None
    weights_version = -1
    vector_env = VectorStorageAllocationEnv(system_config, reward_config)
    collector = BatchedRolloutCollector(vector_env)
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "shutdown":
            break
        if kind == "weights":
            _, version, policy_config, changed_state = message
            try:
                if policy is None:
                    policy = RecurrentPolicyValueNet(policy_config)
                own = dict(policy.named_parameters())
                for name, value in changed_state.items():
                    own[name].assign(value)
                weights_version = version
            except Exception:  # pragma: no cover - defensive
                result_queue.put((None, None, traceback.format_exc(), None))
            continue
        if kind == "collect":
            (
                _, shard_id, indices, traces, base_seed, total,
                epsilon, greedy, version, rng_family,
            ) = message
            try:
                if policy is None:
                    raise TrainingError(
                        f"worker {worker_id} received a shard before any weights"
                    )
                if version != weights_version:
                    raise TrainingError(
                        f"worker {worker_id} has weights v{weights_version} but the "
                        f"shard expects v{version}"
                    )
                episode_rngs, action_rngs = derive_episode_streams(
                    base_seed, total, rng_family
                )
                if isinstance(episode_rngs, PhiloxStreams):
                    episode_shard = episode_rngs.select(list(indices))
                    action_shard = action_rngs.select(list(indices))
                else:
                    episode_shard = [episode_rngs[i] for i in indices]
                    action_shard = [action_rngs[i] for i in indices]
                trajectories = collector.collect_batch(
                    policy,
                    list(traces),
                    epsilon=epsilon,
                    greedy=greedy,
                    episode_rngs=episode_shard,
                    action_rngs=action_shard,
                )
                result_queue.put(
                    (shard_id, trajectories, None, _drain_worker_telemetry())
                )
            except Exception:
                result_queue.put((shard_id, None, traceback.format_exc(), None))
            continue
        result_queue.put(
            (None, None, f"worker {worker_id} got an unknown message kind {kind!r}", None)
        )




class PersistentWorkerPool:
    """A pool of long-lived rollout workers with resident policy weights.

    Typical use (one pool reused across training epochs)::

        with PersistentWorkerPool(system_config, reward_config, num_workers=4) as pool:
            for epoch in range(epochs):
                trajectories = pool.collect(policy, traces, base_seed=seed)
                ...update policy...

    ``collect`` broadcasts the policy's changed parameters (all of them
    on the first epoch, typically all after a gradient step, none for
    repeated evaluation of frozen weights), then dispatches one episode
    shard per worker and merges the results in episode order.
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        num_workers: int = 2,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers <= 0:
            raise TrainingError(f"num_workers must be positive, got {num_workers}")
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.reward_config = reward_config
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self._context = None
        self._processes: List = []
        self._task_queues: List = []
        self._result_queue = None
        self._weights_version = -1
        self._last_state: Dict[str, np.ndarray] = {}
        self._last_policy_config: Optional[PolicyConfig] = None
        self._closed = False
        self._broken: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._processes)

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_started(self) -> None:
        if self._closed:
            raise TrainingError("persistent worker pool has been closed")
        if self._broken is not None:
            raise TrainingError(
                f"persistent worker pool is broken: {self._broken}"
            )
        if self._processes:
            return
        if multiprocessing.current_process().daemon:
            raise TrainingError(
                "a daemonic process cannot spawn a persistent worker pool; "
                "use ParallelRolloutCollector's in-process fallback instead"
            )
        self._context = multiprocessing.get_context(self.start_method)
        self._result_queue = self._context.Queue()
        for worker_id in range(self.num_workers):
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    task_queue,
                    self._result_queue,
                    self.system_config,
                    self.reward_config,
                ),
                daemon=True,
                name=f"rollout-pool-worker-{worker_id}",
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)

    def close(self) -> None:
        """Shut the workers down; idempotent and safe after crashes."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_workers()

    def _shutdown_workers(self) -> None:
        for task_queue, process in zip(self._task_queues, self._processes):
            if process.is_alive():
                try:
                    task_queue.put(("shutdown",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for process in self._processes:
            process.join(timeout=_SHUTDOWN_GRACE_S)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_SHUTDOWN_GRACE_S)
        for task_queue in self._task_queues:
            task_queue.close()
        if self._result_queue is not None:
            self._result_queue.close()
        self._processes = []
        self._task_queues = []
        self._result_queue = None

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def _mark_broken(self, reason: str) -> None:
        """Record the failure and take surviving workers down."""
        self._broken = reason
        self._shutdown_workers()

    # ------------------------------------------------------------------
    # Weights broadcast
    # ------------------------------------------------------------------
    def _broadcast_weights(self, policy: RecurrentPolicyValueNet) -> None:
        state = policy.state_dict()
        if self._last_policy_config is not None and policy.config != self._last_policy_config:
            raise TrainingError(
                "persistent worker pool cannot change policy architecture "
                f"mid-flight ({self._last_policy_config} -> {policy.config}); "
                "close the pool and create a new one"
            )
        if self._weights_version < 0:
            changed = state
        else:
            changed = {
                name: value
                for name, value in state.items()
                if not np.array_equal(value, self._last_state[name])
            }
        if changed or self._weights_version < 0:
            self._weights_version += 1
            message = ("weights", self._weights_version, policy.config, changed)
            for task_queue in self._task_queues:
                task_queue.put(message)
        self._last_state = state
        self._last_policy_config = policy.config

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        base_seed: int,
        epsilon: float = 0.0,
        greedy: bool = False,
        rng_family: str = "legacy",
    ) -> List[Trajectory]:
        """Collect one trajectory per trace across the resident workers.

        Bit-identical to ``ParallelRolloutCollector.collect`` (and hence
        to the sequential and lockstep-batched collectors) with the same
        ``base_seed``.  An empty trace list is a no-op that touches no
        worker (a zero-episode epoch must not desync weight versions —
        the broadcast still happens lazily on the next non-empty epoch).
        """
        traces = list(traces)
        if not traces:
            return []
        self._ensure_started()
        self._broadcast_weights(policy)
        shards = shard_indices(len(traces), self.num_workers)
        total = len(traces)
        for shard_id, indices in enumerate(shards):
            self._task_queues[shard_id].put(
                (
                    "collect",
                    shard_id,
                    tuple(indices),
                    tuple(traces[i] for i in indices),
                    int(base_seed),
                    total,
                    float(epsilon),
                    bool(greedy),
                    self._weights_version,
                    str(rng_family),
                )
            )
        outcomes = self._await_results(len(shards))
        merged: List[Optional[Trajectory]] = [None] * total
        for shard_id, trajectories, error, shard_telemetry in outcomes:
            if error is not None:
                # shard_id None marks worker-level failures (weights
                # application, protocol errors) not tied to one shard.
                if shard_id is None:
                    self._mark_broken("worker-level failure")
                    raise TrainingError(
                        f"persistent-pool worker failed outside a shard:\n{error}"
                    )
                self._mark_broken(f"shard {shard_id} failed")
                raise TrainingError(
                    f"persistent-pool shard {shard_id} "
                    f"(episodes {list(shards[shard_id])}) failed:\n{error}"
                )
            indices = shards[shard_id]
            if trajectories is None or len(trajectories) != len(indices):
                self._mark_broken(f"shard {shard_id} returned a bad payload")
                raise TrainingError(
                    f"persistent-pool shard {shard_id} returned "
                    f"{0 if trajectories is None else len(trajectories)} trajectories "
                    f"for {len(indices)} episodes"
                )
            for index, trajectory in zip(indices, trajectories):
                merged[index] = trajectory
            if shard_telemetry is not None:
                # Metrics fold by pure addition (no worker label — the
                # cardinality stays flat); spans keep attribution via a
                # ``worker=<shard id>`` attribute.
                telemetry.registry().merge_snapshot(shard_telemetry["metrics"])
                telemetry.tracer().ingest(
                    shard_telemetry["spans"], worker=shard_id
                )
        missing = [i for i, trajectory in enumerate(merged) if trajectory is None]
        if missing:
            self._mark_broken(f"episodes {missing} were never returned")
            raise TrainingError(f"episodes {missing} were not covered by any shard")
        return list(merged)

    def _await_results(self, expected: int) -> List[Tuple]:
        """Wait for ``expected`` shard results with crash detection.

        The result queue is polled with a short timeout; on every beat
        the worker processes are liveness-checked, so a worker that died
        mid-epoch (crash, OOM-kill, SIGKILL) raises within one poll
        interval instead of blocking forever on a result that will never
        arrive.
        """
        outcomes: List[Tuple] = []
        while len(outcomes) < expected:
            try:
                outcomes.append(
                    self._result_queue.get(timeout=_RESULT_POLL_INTERVAL_S)
                )
            except queue_module.Empty:
                dead = [
                    (worker_id, process.exitcode)
                    for worker_id, process in enumerate(self._processes)
                    if not process.is_alive()
                ]
                if dead:
                    details = ", ".join(
                        f"worker {worker_id} (exit code {code})"
                        for worker_id, code in dead
                    )
                    self._mark_broken(f"worker death: {details}")
                    raise TrainingError(
                        "persistent worker pool lost "
                        f"{details} while {expected - len(outcomes)} shard "
                        "result(s) were still pending; the epoch was aborted "
                        "with no partial merge"
                    )
        return outcomes

    # ------------------------------------------------------------------
    # Introspection (tests, diagnostics)
    # ------------------------------------------------------------------
    @property
    def weights_version(self) -> int:
        """Version of the last broadcast weight set (-1 before the first)."""
        return self._weights_version

    def worker_pids(self) -> List[int]:
        self._ensure_started()
        return [int(process.pid) for process in self._processes]
