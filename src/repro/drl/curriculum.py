"""Curriculum learning (paper Section 3.2.2, validated in Section 4.3.1).

Real customer traces are scarce, so the paper first trains the policy on
plentiful *standard* (Vdbench-synthesised) traces — the "easy tasks" —
and then continues training on the few *real* traces — the "hard tasks".
Figure 3 compares this curriculum against training from scratch on real
traces only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.drl.a2c import A2CConfig, A2CTrainer, TrainingHistory
from repro.drl.exploration import EpsilonSchedule
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError, TrainingError
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng

PHASE_STANDARD = "pretrain_standard"
PHASE_REAL = "finetune_real"
PHASE_SCRATCH = "from_scratch_real"


@dataclass(frozen=True)
class CurriculumConfig:
    """Epoch budget of the two curriculum phases.

    The paper uses 1000 epochs on standard traces followed by 1000 on
    real traces (and 2000 from-scratch epochs for the comparison run);
    the defaults here are scaled down so the full pipeline runs on a
    laptop, and the benchmarks set them explicitly.
    """

    standard_epochs: int = 150
    real_epochs: int = 150

    def __post_init__(self) -> None:
        if self.standard_epochs < 0 or self.real_epochs < 0:
            raise ConfigurationError("epoch counts must be non-negative")
        if self.standard_epochs + self.real_epochs == 0:
            raise ConfigurationError("curriculum must have at least one epoch")

    @property
    def total_epochs(self) -> int:
        return self.standard_epochs + self.real_epochs


class CurriculumTrainer:
    """Runs curriculum training (standard -> real) or from-scratch training."""

    def __init__(
        self,
        env: StorageAllocationEnv,
        policy_config: Optional[PolicyConfig] = None,
        a2c_config: Optional[A2CConfig] = None,
        epsilon_schedule: Optional[EpsilonSchedule] = None,
        rng: SeedLike = None,
        vector_env: Optional[VectorStorageAllocationEnv] = None,
    ) -> None:
        """``vector_env`` is forwarded to the underlying A2C trainers —
        required when ``env`` uses a custom cache model and batched
        rollouts are enabled (build it with a ``cache_model_factory``)."""
        self.env = env
        self.policy_config = policy_config or PolicyConfig()
        self.a2c_config = a2c_config or A2CConfig()
        self.epsilon_schedule = epsilon_schedule
        self.vector_env = vector_env
        self._rng = new_rng(rng)

    def _new_trainer(self, policy: RecurrentPolicyValueNet) -> A2CTrainer:
        return A2CTrainer(
            policy,
            self.env,
            config=self.a2c_config,
            epsilon_schedule=self.epsilon_schedule,
            rng=self._rng,
            vector_env=self.vector_env,
        )

    # ------------------------------------------------------------------
    # Training regimes
    # ------------------------------------------------------------------
    def train_with_curriculum(
        self,
        standard_traces: Sequence[WorkloadTrace],
        real_traces: Sequence[WorkloadTrace],
        config: Optional[CurriculumConfig] = None,
        policy: Optional[RecurrentPolicyValueNet] = None,
    ) -> tuple[RecurrentPolicyValueNet, TrainingHistory]:
        """Pre-train on standard traces, then fine-tune on real traces."""
        config = config or CurriculumConfig()
        if config.standard_epochs > 0 and not standard_traces:
            raise TrainingError("curriculum pre-training requested but no standard traces given")
        if config.real_epochs > 0 and not real_traces:
            raise TrainingError("curriculum fine-tuning requested but no real traces given")

        policy = policy or RecurrentPolicyValueNet(self.policy_config, rng=self._rng)
        trainer = self._new_trainer(policy)
        history = TrainingHistory()
        if config.standard_epochs > 0:
            trainer.train(
                list(standard_traces),
                config.standard_epochs,
                phase=PHASE_STANDARD,
                history=history,
            )
        if config.real_epochs > 0:
            trainer.train(
                list(real_traces), config.real_epochs, phase=PHASE_REAL, history=history
            )
        return policy, history

    def train_from_scratch(
        self,
        real_traces: Sequence[WorkloadTrace],
        epochs: int,
        policy: Optional[RecurrentPolicyValueNet] = None,
    ) -> tuple[RecurrentPolicyValueNet, TrainingHistory]:
        """Train only on real traces (the paper's comparison baseline)."""
        if not real_traces:
            raise TrainingError("from-scratch training needs real traces")
        policy = policy or RecurrentPolicyValueNet(self.policy_config, rng=self._rng)
        trainer = self._new_trainer(policy)
        history = trainer.train(list(real_traces), epochs, phase=PHASE_SCRATCH)
        return policy, history
