"""Exploration schedules.

The paper uses constant epsilon-greedy exploration with epsilon = 0.1
(Section 4.2); a linear decay variant is provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class EpsilonSchedule:
    """Epsilon value as a function of the training epoch.

    With ``decay_epochs`` of zero the schedule is constant at ``start``.
    Otherwise epsilon decays linearly from ``start`` to ``end`` over
    ``decay_epochs`` epochs and stays at ``end`` afterwards.
    """

    start: float = 0.1
    end: float = 0.1
    decay_epochs: int = 0

    def __post_init__(self) -> None:
        for name in ("start", "end"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"epsilon {name} must be in [0, 1], got {value}")
        if self.decay_epochs < 0:
            raise ConfigurationError("decay_epochs must be non-negative")

    def value(self, epoch: int) -> float:
        if self.decay_epochs <= 0 or epoch >= self.decay_epochs:
            return self.end if self.decay_epochs > 0 else self.start
        fraction = epoch / self.decay_epochs
        return self.start + (self.end - self.start) * fraction
