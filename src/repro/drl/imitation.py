"""Behaviour-cloning warm start for the recurrent policy.

The paper trains its GRU agent for 2000 epochs on a production-scale
simulator.  Within the minutes-scale budget of this reproduction, pure
on-policy A2C often cannot leave the random-policy regime, so the
pipeline optionally warm-starts the policy by imitating an expert
heuristic (any :class:`~repro.agents.base.Agent`, by default the greedy
utilisation controller) before the A2C phases.  This is a documented
deviation from the paper made purely for sample efficiency; it can be
disabled by setting the warm-start epochs to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.drl.policy import RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.errors import ConfigurationError, TrainingError
from repro.optim import Adam, clip_grad_norm
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass
class Demonstration:
    """One expert episode: normalised observations and the actions taken."""

    trace_name: str
    observations: np.ndarray
    actions: np.ndarray
    makespan: int

    def __len__(self) -> int:
        return int(self.actions.shape[0])


@dataclass(frozen=True)
class ImitationConfig:
    """Hyper-parameters of behaviour cloning.

    ``class_balanced`` weights each action inversely to its frequency in
    the demonstrations; expert controllers emit "no migration" for most
    intervals, and without re-weighting the cloned policy collapses to
    the majority class instead of learning *when* to migrate.
    """

    epochs: int = 20
    learning_rate: float = 1e-3
    grad_clip_norm: float = 2.0
    class_balanced: bool = True
    max_class_weight: float = 5.0

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ConfigurationError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.grad_clip_norm <= 0:
            raise ConfigurationError("grad_clip_norm must be positive")
        if self.max_class_weight < 1.0:
            raise ConfigurationError("max_class_weight must be at least 1")


@dataclass
class ImitationResult:
    """Loss curve and final imitation accuracy."""

    losses: List[float] = field(default_factory=list)
    accuracy: float = 0.0
    demonstrations: int = 0


class BehaviorCloningTrainer:
    """Collects expert demonstrations and fits the recurrent policy to them."""

    def __init__(
        self,
        env: StorageAllocationEnv,
        config: Optional[ImitationConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self.env = env
        self.config = config or ImitationConfig()
        self._rng = new_rng(rng)

    # ------------------------------------------------------------------
    # Demonstration collection
    # ------------------------------------------------------------------
    def collect_demonstrations(
        self, teacher: Agent, traces: Sequence[WorkloadTrace], episode_seed: int = 0
    ) -> List[Demonstration]:
        """Run the teacher on every trace and record its decisions."""
        if not traces:
            raise TrainingError("demonstration collection needs at least one trace")
        demonstrations: List[Demonstration] = []
        for index, trace in enumerate(traces):
            observation = self.env.reset(trace, rng=episode_seed + index)
            teacher.reset()
            observations: List[np.ndarray] = []
            actions: List[int] = []
            while True:
                action = teacher.act(observation)
                observations.append(self.env.observation_encoder.normalize(observation))
                actions.append(int(action))
                result = self.env.step(action)
                observation = result.observation
                if result.done:
                    break
            demonstrations.append(
                Demonstration(
                    trace_name=trace.name,
                    observations=np.stack(observations),
                    actions=np.array(actions, dtype=int),
                    makespan=self.env.simulator.makespan,
                )
            )
        return demonstrations

    # ------------------------------------------------------------------
    # Supervised fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        policy: RecurrentPolicyValueNet,
        demonstrations: Sequence[Demonstration],
    ) -> ImitationResult:
        """Minimise the cross-entropy between the policy and the expert actions."""
        demonstrations = [d for d in demonstrations if len(d) > 0]
        if not demonstrations:
            raise TrainingError("behaviour cloning needs non-empty demonstrations")
        optimizer = Adam(policy.parameters(), lr=self.config.learning_rate)
        result = ImitationResult(demonstrations=len(demonstrations))
        class_weights = self._class_weights(demonstrations, policy.config.num_actions)

        order = np.arange(len(demonstrations))
        for _ in range(self.config.epochs):
            self._rng.shuffle(order)
            epoch_losses: List[float] = []
            for index in order:
                demo = demonstrations[index]
                hidden = policy.initial_state()
                logit_rows = []
                for t in range(len(demo)):
                    logits, _value, hidden = policy.step(Tensor(demo.observations[t]), hidden)
                    logit_rows.append(logits)
                logits_matrix = Tensor.stack(logit_rows, axis=0)
                log_probs = F.log_softmax(logits_matrix, axis=-1)
                nll = F.nll_of_actions(log_probs, demo.actions)
                weights = class_weights[demo.actions]
                loss = (nll * Tensor(weights)).sum() * (1.0 / max(weights.sum(), 1e-9))
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(policy.parameters(), self.config.grad_clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            result.losses.append(float(np.mean(epoch_losses)))

        result.accuracy = self.evaluate_accuracy(policy, demonstrations)
        return result

    def _class_weights(
        self, demonstrations: Sequence[Demonstration], num_actions: int
    ) -> np.ndarray:
        """Per-action loss weights (uniform when class balancing is disabled)."""
        if not self.config.class_balanced:
            return np.ones(num_actions)
        counts = np.zeros(num_actions)
        for demo in demonstrations:
            for action in demo.actions:
                counts[int(action)] += 1
        total = counts.sum()
        weights = np.where(counts > 0, total / (num_actions * np.maximum(counts, 1.0)), 0.0)
        return np.clip(weights, 0.0, self.config.max_class_weight)

    @staticmethod
    def evaluate_accuracy(
        policy: RecurrentPolicyValueNet, demonstrations: Sequence[Demonstration]
    ) -> float:
        """Fraction of expert decisions reproduced by the greedy policy."""
        from repro.autograd.tensor import no_grad

        correct = 0
        total = 0
        with no_grad():
            for demo in demonstrations:
                hidden = policy.initial_state()
                for t in range(len(demo)):
                    logits, _value, hidden = policy.step(Tensor(demo.observations[t]), hidden)
                    if int(np.argmax(logits.numpy())) == int(demo.actions[t]):
                        correct += 1
                    total += 1
        return correct / total if total else 0.0
