"""Rollout collection: running the recurrent policy in the environment.

The trainer and the QBN/FSM extraction stages both need trajectories of
``<h_t, h_{t+1}, o_t, a_t, r_t>`` tuples (the dataset of paper Section
3.2.1).  Rollouts are collected in inference mode (no autograd graph);
the A2C trainer later re-runs the recurrent forward pass over the stored
observations with gradients enabled.

Two collectors produce the same :class:`Trajectory` objects:

* :class:`RolloutCollector` — the sequential reference implementation,
  one environment step and one policy call at a time;
* :class:`BatchedRolloutCollector` — runs N episodes in lockstep on a
  :class:`~repro.env.vector_env.VectorStorageAllocationEnv` so one
  batched GRU forward pass serves every environment per interval.  Given
  the same per-episode rng streams (see :func:`derive_episode_streams`)
  it is bit-identical to the sequential collector, trace by trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.drl.policy import GeneratorList, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import TrainingError
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import (
    RNG_FAMILIES,
    PhiloxStreams,
    SeedLike,
    derive_philox_streams,
    new_rng,
)


@dataclass(frozen=True)
class Transition:
    """One step of interaction.

    ``valid_action_mask`` records which actions were legal migrations at
    decision time (None for trajectories recorded before masks were
    wired through).
    """

    observation: np.ndarray
    raw_observation: np.ndarray
    hidden_before: np.ndarray
    hidden_after: np.ndarray
    action: int
    reward: float
    value_estimate: float
    done: bool
    valid_action_mask: Optional[np.ndarray] = None


@dataclass
class _TrajectoryColumns:
    """Struct-of-arrays storage of one episode's transitions.

    All arrays are time-major ``(T, ...)``.  This is what the batched
    collector produces directly (one slice per slot out of its stacked
    per-interval arrays) — no per-step :class:`Transition` objects are
    built on the hot path.
    """

    observations: np.ndarray       # (T, obs_dim)
    raw_observations: np.ndarray   # (T, obs_dim)
    hidden_before: np.ndarray      # (T, hidden_dim)
    hidden_after: np.ndarray       # (T, hidden_dim)
    actions: np.ndarray            # (T,) int
    rewards: np.ndarray            # (T,)
    value_estimates: np.ndarray    # (T,)
    dones: np.ndarray              # (T,) bool
    valid_action_masks: Optional[np.ndarray]  # (T, num_actions) or None


class Trajectory:
    """A full episode of transitions plus episode-level outcomes.

    Two interchangeable storage forms back the same interface:

    * **transition list** — the sequential collector appends
      :class:`Transition` objects one step at a time (and tests build
      trajectories the same way);
    * **column store** — the batched collector hands over time-major
      arrays (:class:`_TrajectoryColumns`); ``transitions`` then
      materialises the per-step objects lazily, only for consumers that
      genuinely iterate steps (FSM interpretation, a few tests).

    Array accessors (:meth:`observations`, :meth:`rewards`, …) always
    return fresh arrays the caller may mutate freely.
    """

    __slots__ = ("trace_name", "makespan", "truncated", "_transitions", "_columns")

    def __init__(
        self,
        trace_name: str,
        transitions: Optional[List[Transition]] = None,
        makespan: int = 0,
        truncated: bool = False,
        columns: Optional[_TrajectoryColumns] = None,
    ) -> None:
        if transitions is not None and columns is not None:
            raise TrainingError(
                "a Trajectory is backed by either transitions or columns, not both"
            )
        self.trace_name = trace_name
        self.makespan = makespan
        self.truncated = truncated
        self._columns = columns
        self._transitions: Optional[List[Transition]] = (
            list(transitions) if transitions is not None
            else ([] if columns is None else None)
        )

    @staticmethod
    def from_columns(
        trace_name: str,
        columns: _TrajectoryColumns,
        makespan: int = 0,
        truncated: bool = False,
    ) -> "Trajectory":
        return Trajectory(
            trace_name, makespan=makespan, truncated=truncated, columns=columns
        )

    @property
    def transitions(self) -> List[Transition]:
        """Per-step transition objects (materialised lazily from columns).

        Materialisation hands ownership to the list form: the column
        store is dropped so callers that mutate the returned list (e.g.
        appending transitions, as tests and the sequential collector do)
        see every accessor reflect the mutation instead of silently
        reading stale columns.
        """
        if self._transitions is None:
            columns = self._columns
            masks = columns.valid_action_masks
            self._transitions = [
                Transition(
                    observation=columns.observations[t],
                    raw_observation=columns.raw_observations[t],
                    hidden_before=columns.hidden_before[t],
                    hidden_after=columns.hidden_after[t],
                    action=int(columns.actions[t]),
                    reward=float(columns.rewards[t]),
                    value_estimate=float(columns.value_estimates[t]),
                    done=bool(columns.dones[t]),
                    valid_action_mask=None if masks is None else masks[t],
                )
                for t in range(columns.actions.shape[0])
            ]
            self._columns = None
        return self._transitions

    def __len__(self) -> int:
        if self._transitions is not None:
            return len(self._transitions)
        return int(self._columns.actions.shape[0])

    @property
    def total_reward(self) -> float:
        return float(self.rewards().sum())

    def observations(self) -> np.ndarray:
        """Normalised observations stacked as (T, obs_dim)."""
        if self._columns is not None:
            return np.array(self._columns.observations)
        return np.stack([t.observation for t in self._transitions])

    def raw_observations(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.raw_observations)
        return np.stack([t.raw_observation for t in self._transitions])

    def hidden_states_before(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.hidden_before)
        return np.stack([t.hidden_before for t in self._transitions])

    def hidden_states_after(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.hidden_after)
        return np.stack([t.hidden_after for t in self._transitions])

    def actions(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.actions, dtype=int)
        return np.array([t.action for t in self._transitions], dtype=int)

    def rewards(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.rewards, dtype=float)
        return np.array([t.reward for t in self._transitions], dtype=float)

    def value_estimates(self) -> np.ndarray:
        if self._columns is not None:
            return np.array(self._columns.value_estimates, dtype=float)
        return np.array([t.value_estimate for t in self._transitions], dtype=float)

    def valid_action_masks(self) -> Optional[np.ndarray]:
        """(T, num_actions) legality masks, or None when not recorded."""
        if self._columns is not None:
            masks = self._columns.valid_action_masks
            return None if masks is None else np.array(masks)
        if not self._transitions or self._transitions[0].valid_action_mask is None:
            return None
        return np.stack([t.valid_action_mask for t in self._transitions])

    def discounted_returns(self, gamma: float) -> np.ndarray:
        """Monte-Carlo discounted returns G_t for every step.

        Computed with a vectorized doubling scan: after the pass with
        offset ``o`` each entry holds the discounted sum of the next
        ``2 o`` rewards, so ``log2(T)`` elementwise passes replace the
        reverse Python loop.
        """
        if not 0.0 <= gamma <= 1.0:
            raise TrainingError(f"gamma must be in [0, 1], got {gamma}")
        returns = self.rewards()
        offset = 1
        factor = gamma
        while offset < returns.size:
            returns[:-offset] += factor * returns[offset:]
            offset *= 2
            factor *= factor
        return returns


@dataclass
class TrajectoryBatch:
    """Padded, masked view of several trajectories for batched training.

    All arrays are time-major with shape ``(T_max, B, ...)``; ``mask`` is
    True where a trajectory actually has a step.  Rows beyond a
    trajectory's length are zero-padded and masked out.
    """

    trajectories: List[Trajectory]
    observations: np.ndarray       # (T, B, obs_dim)
    raw_observations: np.ndarray   # (T, B, obs_dim)
    hidden_before: np.ndarray      # (T, B, hidden_dim)
    hidden_after: np.ndarray       # (T, B, hidden_dim)
    actions: np.ndarray            # (T, B) int
    rewards: np.ndarray            # (T, B)
    mask: np.ndarray               # (T, B) bool

    @staticmethod
    def from_trajectories(trajectories: Sequence[Trajectory]) -> "TrajectoryBatch":
        trajectories = list(trajectories)
        if not trajectories:
            raise TrainingError("cannot build a TrajectoryBatch from no trajectories")
        if any(len(t) == 0 for t in trajectories):
            raise TrainingError("cannot build a TrajectoryBatch from an empty trajectory")
        horizon = max(len(t) for t in trajectories)
        batch = len(trajectories)
        first_observations = trajectories[0].observations()
        obs_dim = first_observations.shape[1]
        hidden_dim = trajectories[0].hidden_states_before().shape[1]
        observations = np.zeros((horizon, batch, obs_dim))
        raw_observations = np.zeros(
            (horizon, batch, trajectories[0].raw_observations().shape[1])
        )
        hidden_before = np.zeros((horizon, batch, hidden_dim))
        hidden_after = np.zeros((horizon, batch, hidden_dim))
        actions = np.zeros((horizon, batch), dtype=int)
        rewards = np.zeros((horizon, batch))
        mask = np.zeros((horizon, batch), dtype=bool)
        for b, trajectory in enumerate(trajectories):
            steps = len(trajectory)
            observations[:steps, b] = trajectory.observations()
            raw_observations[:steps, b] = trajectory.raw_observations()
            hidden_before[:steps, b] = trajectory.hidden_states_before()
            hidden_after[:steps, b] = trajectory.hidden_states_after()
            actions[:steps, b] = trajectory.actions()
            rewards[:steps, b] = trajectory.rewards()
            mask[:steps, b] = True
        return TrajectoryBatch(
            trajectories=trajectories,
            observations=observations,
            raw_observations=raw_observations,
            hidden_before=hidden_before,
            hidden_after=hidden_after,
            actions=actions,
            rewards=rewards,
            mask=mask,
        )

    @property
    def max_steps(self) -> int:
        return int(self.observations.shape[0])

    @property
    def batch_size(self) -> int:
        return int(self.observations.shape[1])

    @property
    def total_steps(self) -> int:
        return int(self.mask.sum())

    def valid_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time_idx, batch_idx) arrays of the unpadded positions (time-major)."""
        return np.nonzero(self.mask)

    def episode_major_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time_idx, batch_idx) of unpadded positions in episode-major order.

        Rows come out grouped by episode, each episode's steps in time
        order — the layout :meth:`Trajectory` consumers (e.g. the QBN
        transition dataset) expect when episodes are concatenated.
        """
        batch_idx, time_idx = np.nonzero(self.mask.T)
        return time_idx, batch_idx

    def padded_returns(self, gamma: float) -> np.ndarray:
        """(T, B) discounted returns, zero in the padded region."""
        returns = np.zeros_like(self.rewards)
        for b, trajectory in enumerate(self.trajectories):
            returns[: len(trajectory), b] = trajectory.discounted_returns(gamma)
        return returns


def derive_episode_streams(
    base_seed: int, count: int, rng_family: str = "legacy"
) -> Tuple[Sequence, Sequence]:
    """Per-episode (environment, action) rng stream pairs from one seed.

    Both collectors use this scheme, which is what makes a batched
    collection reproducible by running the sequential collector with the
    same streams.  Two stream families exist:

    * ``"legacy"`` (default) — episode ``i`` gets
      ``SeedSequence(base_seed).spawn(count)[i]``, split once more into
      the simulator stream and the action-sampling stream.  Returns two
      lists of ``np.random.Generator``.
    * ``"philox"`` — counter-based :class:`~repro.utils.rng.PhiloxStreams`
      keyed by ``(base_seed, episode, draw_index)``, whose per-episode
      draws materialise in one vectorized call per decision point.
      Returns two :class:`PhiloxStreams` (env, action); lane ``i`` is
      the drop-in scalar stream for episode ``i``.

    The two families produce *different* (both reproducible) episodes —
    goldens are pinned per family.
    """
    if count <= 0:
        raise TrainingError(f"count must be positive, got {count}")
    if rng_family not in RNG_FAMILIES:
        raise TrainingError(
            f"unknown rng_family {rng_family!r}, expected one of {RNG_FAMILIES}"
        )
    if rng_family == "philox":
        return derive_philox_streams(base_seed, count)
    episode_rngs: List[np.random.Generator] = []
    action_rngs: List[np.random.Generator] = []
    for child in np.random.SeedSequence(base_seed).spawn(count):
        env_seq, action_seq = child.spawn(2)
        episode_rngs.append(np.random.default_rng(env_seq))
        action_rngs.append(np.random.default_rng(action_seq))
    return episode_rngs, action_rngs


class RolloutCollector:
    """Collects trajectories by running a policy in the environment (sequentially).

    This is the reference implementation the batched collector is tested
    against; it steps one environment and makes one policy call per
    interval.
    """

    def __init__(self, env: StorageAllocationEnv, rng: SeedLike = None) -> None:
        self.env = env
        self._rng = new_rng(rng)

    def collect(
        self,
        policy: RecurrentPolicyValueNet,
        trace: WorkloadTrace,
        epsilon: float = 0.0,
        greedy: bool = False,
        episode_seed: Optional[SeedLike] = None,
        action_rng: Optional[SeedLike] = None,
    ) -> Trajectory:
        """Run one episode of ``policy`` on ``trace`` and record every transition.

        ``episode_seed`` seeds the environment's stochastic components and
        ``action_rng`` the action sampling; passing the streams from
        :func:`derive_episode_streams` reproduces one slot of a batched
        collection exactly.
        """
        observation = self.env.reset(trace, rng=episode_seed)
        sample_rng = self._rng if action_rng is None else new_rng(action_rng)
        hidden = policy.initial_state().numpy()
        trajectory = Trajectory(trace_name=trace.name)

        while True:
            normalized = self.env.observation_encoder.normalize(observation)
            raw = observation.raw()
            mask = self.env.valid_action_mask()
            output = policy.act(
                normalized,
                hidden,
                rng=sample_rng,
                epsilon=epsilon,
                greedy=greedy,
                valid_action_mask=mask,
            )
            result = self.env.step(output.action, decision_mask=mask)
            trajectory.transitions.append(
                Transition(
                    observation=normalized,
                    raw_observation=raw,
                    hidden_before=hidden,
                    hidden_after=output.hidden_state,
                    action=output.action,
                    reward=result.reward,
                    value_estimate=output.value,
                    done=result.done,
                    valid_action_mask=mask,
                )
            )
            hidden = output.hidden_state
            observation = result.observation
            if result.done:
                trajectory.makespan = int(result.info["makespan"])
                trajectory.truncated = bool(result.info["truncated"])
                break
        return trajectory

    def collect_many(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
    ) -> List[Trajectory]:
        """Collect one trajectory per trace."""
        return [
            self.collect(policy, trace, epsilon=epsilon, greedy=greedy) for trace in traces
        ]


class BatchedRolloutCollector:
    """Collects N trajectories in lockstep with batched policy inference.

    Each :meth:`collect_batch` call runs one episode per trace on the
    vectorized environment.  Finished episodes are auto-masked: they stop
    consuming actions and randomness while the rest of the batch drains.
    """

    def __init__(self, vector_env: VectorStorageAllocationEnv, rng: SeedLike = None) -> None:
        self.vector_env = vector_env
        self._rng = new_rng(rng)
        self._tracer = telemetry.tracer()
        metrics = telemetry.registry()
        self._m_batches = metrics.counter(
            "rollout_batches_total", help="Lockstep collect_batch calls"
        )
        self._m_steps = metrics.counter(
            "rollout_steps_total", help="Lockstep env intervals stepped during rollout"
        )
        self._m_episodes = metrics.counter(
            "rollout_episodes_total", help="Trajectories collected"
        )

    def collect_batch(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
        episode_rngs: Optional[Sequence[SeedLike]] = None,
        action_rngs: Optional[Sequence[SeedLike]] = None,
        rng_family: str = "legacy",
    ) -> List[Trajectory]:
        """Run one lockstep episode per trace and return the trajectories.

        When the rng streams are not supplied they are derived from this
        collector's generator via :func:`derive_episode_streams` (using
        ``rng_family`` — pass ``"philox"`` for the counter-based family
        whose per-decision draws are one vectorized call); pass the same
        streams to :meth:`RolloutCollector.collect` to reproduce any
        single slot bit-for-bit.

        ``policy`` may be a bare :class:`RecurrentPolicyValueNet` or any
        :class:`~repro.engine.backends.DecisionBackend` that implements
        ``act_rollout`` (e.g.
        :class:`~repro.engine.backends.GRUPolicyBackend`; see
        :func:`~repro.engine.backends.resolve_rollout_backend`) —
        training rollouts, evaluation and the decision server then share
        one inference engine.
        """
        traces = list(traces)
        if not traces:
            raise TrainingError("collect_batch() needs at least one trace")
        batch = len(traces)
        if episode_rngs is None or action_rngs is None:
            # Derive whichever stream family was not supplied from this
            # collector's generator so a seeded collector stays
            # deterministic even with partially supplied streams.
            base_seed = int(self._rng.integers(np.iinfo(np.int64).max))
            derived_episode, derived_action = derive_episode_streams(
                base_seed, batch, rng_family
            )
            episode_rngs = derived_episode if episode_rngs is None else episode_rngs
            action_rngs = derived_action if action_rngs is None else action_rngs
        if not isinstance(episode_rngs, PhiloxStreams):
            episode_rngs = list(episode_rngs)
        if len(episode_rngs) != batch or len(action_rngs) != batch:
            raise TrainingError(
                f"need one episode/action rng per trace, got {len(episode_rngs)}/"
                f"{len(action_rngs)} for {batch} traces"
            )
        if not isinstance(action_rngs, PhiloxStreams):
            # Counter-based streams are consumed whole by act_batch (one
            # vectorized draw per decision point); legacy generators are
            # wrapped per lane.
            action_rngs = GeneratorList(new_rng(r) for r in action_rngs)

        # Lazy: repro.engine.backends imports repro.drl.policy, so the
        # resolver cannot be imported while this package initialises.
        from repro.engine.backends import resolve_rollout_backend

        backend, policy = resolve_rollout_backend(policy)

        venv = self.vector_env
        normalized = venv.reset(traces, rngs=episode_rngs)
        raw = venv.raw_observations()
        hidden = policy.initial_state(batch).numpy()
        active = ~venv.dones

        # Struct-of-arrays accumulation into preallocated (cap, B, ...)
        # buffers: per interval the fresh (B, ...) step arrays are copied
        # into row ``t``; no per-slot python, no Transition objects, no
        # end-of-episode re-stacking.  Episodes can outlive their traces
        # (the backlog drains after the last interval), so the buffers
        # grow by doubling on the rare overflow.  Slot ``b`` is active on
        # a contiguous step prefix, so its episode is the column slice
        # ``[:length[b], b]``.
        cap = 2 * max(len(trace) for trace in traces) + 16
        counts0 = venv.core_counts()
        observations_buf = np.empty((cap,) + normalized.shape)
        raw_buf = np.empty((cap,) + raw.shape)
        # Hidden states are stored once per boundary, not twice per step:
        # a slot's hidden_after at step t is its hidden_before at t+1
        # (act_batch freezes finished slots' rows, and only the active
        # prefix of each slot is sliced out below).
        hidden_buf = np.empty((cap + 1,) + hidden.shape)
        actions_buf = np.empty((cap, batch), dtype=np.int64)
        rewards_buf = np.empty((cap, batch))
        values_buf = np.empty((cap, batch))
        # Valid-action masks are a pure function of the pre-step core
        # counts for every *stored* row (a slot's rows only cover steps
        # where it was still active, so the finished-slot override of
        # ``valid_action_masks`` never reaches a trajectory), so the hot
        # loop stores one cheap counts snapshot per interval and the
        # masks are materialised in a single vectorized call afterwards.
        counts_buf = np.empty((cap,) + counts0.shape, dtype=counts0.dtype)
        makespans = np.zeros(batch, dtype=np.int64)
        truncated = np.zeros(batch, dtype=bool)

        if active.all():
            # ``active=None`` takes act_batch's mask-free whole-batch
            # path; the mask is only materialised once slots finish.
            active = None
        t = 0
        with self._tracer.span(
            "rollout.collect_batch", traces=batch, backend=type(backend).__name__
        ) as rollout_span:
            while active is None or active.any():
                if t == cap:
                    cap *= 2
                    grown = []
                    for buf in (
                        observations_buf, raw_buf, hidden_buf, actions_buf,
                        rewards_buf, values_buf, counts_buf,
                    ):
                        rows = cap + 1 if buf is hidden_buf else cap
                        wide = np.empty((rows,) + buf.shape[1:], dtype=buf.dtype)
                        wide[: buf.shape[0]] = buf
                        grown.append(wide)
                    (observations_buf, raw_buf, hidden_buf, actions_buf,
                     rewards_buf, values_buf, counts_buf) = grown
                counts_buf[t] = counts0 if t == 0 else venv.core_counts()
                output = backend.act_rollout(
                    normalized,
                    hidden,
                    rngs=action_rngs,
                    epsilon=epsilon,
                    greedy=greedy,
                    active=active,
                )
                result = venv.step(output.actions)
                observations_buf[t] = normalized
                raw_buf[t] = raw
                hidden_buf[t] = hidden
                actions_buf[t] = output.actions
                rewards_buf[t] = result.rewards
                values_buf[t] = output.values
                if result.newly_done.any():
                    finished = np.nonzero(result.newly_done)[0]
                    makespans[finished] = result.makespans[finished]
                    truncated[finished] = result.truncated[finished]
                # act_batch already freezes finished slots' hidden rows (they
                # keep the input hidden state), so the output advances active
                # slots and preserves the rest.
                hidden = output.hidden_states
                normalized = result.observations
                raw = result.raw_observations
                dones = result.dones
                active = None if not dones.any() else ~dones
                t += 1
            rollout_span.set("steps", t)
        self._m_batches.inc()
        self._m_steps.inc(t)
        self._m_episodes.inc(batch)
        # A slot's stored-row count equals its makespan: steps_taken
        # advances exactly once per stored interval.
        lengths = makespans

        hidden_buf[t] = hidden
        observations_stack = observations_buf[:t]
        raw_stack = raw_buf[:t]
        hidden_stack = hidden_buf[: t + 1]
        actions_stack = actions_buf[:t]
        rewards_stack = rewards_buf[:t]
        values_stack = values_buf[:t]
        counts_stack = counts_buf[:t]                     # (T, B, levels)
        horizon = t
        masks_stack = venv.action_space.valid_mask_batch_from_counts(
            counts_stack.reshape(horizon * batch, -1),
            venv.system_config.min_cores_per_level,
        ).reshape(horizon, batch, -1)
        trajectories = []
        for b, trace in enumerate(traces):
            steps = int(lengths[b])
            # A slot's stored rows cover exactly its active steps, so its
            # done column is False everywhere except the final step (the
            # interval it finished or was truncated on).
            dones = np.zeros(steps, dtype=bool)
            if steps:
                dones[-1] = True
            trajectories.append(
                Trajectory.from_columns(
                    trace.name,
                    _TrajectoryColumns(
                        observations=observations_stack[:steps, b],
                        raw_observations=raw_stack[:steps, b],
                        hidden_before=hidden_stack[:steps, b],
                        hidden_after=hidden_stack[1 : steps + 1, b],
                        actions=actions_stack[:steps, b],
                        rewards=rewards_stack[:steps, b],
                        value_estimates=values_stack[:steps, b],
                        dones=dones,
                        valid_action_masks=masks_stack[:steps, b],
                    ),
                    makespan=int(makespans[b]),
                    truncated=bool(truncated[b]),
                )
            )
        return trajectories

    def collect_many(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
        batch_size: Optional[int] = None,
        base_seed: Optional[int] = None,
        rng_family: str = "legacy",
    ) -> List[Trajectory]:
        """Collect one trajectory per trace, ``batch_size`` episodes at a time.

        Drop-in replacement for :meth:`RolloutCollector.collect_many`;
        with ``batch_size=None`` the whole trace list runs as one batch.
        Any ``batch_size`` degrades gracefully — a batch of one and a
        final partial chunk (episode count not a multiple of the batch)
        run through the same lockstep path.

        With ``base_seed`` set, per-episode streams are derived once for
        the *full* episode list and sliced per chunk, so the trajectories
        are bit-identical for every ``batch_size`` (and to a sequential
        or multi-process collection from the same seed).  Without it each
        chunk draws its own base seed from this collector's generator, so
        results then depend on the chunking.  ``rng_family`` selects the
        stream family (chunk slicing of counter-based streams preserves
        each episode's lane, so the invariance holds for both families).
        """
        traces = list(traces)
        if not traces:
            return []
        chunk = len(traces) if batch_size is None else int(batch_size)
        if chunk <= 0:
            raise TrainingError(f"batch_size must be positive, got {batch_size}")
        if base_seed is not None:
            episode_rngs, action_rngs = derive_episode_streams(
                base_seed, len(traces), rng_family
            )
        trajectories: List[Trajectory] = []
        for start in range(0, len(traces), chunk):
            stop = start + chunk
            trajectories.extend(
                self.collect_batch(
                    policy,
                    traces[start:stop],
                    epsilon=epsilon,
                    greedy=greedy,
                    episode_rngs=None if base_seed is None else episode_rngs[start:stop],
                    action_rngs=None if base_seed is None else action_rngs[start:stop],
                    rng_family=rng_family,
                )
            )
        return trajectories
