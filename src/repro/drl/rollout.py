"""Rollout collection: running the recurrent policy in the environment.

The trainer and the QBN/FSM extraction stages both need trajectories of
``<h_t, h_{t+1}, o_t, a_t, r_t>`` tuples (the dataset of paper Section
3.2.1).  Rollouts are collected in inference mode (no autograd graph);
the A2C trainer later re-runs the recurrent forward pass over the stored
observations with gradients enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.drl.policy import RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.errors import TrainingError
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class Transition:
    """One step of interaction."""

    observation: np.ndarray
    raw_observation: np.ndarray
    hidden_before: np.ndarray
    hidden_after: np.ndarray
    action: int
    reward: float
    value_estimate: float
    done: bool


@dataclass
class Trajectory:
    """A full episode of transitions plus episode-level outcomes."""

    trace_name: str
    transitions: List[Transition] = field(default_factory=list)
    makespan: int = 0
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return float(sum(t.reward for t in self.transitions))

    def observations(self) -> np.ndarray:
        """Normalised observations stacked as (T, obs_dim)."""
        return np.stack([t.observation for t in self.transitions])

    def raw_observations(self) -> np.ndarray:
        return np.stack([t.raw_observation for t in self.transitions])

    def hidden_states_before(self) -> np.ndarray:
        return np.stack([t.hidden_before for t in self.transitions])

    def hidden_states_after(self) -> np.ndarray:
        return np.stack([t.hidden_after for t in self.transitions])

    def actions(self) -> np.ndarray:
        return np.array([t.action for t in self.transitions], dtype=int)

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.transitions], dtype=float)

    def discounted_returns(self, gamma: float) -> np.ndarray:
        """Monte-Carlo discounted returns G_t for every step."""
        if not 0.0 <= gamma <= 1.0:
            raise TrainingError(f"gamma must be in [0, 1], got {gamma}")
        rewards = self.rewards()
        returns = np.zeros_like(rewards)
        running = 0.0
        for t in range(len(rewards) - 1, -1, -1):
            running = rewards[t] + gamma * running
            returns[t] = running
        return returns


class RolloutCollector:
    """Collects trajectories by running a policy in the environment."""

    def __init__(self, env: StorageAllocationEnv, rng: SeedLike = None) -> None:
        self.env = env
        self._rng = new_rng(rng)

    def collect(
        self,
        policy: RecurrentPolicyValueNet,
        trace: WorkloadTrace,
        epsilon: float = 0.0,
        greedy: bool = False,
        episode_seed: Optional[int] = None,
    ) -> Trajectory:
        """Run one episode of ``policy`` on ``trace`` and record every transition."""
        observation = self.env.reset(trace, rng=episode_seed)
        hidden = policy.initial_state().numpy()
        trajectory = Trajectory(trace_name=trace.name)

        while True:
            normalized = self.env.observation_encoder.normalize(observation)
            raw = observation.raw()
            output = policy.act(
                normalized, hidden, rng=self._rng, epsilon=epsilon, greedy=greedy
            )
            result = self.env.step(output.action)
            trajectory.transitions.append(
                Transition(
                    observation=normalized,
                    raw_observation=raw,
                    hidden_before=hidden,
                    hidden_after=output.hidden_state,
                    action=output.action,
                    reward=result.reward,
                    value_estimate=output.value,
                    done=result.done,
                )
            )
            hidden = output.hidden_state
            observation = result.observation
            if result.done:
                trajectory.makespan = int(result.info["makespan"])
                trajectory.truncated = bool(result.info["truncated"])
                break
        return trajectory

    def collect_many(
        self,
        policy: RecurrentPolicyValueNet,
        traces: List[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
    ) -> List[Trajectory]:
        """Collect one trajectory per trace."""
        return [
            self.collect(policy, trace, epsilon=epsilon, greedy=greedy) for trace in traces
        ]
