"""Rollout collection: running the recurrent policy in the environment.

The trainer and the QBN/FSM extraction stages both need trajectories of
``<h_t, h_{t+1}, o_t, a_t, r_t>`` tuples (the dataset of paper Section
3.2.1).  Rollouts are collected in inference mode (no autograd graph);
the A2C trainer later re-runs the recurrent forward pass over the stored
observations with gradients enabled.

Two collectors produce the same :class:`Trajectory` objects:

* :class:`RolloutCollector` — the sequential reference implementation,
  one environment step and one policy call at a time;
* :class:`BatchedRolloutCollector` — runs N episodes in lockstep on a
  :class:`~repro.env.vector_env.VectorStorageAllocationEnv` so one
  batched GRU forward pass serves every environment per interval.  Given
  the same per-episode rng streams (see :func:`derive_episode_streams`)
  it is bit-identical to the sequential collector, trace by trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.drl.policy import RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import TrainingError
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class Transition:
    """One step of interaction.

    ``valid_action_mask`` records which actions were legal migrations at
    decision time (None for trajectories recorded before masks were
    wired through).
    """

    observation: np.ndarray
    raw_observation: np.ndarray
    hidden_before: np.ndarray
    hidden_after: np.ndarray
    action: int
    reward: float
    value_estimate: float
    done: bool
    valid_action_mask: Optional[np.ndarray] = None


@dataclass
class Trajectory:
    """A full episode of transitions plus episode-level outcomes."""

    trace_name: str
    transitions: List[Transition] = field(default_factory=list)
    makespan: int = 0
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return float(self.rewards().sum())

    def observations(self) -> np.ndarray:
        """Normalised observations stacked as (T, obs_dim)."""
        return np.stack([t.observation for t in self.transitions])

    def raw_observations(self) -> np.ndarray:
        return np.stack([t.raw_observation for t in self.transitions])

    def hidden_states_before(self) -> np.ndarray:
        return np.stack([t.hidden_before for t in self.transitions])

    def hidden_states_after(self) -> np.ndarray:
        return np.stack([t.hidden_after for t in self.transitions])

    def actions(self) -> np.ndarray:
        return np.array([t.action for t in self.transitions], dtype=int)

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.transitions], dtype=float)

    def value_estimates(self) -> np.ndarray:
        return np.array([t.value_estimate for t in self.transitions], dtype=float)

    def valid_action_masks(self) -> Optional[np.ndarray]:
        """(T, num_actions) legality masks, or None when not recorded."""
        if not self.transitions or self.transitions[0].valid_action_mask is None:
            return None
        return np.stack([t.valid_action_mask for t in self.transitions])

    def discounted_returns(self, gamma: float) -> np.ndarray:
        """Monte-Carlo discounted returns G_t for every step.

        Computed with a vectorized doubling scan: after the pass with
        offset ``o`` each entry holds the discounted sum of the next
        ``2 o`` rewards, so ``log2(T)`` elementwise passes replace the
        reverse Python loop.
        """
        if not 0.0 <= gamma <= 1.0:
            raise TrainingError(f"gamma must be in [0, 1], got {gamma}")
        returns = self.rewards()
        offset = 1
        factor = gamma
        while offset < returns.size:
            returns[:-offset] += factor * returns[offset:]
            offset *= 2
            factor *= factor
        return returns


@dataclass
class TrajectoryBatch:
    """Padded, masked view of several trajectories for batched training.

    All arrays are time-major with shape ``(T_max, B, ...)``; ``mask`` is
    True where a trajectory actually has a step.  Rows beyond a
    trajectory's length are zero-padded and masked out.
    """

    trajectories: List[Trajectory]
    observations: np.ndarray       # (T, B, obs_dim)
    raw_observations: np.ndarray   # (T, B, obs_dim)
    hidden_before: np.ndarray      # (T, B, hidden_dim)
    hidden_after: np.ndarray       # (T, B, hidden_dim)
    actions: np.ndarray            # (T, B) int
    rewards: np.ndarray            # (T, B)
    mask: np.ndarray               # (T, B) bool

    @staticmethod
    def from_trajectories(trajectories: Sequence[Trajectory]) -> "TrajectoryBatch":
        trajectories = list(trajectories)
        if not trajectories:
            raise TrainingError("cannot build a TrajectoryBatch from no trajectories")
        if any(len(t) == 0 for t in trajectories):
            raise TrainingError("cannot build a TrajectoryBatch from an empty trajectory")
        horizon = max(len(t) for t in trajectories)
        batch = len(trajectories)
        first = trajectories[0].transitions[0]
        obs_dim = first.observation.shape[0]
        hidden_dim = first.hidden_before.shape[0]
        observations = np.zeros((horizon, batch, obs_dim))
        raw_observations = np.zeros((horizon, batch, first.raw_observation.shape[0]))
        hidden_before = np.zeros((horizon, batch, hidden_dim))
        hidden_after = np.zeros((horizon, batch, hidden_dim))
        actions = np.zeros((horizon, batch), dtype=int)
        rewards = np.zeros((horizon, batch))
        mask = np.zeros((horizon, batch), dtype=bool)
        for b, trajectory in enumerate(trajectories):
            steps = len(trajectory)
            observations[:steps, b] = trajectory.observations()
            raw_observations[:steps, b] = trajectory.raw_observations()
            hidden_before[:steps, b] = trajectory.hidden_states_before()
            hidden_after[:steps, b] = trajectory.hidden_states_after()
            actions[:steps, b] = trajectory.actions()
            rewards[:steps, b] = trajectory.rewards()
            mask[:steps, b] = True
        return TrajectoryBatch(
            trajectories=trajectories,
            observations=observations,
            raw_observations=raw_observations,
            hidden_before=hidden_before,
            hidden_after=hidden_after,
            actions=actions,
            rewards=rewards,
            mask=mask,
        )

    @property
    def max_steps(self) -> int:
        return int(self.observations.shape[0])

    @property
    def batch_size(self) -> int:
        return int(self.observations.shape[1])

    @property
    def total_steps(self) -> int:
        return int(self.mask.sum())

    def valid_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time_idx, batch_idx) arrays of the unpadded positions (time-major)."""
        return np.nonzero(self.mask)

    def episode_major_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time_idx, batch_idx) of unpadded positions in episode-major order.

        Rows come out grouped by episode, each episode's steps in time
        order — the layout :meth:`Trajectory` consumers (e.g. the QBN
        transition dataset) expect when episodes are concatenated.
        """
        batch_idx, time_idx = np.nonzero(self.mask.T)
        return time_idx, batch_idx

    def padded_returns(self, gamma: float) -> np.ndarray:
        """(T, B) discounted returns, zero in the padded region."""
        returns = np.zeros_like(self.rewards)
        for b, trajectory in enumerate(self.trajectories):
            returns[: len(trajectory), b] = trajectory.discounted_returns(gamma)
        return returns


def derive_episode_streams(
    base_seed: int, count: int
) -> Tuple[List[np.random.Generator], List[np.random.Generator]]:
    """Per-episode (environment, action) rng stream pairs from one seed.

    Both collectors use this scheme, which is what makes a batched
    collection reproducible by running the sequential collector with the
    same streams: episode ``i`` gets ``SeedSequence(base_seed).spawn(count)[i]``,
    split once more into the simulator stream and the action-sampling
    stream.
    """
    if count <= 0:
        raise TrainingError(f"count must be positive, got {count}")
    episode_rngs: List[np.random.Generator] = []
    action_rngs: List[np.random.Generator] = []
    for child in np.random.SeedSequence(base_seed).spawn(count):
        env_seq, action_seq = child.spawn(2)
        episode_rngs.append(np.random.default_rng(env_seq))
        action_rngs.append(np.random.default_rng(action_seq))
    return episode_rngs, action_rngs


class RolloutCollector:
    """Collects trajectories by running a policy in the environment (sequentially).

    This is the reference implementation the batched collector is tested
    against; it steps one environment and makes one policy call per
    interval.
    """

    def __init__(self, env: StorageAllocationEnv, rng: SeedLike = None) -> None:
        self.env = env
        self._rng = new_rng(rng)

    def collect(
        self,
        policy: RecurrentPolicyValueNet,
        trace: WorkloadTrace,
        epsilon: float = 0.0,
        greedy: bool = False,
        episode_seed: Optional[SeedLike] = None,
        action_rng: Optional[SeedLike] = None,
    ) -> Trajectory:
        """Run one episode of ``policy`` on ``trace`` and record every transition.

        ``episode_seed`` seeds the environment's stochastic components and
        ``action_rng`` the action sampling; passing the streams from
        :func:`derive_episode_streams` reproduces one slot of a batched
        collection exactly.
        """
        observation = self.env.reset(trace, rng=episode_seed)
        sample_rng = self._rng if action_rng is None else new_rng(action_rng)
        hidden = policy.initial_state().numpy()
        trajectory = Trajectory(trace_name=trace.name)

        while True:
            normalized = self.env.observation_encoder.normalize(observation)
            raw = observation.raw()
            mask = self.env.valid_action_mask()
            output = policy.act(
                normalized,
                hidden,
                rng=sample_rng,
                epsilon=epsilon,
                greedy=greedy,
                valid_action_mask=mask,
            )
            result = self.env.step(output.action, decision_mask=mask)
            trajectory.transitions.append(
                Transition(
                    observation=normalized,
                    raw_observation=raw,
                    hidden_before=hidden,
                    hidden_after=output.hidden_state,
                    action=output.action,
                    reward=result.reward,
                    value_estimate=output.value,
                    done=result.done,
                    valid_action_mask=mask,
                )
            )
            hidden = output.hidden_state
            observation = result.observation
            if result.done:
                trajectory.makespan = int(result.info["makespan"])
                trajectory.truncated = bool(result.info["truncated"])
                break
        return trajectory

    def collect_many(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
    ) -> List[Trajectory]:
        """Collect one trajectory per trace."""
        return [
            self.collect(policy, trace, epsilon=epsilon, greedy=greedy) for trace in traces
        ]


class BatchedRolloutCollector:
    """Collects N trajectories in lockstep with batched policy inference.

    Each :meth:`collect_batch` call runs one episode per trace on the
    vectorized environment.  Finished episodes are auto-masked: they stop
    consuming actions and randomness while the rest of the batch drains.
    """

    def __init__(self, vector_env: VectorStorageAllocationEnv, rng: SeedLike = None) -> None:
        self.vector_env = vector_env
        self._rng = new_rng(rng)

    def collect_batch(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
        episode_rngs: Optional[Sequence[SeedLike]] = None,
        action_rngs: Optional[Sequence[SeedLike]] = None,
    ) -> List[Trajectory]:
        """Run one lockstep episode per trace and return the trajectories.

        When the rng streams are not supplied they are derived from this
        collector's generator via :func:`derive_episode_streams`; pass
        the same streams to :meth:`RolloutCollector.collect` to reproduce
        any single slot bit-for-bit.
        """
        traces = list(traces)
        if not traces:
            raise TrainingError("collect_batch() needs at least one trace")
        batch = len(traces)
        if episode_rngs is None or action_rngs is None:
            # Derive whichever stream family was not supplied from this
            # collector's generator so a seeded collector stays
            # deterministic even with partially supplied streams.
            base_seed = int(self._rng.integers(np.iinfo(np.int64).max))
            derived_episode, derived_action = derive_episode_streams(base_seed, batch)
            episode_rngs = derived_episode if episode_rngs is None else list(episode_rngs)
            action_rngs = derived_action if action_rngs is None else list(action_rngs)
        else:
            episode_rngs = list(episode_rngs)
            action_rngs = list(action_rngs)
        if len(episode_rngs) != batch or len(action_rngs) != batch:
            raise TrainingError(
                f"need one episode/action rng per trace, got {len(episode_rngs)}/"
                f"{len(action_rngs)} for {batch} traces"
            )
        action_rngs = [new_rng(r) for r in action_rngs]

        venv = self.vector_env
        normalized = venv.reset(traces, rngs=episode_rngs)
        raw = venv.raw_observations()
        hidden = policy.initial_state(batch).numpy()
        trajectories = [Trajectory(trace_name=trace.name) for trace in traces]
        active = ~venv.dones

        while active.any():
            masks = venv.valid_action_masks()
            output = policy.act_batch(
                normalized,
                hidden,
                rngs=action_rngs,
                epsilon=epsilon,
                greedy=greedy,
                active=active,
            )
            result = venv.step(output.actions)
            # Batch-convert per-slot scalars and pre-split the row views
            # once per interval; the per-transition reads are then plain
            # python list indexing instead of numpy item lookups.
            actions_list = output.actions.tolist()
            values_list = output.values.tolist()
            rewards_list = result.rewards.tolist()
            dones_list = result.dones.tolist()
            normalized_rows = list(normalized)
            raw_rows = list(raw)
            hidden_rows = list(hidden)
            hidden_after_rows = list(output.hidden_states)
            mask_rows = list(masks)
            for i in np.nonzero(active)[0].tolist():
                trajectories[i].transitions.append(
                    Transition(
                        observation=normalized_rows[i],
                        raw_observation=raw_rows[i],
                        hidden_before=hidden_rows[i],
                        hidden_after=hidden_after_rows[i],
                        action=actions_list[i],
                        reward=rewards_list[i],
                        value_estimate=values_list[i],
                        done=dones_list[i],
                        valid_action_mask=mask_rows[i],
                    )
                )
                if result.newly_done[i]:
                    trajectories[i].makespan = int(result.makespans[i])
                    trajectories[i].truncated = bool(result.truncated[i])
            # act_batch already freezes finished slots' hidden rows (they
            # keep the input hidden state), so the output advances active
            # slots and preserves the rest.
            hidden = output.hidden_states
            normalized = result.observations
            raw = result.raw_observations
            active = ~result.dones
        return trajectories

    def collect_many(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        epsilon: float = 0.0,
        greedy: bool = False,
        batch_size: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> List[Trajectory]:
        """Collect one trajectory per trace, ``batch_size`` episodes at a time.

        Drop-in replacement for :meth:`RolloutCollector.collect_many`;
        with ``batch_size=None`` the whole trace list runs as one batch.
        Any ``batch_size`` degrades gracefully — a batch of one and a
        final partial chunk (episode count not a multiple of the batch)
        run through the same lockstep path.

        With ``base_seed`` set, per-episode streams are derived once for
        the *full* episode list and sliced per chunk, so the trajectories
        are bit-identical for every ``batch_size`` (and to a sequential
        or multi-process collection from the same seed).  Without it each
        chunk draws its own base seed from this collector's generator, so
        results then depend on the chunking.
        """
        traces = list(traces)
        if not traces:
            return []
        chunk = len(traces) if batch_size is None else int(batch_size)
        if chunk <= 0:
            raise TrainingError(f"batch_size must be positive, got {batch_size}")
        if base_seed is not None:
            episode_rngs, action_rngs = derive_episode_streams(base_seed, len(traces))
        trajectories: List[Trajectory] = []
        for start in range(0, len(traces), chunk):
            stop = start + chunk
            trajectories.extend(
                self.collect_batch(
                    policy,
                    traces[start:stop],
                    epsilon=epsilon,
                    greedy=greedy,
                    episode_rngs=None if base_seed is None else episode_rngs[start:stop],
                    action_rngs=None if base_seed is None else action_rngs[start:stop],
                )
            )
        return trajectories
