"""The recurrent actor–critic network.

Architecture (paper Section 4.2): a GRU whose hidden state is fed to two
linear heads — one producing the 7 action logits, one producing the
scalar state-value estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.autograd import functional as F
from repro.autograd.functional import _GEMM_MIN_COLS, log_softmax_np, matmul_rows_np
from repro.autograd.tensor import Tensor, no_grad
from repro.env.observation import OBSERVATION_DIM
from repro.errors import ConfigurationError, ShapeError
from repro.nn import GRUCell, Linear, Module
from repro.storage.migration import NUM_ACTIONS
from repro.utils.rng import PhiloxStreams, SeedLike, new_rng


@dataclass(frozen=True)
class PolicyConfig:
    """Hyper-parameters of the recurrent policy/value network.

    ``kernel`` selects the inference implementation: ``"numpy"``
    (default, bit-compatible with the pinned golden traces) or
    ``"native"`` (the fused C micro-kernel — one pass over the GRU gate
    stack and both heads; allclose-level agreement with the numpy path,
    compiled at first use with a silent numpy fallback when no compiler
    is available).
    """

    observation_dim: int = OBSERVATION_DIM
    hidden_size: int = 128
    num_actions: int = NUM_ACTIONS
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.observation_dim <= 0:
            raise ConfigurationError("observation_dim must be positive")
        if self.hidden_size <= 0:
            raise ConfigurationError("hidden_size must be positive")
        if self.num_actions <= 1:
            raise ConfigurationError("num_actions must be at least 2")
        if self.kernel not in ("numpy", "native"):
            raise ConfigurationError(
                f"kernel must be 'numpy' or 'native', got {self.kernel!r}"
            )


@dataclass(frozen=True)
class PolicyStepOutput:
    """Result of a single policy step (inference mode, numpy values).

    ``valid_action_mask`` records which actions were legal migrations in
    the environment state the decision was taken in (filled in by the
    rollout collectors); downstream consumers such as FSM interpretation
    and evaluation use it to distinguish deliberate no-ops from actions
    the simulator silently rejected.
    """

    action: int
    log_probs: np.ndarray
    probabilities: np.ndarray
    value: float
    hidden_state: np.ndarray
    valid_action_mask: Optional[np.ndarray] = None


class GeneratorList(list):
    """A list of ``np.random.Generator`` the caller vouches for.

    :meth:`RecurrentPolicyValueNet.act_batch` skips its per-row seed
    coercion for this type — the hot rollout loop re-validates the same
    generators every interval otherwise.
    """


@dataclass(frozen=True)
class BatchedPolicyStepOutput:
    """Result of one lockstep policy step over a batch of B environments.

    Row ``i`` is bit-identical to what :meth:`RecurrentPolicyValueNet.act`
    would have produced for environment ``i`` alone (given the same
    per-environment rng stream); finished environments keep their rows
    computed but consume no randomness.
    """

    actions: np.ndarray         # (B,) int
    log_probs: np.ndarray       # (B, num_actions)
    probabilities: np.ndarray   # (B, num_actions)
    values: np.ndarray          # (B,)
    hidden_states: np.ndarray   # (B, hidden_size)

    @property
    def batch_size(self) -> int:
        return int(self.actions.shape[0])


#: (registry, native counter, numpy counter, fallback gauge) — cached per
#: default registry so unpickled policies in worker processes resolve the
#: worker's own instruments, not detached copies of the parent's.
_kernel_instruments = None


def _kernel_telemetry():
    global _kernel_instruments
    registry = telemetry.registry()
    if _kernel_instruments is None or _kernel_instruments[0] is not registry:
        _kernel_instruments = (
            registry,
            registry.counter(
                "nn_kernel_dispatch_total",
                help="Inference forward passes by kernel implementation",
                kernel="native",
            ),
            registry.counter("nn_kernel_dispatch_total", kernel="numpy"),
            registry.gauge(
                "nn_native_fallback",
                help="1 when a kernel='native' policy fell back to numpy",
                aggregation="max",
            ),
        )
    return _kernel_instruments


class RecurrentPolicyValueNet(Module):
    """GRU backbone with a policy head and a value head."""

    def __init__(self, config: Optional[PolicyConfig] = None, rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config or PolicyConfig()
        rng = new_rng(rng)
        self.gru = GRUCell(
            self.config.observation_dim,
            self.config.hidden_size,
            rng=rng,
            kernel=self.config.kernel,
        )
        self.policy_head = Linear(self.config.hidden_size, self.config.num_actions, rng=rng)
        self.value_head = Linear(self.config.hidden_size, 1, rng=rng)
        self._native = None
        self._native_failed = False

    def __getstate__(self):
        # The ctypes-backed kernel wrapper cannot be pickled; it rebuilds
        # lazily on first use after unpickling (e.g. in worker shards).
        state = self.__dict__.copy()
        state["_native"] = None
        state["_native_failed"] = False
        return state

    def _native_kernel(self):
        """The fused GRU+heads kernel, or ``None`` (graceful fallback)."""
        if self._native is not None:
            return self._native
        if self._native_failed:
            return None
        from repro.nn import native

        if not native.native_available():
            self._native_failed = True
            _kernel_telemetry()[3].set(1.0)
            return None
        self._native = native.NativeGRUPolicyKernel(self)
        return self._native

    # ------------------------------------------------------------------
    # Differentiable interface (used by the A2C trainer)
    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> Tensor:
        return self.gru.initial_state(batch_size)

    def step(self, observation: Tensor, hidden: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """One recurrent step: returns (logits, value, next_hidden) as tensors."""
        if not isinstance(observation, Tensor):
            observation = Tensor(observation)
        next_hidden = self.gru(observation, hidden)
        logits = self.policy_head(next_hidden)
        value = self.value_head(next_hidden)
        return logits, value, next_hidden

    # ------------------------------------------------------------------
    # Inference interface (used by rollouts, evaluation and QBN datasets)
    # ------------------------------------------------------------------
    def forward_np(
        self, observations: np.ndarray, hiddens: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched inference forward pass on plain arrays (no autograd graph).

        ``observations`` is (B, obs_dim) and ``hiddens`` is (B, hidden);
        returns ``(logits (B, A), values (B,), next_hiddens (B, H))``.
        Every matmul goes through the batch-size-stable kernel, so each
        row is independent of how many environments share the batch.
        """
        observations = np.asarray(observations, dtype=np.float64)
        hiddens = np.asarray(hiddens, dtype=np.float64)
        if observations.ndim != 2 or observations.shape[1] != self.config.observation_dim:
            raise ShapeError(
                f"forward_np expects (B, {self.config.observation_dim}) observations, "
                f"got shape {observations.shape}"
            )
        if hiddens.shape != (observations.shape[0], self.config.hidden_size):
            raise ShapeError(
                f"forward_np expects ({observations.shape[0]}, {self.config.hidden_size}) "
                f"hiddens, got shape {hiddens.shape}"
            )
        if self.config.kernel == "native":
            native = self._native_kernel()
            if native is not None:
                _kernel_telemetry()[1].inc()
                logits, _, _, values, next_hiddens = native.forward(observations, hiddens)
                return logits, values, next_hiddens
        _kernel_telemetry()[2].inc()
        next_hiddens = self.gru.forward_np(observations, hiddens)
        if observations.shape[0] >= 2 and self.config.num_actions >= _GEMM_MIN_COLS:
            # Exactly what matmul_rows_np resolves to for this shape,
            # minus its per-call validation (hot rollout path).
            logits = next_hiddens @ self.policy_head.weight.data + self.policy_head.bias.data
        else:
            logits = matmul_rows_np(next_hiddens, self.policy_head.weight.data) + self.policy_head.bias.data
        values = (
            np.einsum("ij,jk->ik", next_hiddens, self.value_head.weight.data)
            + self.value_head.bias.data
        )[:, 0]
        return logits, values, next_hiddens

    def act(
        self,
        observation: np.ndarray,
        hidden: np.ndarray,
        rng: SeedLike = None,
        epsilon: float = 0.0,
        greedy: bool = True,
        valid_action_mask: Optional[np.ndarray] = None,
    ) -> PolicyStepOutput:
        """Run one step without building the autograd graph and pick an action.

        ``epsilon`` is the probability of replacing the chosen action with
        a uniformly random one (the paper's epsilon-greedy exploration).
        When ``greedy`` is False the action is sampled from the policy
        distribution instead of taking its argmax.
        """
        rng = new_rng(rng)
        with no_grad():
            logits, value, next_hidden = self.step(Tensor(observation), Tensor(hidden))
            log_probs = F.log_softmax(logits, axis=-1)
        log_probs_np = log_probs.numpy()
        probs = np.exp(log_probs_np)
        probs = probs / probs.sum()
        action = self._pick_action(probs, rng, epsilon, greedy)
        return PolicyStepOutput(
            action=action,
            log_probs=log_probs_np,
            probabilities=probs,
            value=float(value.numpy().reshape(-1)[0]),
            hidden_state=next_hidden.numpy(),
            valid_action_mask=valid_action_mask,
        )

    def act_batch(
        self,
        observations: np.ndarray,
        hiddens: np.ndarray,
        rngs: Union[SeedLike, Sequence[SeedLike], None] = None,
        epsilon: float = 0.0,
        greedy: bool = True,
        active: Optional[np.ndarray] = None,
    ) -> BatchedPolicyStepOutput:
        """One lockstep inference step for B environments (one GRU matmul batch).

        ``rngs`` may be a single seed/generator (consumed row by row in
        index order) or one generator per environment; per-environment
        generators are what makes a batched rollout reproduce the
        sequential per-trace rng streams exactly.  Rows where ``active``
        is False consume no randomness, report the no-op action 0, keep
        their input hidden state, and are skipped by the forward pass —
        their log-prob/probability/value rows read zero.  (Row-wise
        batch-size stability of the inference kernels is what makes the
        active-subset forward bit-identical to a full-batch one.)
        """
        observations = np.asarray(observations, dtype=np.float64)
        hiddens = np.asarray(hiddens, dtype=np.float64)
        batch = observations.shape[0]
        philox: Optional[PhiloxStreams] = None
        if isinstance(rngs, PhiloxStreams):
            # Counter-based lanes: all rows' draws materialise in one
            # vectorized call each (sample, epsilon, replacement), with
            # per-lane cursors keeping the consumption order identical
            # to the scalar row-by-row path.
            if len(rngs) != batch:
                raise ConfigurationError(
                    f"act_batch got {len(rngs)} philox lanes for a batch of {batch}"
                )
            philox = rngs
            row_rngs = None
        elif isinstance(rngs, (list, tuple)):
            if len(rngs) != batch:
                raise ConfigurationError(
                    f"act_batch got {len(rngs)} rngs for a batch of {batch}"
                )
            if type(rngs) is GeneratorList:
                row_rngs = rngs
            else:
                row_rngs = [
                    r if isinstance(r, np.random.Generator) else new_rng(r)
                    for r in rngs
                ]
        else:
            shared = new_rng(rngs)
            row_rngs = [shared] * batch

        if active is None:
            all_active = True
        else:
            active = np.asarray(active, dtype=bool)
            all_active = bool(active.all())
        if all_active:
            active_rows = None
            sub_observations, sub_hiddens = observations, hiddens
            sub_rngs = row_rngs
        else:
            active_rows = np.nonzero(active)[0]
            sub_observations = observations[active_rows]
            sub_hiddens = hiddens[active_rows]
            sub_rngs = (
                None if row_rngs is None
                else [row_rngs[i] for i in active_rows.tolist()]
            )

        if sub_observations.shape[0] == 0:
            zeros = np.zeros((batch, self.config.num_actions))
            return BatchedPolicyStepOutput(
                actions=np.zeros(batch, dtype=int),
                log_probs=zeros,
                probabilities=zeros.copy(),
                values=np.zeros(batch),
                hidden_states=np.array(hiddens),
            )

        native = self._native_kernel() if self.config.kernel == "native" else None
        if native is not None:
            # Fused C path: gate stack, heads, log-softmax and the
            # normalised probabilities in one call over packed weights.
            _kernel_telemetry()[1].inc()
            _, sub_log_probs, sub_probs, sub_values, sub_next = native.forward(
                sub_observations, sub_hiddens
            )
        else:
            sub_logits, sub_values, sub_next = self.forward_np(sub_observations, sub_hiddens)
            sub_log_probs = log_softmax_np(sub_logits, axis=-1)
            sub_probs = np.exp(sub_log_probs)
            sub_probs /= sub_probs.sum(axis=-1, keepdims=True)
        # One batched cumulative sum serves every row's inverse-CDF draw
        # (a row of the axis-1 cumsum is identical to cumsum of the row).
        cdfs = None if greedy else np.cumsum(sub_probs, axis=-1)
        if philox is not None:
            sub_actions = self._pick_actions_philox(
                philox,
                active_rows if active_rows is not None else np.arange(batch),
                sub_probs,
                cdfs,
                epsilon,
                greedy,
            )
        else:
            shared_stream = not isinstance(rngs, (list, tuple))
            if epsilon > 0.0 and not shared_stream:
                # A list may alias one generator across rows; batched draw
                # ordering would then diverge from the scalar row-by-row
                # consumption, so aliased lists take the scalar loop too.
                shared_stream = len({id(r) for r in sub_rngs}) != len(sub_rngs)
            if epsilon > 0.0 and shared_stream:
                # A single generator serving every row is consumed strictly
                # row by row (sample draw, epsilon draw, optional replacement
                # draw per row, then the next row) — the batched draw order
                # below would interleave it differently, so this path keeps
                # the scalar loop.
                sub_actions = np.zeros(len(sub_rngs), dtype=int)
                for k, rng in enumerate(sub_rngs):
                    sub_actions[k] = self._pick_action(
                        sub_probs[k], rng, epsilon, greedy,
                        cdf=None if cdfs is None else cdfs[k],
                    )
            elif greedy:
                # Row-wise argmax matches the per-row pick and no randomness
                # is consumed, so the whole batch resolves in one call.
                sub_actions = np.argmax(sub_probs, axis=1)
            else:
                # One uniform draw per active row (same order, same stream as
                # the scalar path), inverted through the batched CDFs: the
                # count of cdf entries <= draw equals searchsorted(side="right").
                draws = np.empty(len(sub_rngs))
                for k, rng in enumerate(sub_rngs):
                    draws[k] = rng.random()
                draws *= cdfs[:, -1]
                picked = (cdfs <= draws[:, None]).sum(axis=1)
                sub_actions = np.minimum(picked, self.config.num_actions - 1)
            if epsilon > 0.0 and not shared_stream:
                # Epsilon-greedy replacement, batched: each row's generator
                # draws its epsilon uniform after its (optional) sampling
                # draw — the same per-stream order as the scalar
                # ``_pick_action``, since the streams are independent — and
                # only rows whose draw fires consume the ``integers`` variate.
                sub_actions = np.asarray(sub_actions, dtype=int)
                explore_draws = np.empty(len(sub_rngs))
                for k, rng in enumerate(sub_rngs):
                    explore_draws[k] = rng.random()
                for k in np.nonzero(explore_draws < epsilon)[0].tolist():
                    sub_actions[k] = int(sub_rngs[k].integers(self.config.num_actions))

        if all_active:
            actions = np.asarray(sub_actions, dtype=int)
            log_probs, probs, values, next_hiddens = (
                sub_log_probs, sub_probs, sub_values, sub_next,
            )
        else:
            actions = np.zeros(batch, dtype=int)
            actions[active_rows] = sub_actions
            log_probs = np.zeros((batch, self.config.num_actions))
            probs = np.zeros((batch, self.config.num_actions))
            values = np.zeros(batch)
            next_hiddens = np.array(hiddens)
            log_probs[active_rows] = sub_log_probs
            probs[active_rows] = sub_probs
            values[active_rows] = sub_values
            next_hiddens[active_rows] = sub_next
        return BatchedPolicyStepOutput(
            actions=actions,
            log_probs=log_probs,
            probabilities=probs,
            values=values,
            hidden_states=next_hiddens,
        )

    def _pick_actions_philox(
        self,
        streams: PhiloxStreams,
        rows: np.ndarray,
        sub_probs: np.ndarray,
        cdfs: Optional[np.ndarray],
        epsilon: float,
        greedy: bool,
    ) -> np.ndarray:
        """Batched action selection over counter-based lanes.

        Consumes each lane's draws in exactly the scalar
        :meth:`_pick_action` order — sampling uniform (non-greedy only),
        epsilon uniform (when epsilon > 0), replacement integer on firing
        rows only — but materialises each kind of draw for all rows in
        one vectorized call.  Lanes are independent by construction, so
        the batched order is the per-stream order.
        """
        eps_draws = None
        if greedy:
            sub_actions = np.argmax(sub_probs, axis=1)
        else:
            if epsilon > 0.0:
                # The sampling uniform (cursor c) and the epsilon
                # uniform (cursor c+1) are consecutive per lane, so one
                # block call serves both — same values, same cursors as
                # two successive uniforms() calls.
                block = streams.uniforms_block(rows, 2)
                draws = block[:, 0] * cdfs[:, -1]
                eps_draws = block[:, 1]
            else:
                draws = streams.uniforms(rows) * cdfs[:, -1]
            picked = (cdfs <= draws[:, None]).sum(axis=1)
            sub_actions = np.minimum(picked, self.config.num_actions - 1)
        if epsilon > 0.0:
            if eps_draws is None:
                eps_draws = streams.uniforms(rows)
            sub_actions = np.asarray(sub_actions, dtype=int)
            firing = np.nonzero(eps_draws < epsilon)[0]
            if firing.size:
                sub_actions[firing] = streams.integers(
                    self.config.num_actions, rows[firing]
                )
        return sub_actions

    def _pick_action(
        self,
        probs: np.ndarray,
        rng: np.random.Generator,
        epsilon: float,
        greedy: bool,
        cdf: Optional[np.ndarray] = None,
    ) -> int:
        """Shared action selection so batched and scalar paths draw identically.

        Sampling uses a single uniform draw inverted through the CDF
        (cheaper than ``rng.choice`` on the hot path, and consuming
        exactly one draw per decision keeps per-environment rng streams
        easy to reason about).
        """
        if greedy:
            action = int(np.argmax(probs))
        else:
            cdf = np.cumsum(probs) if cdf is None else cdf
            draw = rng.random() * cdf[-1]
            action = min(int(np.searchsorted(cdf, draw, side="right")), self.config.num_actions - 1)
        if epsilon > 0.0 and rng.random() < epsilon:
            action = int(rng.integers(self.config.num_actions))
        return action

    def initial_hidden_np(self, batch_size: int) -> np.ndarray:
        """Fresh all-zero hidden rows for ``batch_size`` sessions.

        The plain-array counterpart of :meth:`initial_state` used by the
        serving layer, whose session tables hold hidden state as numpy
        rows rather than tensors.
        """
        return np.zeros((batch_size, self.config.hidden_size))

    def hidden_dim(self) -> int:
        return self.config.hidden_size
