"""The recurrent actor–critic network.

Architecture (paper Section 4.2): a GRU whose hidden state is fed to two
linear heads — one producing the 7 action logits, one producing the
scalar state-value estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.env.observation import OBSERVATION_DIM
from repro.errors import ConfigurationError
from repro.nn import GRUCell, Linear, Module
from repro.storage.migration import NUM_ACTIONS
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class PolicyConfig:
    """Hyper-parameters of the recurrent policy/value network."""

    observation_dim: int = OBSERVATION_DIM
    hidden_size: int = 128
    num_actions: int = NUM_ACTIONS

    def __post_init__(self) -> None:
        if self.observation_dim <= 0:
            raise ConfigurationError("observation_dim must be positive")
        if self.hidden_size <= 0:
            raise ConfigurationError("hidden_size must be positive")
        if self.num_actions <= 1:
            raise ConfigurationError("num_actions must be at least 2")


@dataclass(frozen=True)
class PolicyStepOutput:
    """Result of a single policy step (inference mode, numpy values)."""

    action: int
    log_probs: np.ndarray
    probabilities: np.ndarray
    value: float
    hidden_state: np.ndarray


class RecurrentPolicyValueNet(Module):
    """GRU backbone with a policy head and a value head."""

    def __init__(self, config: Optional[PolicyConfig] = None, rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config or PolicyConfig()
        rng = new_rng(rng)
        self.gru = GRUCell(self.config.observation_dim, self.config.hidden_size, rng=rng)
        self.policy_head = Linear(self.config.hidden_size, self.config.num_actions, rng=rng)
        self.value_head = Linear(self.config.hidden_size, 1, rng=rng)

    # ------------------------------------------------------------------
    # Differentiable interface (used by the A2C trainer)
    # ------------------------------------------------------------------
    def initial_state(self) -> Tensor:
        return self.gru.initial_state()

    def step(self, observation: Tensor, hidden: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """One recurrent step: returns (logits, value, next_hidden) as tensors."""
        if not isinstance(observation, Tensor):
            observation = Tensor(observation)
        next_hidden = self.gru(observation, hidden)
        logits = self.policy_head(next_hidden)
        value = self.value_head(next_hidden)
        return logits, value, next_hidden

    # ------------------------------------------------------------------
    # Inference interface (used by rollouts, evaluation and QBN datasets)
    # ------------------------------------------------------------------
    def act(
        self,
        observation: np.ndarray,
        hidden: np.ndarray,
        rng: SeedLike = None,
        epsilon: float = 0.0,
        greedy: bool = True,
    ) -> PolicyStepOutput:
        """Run one step without building the autograd graph and pick an action.

        ``epsilon`` is the probability of replacing the chosen action with
        a uniformly random one (the paper's epsilon-greedy exploration).
        When ``greedy`` is False the action is sampled from the policy
        distribution instead of taking its argmax.
        """
        rng = new_rng(rng)
        with no_grad():
            logits, value, next_hidden = self.step(Tensor(observation), Tensor(hidden))
            log_probs = F.log_softmax(logits, axis=-1)
        log_probs_np = log_probs.numpy()
        probs = np.exp(log_probs_np)
        probs = probs / probs.sum()
        if greedy:
            action = int(np.argmax(probs))
        else:
            action = int(rng.choice(self.config.num_actions, p=probs))
        if epsilon > 0.0 and rng.random() < epsilon:
            action = int(rng.integers(self.config.num_actions))
        return PolicyStepOutput(
            action=action,
            log_probs=log_probs_np,
            probabilities=probs,
            value=float(value.numpy().reshape(-1)[0]),
            hidden_state=next_hidden.numpy(),
        )

    def hidden_dim(self) -> int:
        return self.config.hidden_size
