"""Multi-process trajectory collection sharded over worker processes.

:class:`ParallelRolloutCollector` farms episode shards out to worker
processes.  Each worker rebuilds the policy from its weights, runs a
:class:`~repro.env.vector_env.VectorStorageAllocationEnv` +
:class:`~repro.drl.rollout.BatchedRolloutCollector` over a deterministic
slice of :func:`~repro.drl.rollout.derive_episode_streams`, and ships the
resulting :class:`~repro.drl.rollout.Trajectory` objects back.  Because
every episode's rng streams are derived from ``(base_seed, episode
index)`` regardless of which worker runs it, the merged result is
bit-identical to collecting all episodes sequentially (or in one lockstep
batch) with the same ``base_seed`` — sharding only changes wall-clock,
never semantics.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import (
    BatchedRolloutCollector,
    Trajectory,
    derive_episode_streams,
)
from repro.env.reward import RewardConfig
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import TrainingError
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import PhiloxStreams


def shard_indices(count: int, num_shards: int) -> List[List[int]]:
    """Split ``range(count)`` into at most ``num_shards`` contiguous slices.

    Shards are balanced to within one episode, ordered, and never empty,
    so concatenating the shards reproduces the original episode order.
    """
    if count <= 0:
        raise TrainingError(f"count must be positive, got {count}")
    if num_shards <= 0:
        raise TrainingError(f"num_shards must be positive, got {num_shards}")
    num_shards = min(num_shards, count)
    base, extra = divmod(count, num_shards)
    shards: List[List[int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


@dataclass(frozen=True)
class _ShardJob:
    """Everything one worker needs to collect its slice of episodes."""

    shard_id: int
    indices: Tuple[int, ...]
    traces: Tuple[WorkloadTrace, ...]
    policy_config: PolicyConfig
    policy_state: dict
    system_config: StorageSystemConfig
    reward_config: Optional[RewardConfig]
    base_seed: int
    total_episodes: int
    epsilon: float
    greedy: bool
    rng_family: str = "legacy"


def _collect_shard(job: _ShardJob):
    """Worker entry point: collect one shard's episodes in lockstep.

    Returns ``(shard_id, trajectories, None)`` on success and
    ``(shard_id, None, formatted traceback)`` on failure so the parent
    can attribute errors to a shard without losing the stack.
    """
    try:
        policy = RecurrentPolicyValueNet(job.policy_config)
        policy.load_state_dict(job.policy_state)
        episode_rngs, action_rngs = derive_episode_streams(
            job.base_seed, job.total_episodes, job.rng_family
        )
        indices = list(job.indices)
        if isinstance(episode_rngs, PhiloxStreams):
            # Lane selection keeps global episode ids, so a shard's
            # streams are identical to the full batch's lanes.
            episode_shard = episode_rngs.select(indices)
            action_shard = action_rngs.select(indices)
        else:
            episode_shard = [episode_rngs[i] for i in indices]
            action_shard = [action_rngs[i] for i in indices]
        vector_env = VectorStorageAllocationEnv(job.system_config, job.reward_config)
        collector = BatchedRolloutCollector(vector_env)
        trajectories = collector.collect_batch(
            policy,
            list(job.traces),
            epsilon=job.epsilon,
            greedy=job.greedy,
            episode_rngs=episode_shard,
            action_rngs=action_shard,
        )
        return job.shard_id, trajectories, None
    except Exception:  # pragma: no cover - exercised via the failure test
        return job.shard_id, None, traceback.format_exc()


class ParallelRolloutCollector:
    """Collects N trajectories by sharding episodes across processes.

    The determinism contract mirrors the batched collector's: episode
    ``i`` always consumes streams ``derive_episode_streams(base_seed,
    N)[i]``, so for a fixed ``base_seed`` the merged trajectory list is
    bit-identical whether it was collected sequentially, in one lockstep
    batch, or across any number of worker processes.

    ``num_workers <= 1`` degrades to running the shards in-process (no
    multiprocessing import-time or pickling cost), which keeps the class
    usable as a drop-in collector on single-core machines.

    ``persistent=True`` backs the collector with a
    :class:`~repro.drl.worker_pool.PersistentWorkerPool`: workers live
    across ``collect`` calls, keep their simulator stack and policy
    weights resident, and receive only weight deltas + shard descriptors
    per epoch — same results, far less per-epoch pickling.  The pool is
    created lazily on first use; close it with :meth:`close` or use the
    collector as a context manager.
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        persistent: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise TrainingError(f"num_workers must be positive, got {num_workers}")
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.reward_config = reward_config
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self.persistent = bool(persistent)
        self._pool = None

    # ------------------------------------------------------------------
    # Persistent-pool lifecycle
    # ------------------------------------------------------------------
    def _persistent_pool(self):
        if self._pool is None:
            from repro.drl.worker_pool import PersistentWorkerPool

            self._pool = PersistentWorkerPool(
                self.system_config,
                self.reward_config,
                num_workers=self.num_workers,
                start_method=self.start_method,
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (no-op without one)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelRolloutCollector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _make_jobs(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        base_seed: int,
        epsilon: float,
        greedy: bool,
        rng_family: str,
    ) -> List[_ShardJob]:
        total = len(traces)
        state = policy.state_dict()
        jobs = []
        for shard_id, indices in enumerate(shard_indices(total, self.num_workers)):
            jobs.append(
                _ShardJob(
                    shard_id=shard_id,
                    indices=tuple(indices),
                    traces=tuple(traces[i] for i in indices),
                    policy_config=policy.config,
                    policy_state=state,
                    system_config=self.system_config,
                    reward_config=self.reward_config,
                    base_seed=int(base_seed),
                    total_episodes=total,
                    epsilon=float(epsilon),
                    greedy=bool(greedy),
                    rng_family=str(rng_family),
                )
            )
        return jobs

    def collect(
        self,
        policy: RecurrentPolicyValueNet,
        traces: Sequence[WorkloadTrace],
        base_seed: int,
        epsilon: float = 0.0,
        greedy: bool = False,
        rng_family: str = "legacy",
    ) -> List[Trajectory]:
        """Collect one trajectory per trace, sharded across workers.

        The result is ordered like ``traces`` and bit-identical to::

            episode_rngs, action_rngs = derive_episode_streams(base_seed, len(traces))
            BatchedRolloutCollector(...).collect_batch(
                policy, traces, episode_rngs=episode_rngs, action_rngs=action_rngs)

        An empty trace list yields an empty result (no worker shards are
        created), and fewer episodes than workers shrinks the shard
        count — shards are never empty, so the merge cannot be skewed by
        zero-episode workers.
        """
        traces = list(traces)
        if not traces:
            return []

        # Daemonic workers (e.g. a SweepRunner job process) cannot spawn
        # child processes; shard in-process there — identical results,
        # since the worker layout never affects the rng streams.
        in_daemonic_worker = multiprocessing.current_process().daemon
        if self.persistent and self.num_workers > 1 and not in_daemonic_worker:
            return self._persistent_pool().collect(
                policy,
                traces,
                base_seed=base_seed,
                epsilon=epsilon,
                greedy=greedy,
                rng_family=rng_family,
            )
        jobs = self._make_jobs(policy, traces, base_seed, epsilon, greedy, rng_family)
        if len(jobs) == 1 or self.num_workers == 1 or in_daemonic_worker:
            outcomes = [_collect_shard(job) for job in jobs]
        else:
            context = multiprocessing.get_context(self.start_method)
            with context.Pool(processes=min(self.num_workers, len(jobs))) as pool:
                outcomes = pool.map(_collect_shard, jobs)

        merged: List[Optional[Trajectory]] = [None] * len(traces)
        for job, (shard_id, trajectories, error) in zip(jobs, outcomes):
            if error is not None:
                raise TrainingError(
                    f"rollout shard {shard_id} (episodes {list(job.indices)}) "
                    f"failed:\n{error}"
                )
            if len(trajectories) != len(job.indices):
                raise TrainingError(
                    f"rollout shard {shard_id} returned {len(trajectories)} "
                    f"trajectories for {len(job.indices)} episodes"
                )
            for index, trajectory in zip(job.indices, trajectories):
                merged[index] = trajectory
        missing = [i for i, trajectory in enumerate(merged) if trajectory is None]
        if missing:
            raise TrainingError(f"episodes {missing} were not covered by any shard")
        return list(merged)
