"""Saving and loading trained policies."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.errors import SerializationError
from repro.utils.serialization import load_npz, save_npz

PathLike = Union[str, Path]
_CONFIG_KEYS = ("observation_dim", "hidden_size", "num_actions")


def save_policy(path: PathLike, policy: RecurrentPolicyValueNet) -> None:
    """Persist a policy's configuration and weights to an ``.npz`` file."""
    arrays = {f"param/{name}": value for name, value in policy.state_dict().items()}
    arrays["config"] = np.array(
        [policy.config.observation_dim, policy.config.hidden_size, policy.config.num_actions],
        dtype=np.int64,
    )
    save_npz(path, arrays)


def load_policy(path: PathLike) -> RecurrentPolicyValueNet:
    """Load a policy written by :func:`save_policy`."""
    arrays = load_npz(path)
    if "config" not in arrays:
        raise SerializationError(f"{path} does not contain a policy checkpoint")
    config_values = arrays["config"].astype(int)
    config = PolicyConfig(**dict(zip(_CONFIG_KEYS, map(int, config_values))))
    policy = RecurrentPolicyValueNet(config)
    state = {
        name[len("param/"):]: value
        for name, value in arrays.items()
        if name.startswith("param/")
    }
    policy.load_state_dict(state)
    return policy
