"""Recurrent deep-reinforcement-learning components (GRU-based A2C).

Implements the paper's DRL setup (Sections 3.1 and 4.2): a GRU with 128
hidden nodes feeding a 7-way policy head and a scalar value head,
trained with the Advantage Actor-Critic loss, Adam (lr 3e-4), gradient
norm clipping at 2.0 and epsilon-greedy exploration (epsilon = 0.1), plus
the curriculum-learning procedure of Section 3.2.2 (pre-train on
standard traces, fine-tune on scarce real traces).
"""

from repro.drl.policy import (
    BatchedPolicyStepOutput,
    PolicyConfig,
    PolicyStepOutput,
    RecurrentPolicyValueNet,
)
from repro.drl.agent import DRLPolicyAgent
from repro.drl.rollout import (
    BatchedRolloutCollector,
    RolloutCollector,
    Trajectory,
    TrajectoryBatch,
    Transition,
    derive_episode_streams,
)
from repro.drl.parallel import ParallelRolloutCollector, shard_indices
from repro.drl.worker_pool import PersistentWorkerPool
from repro.drl.a2c import A2CConfig, A2CTrainer, EpochRecord, TrainingHistory
from repro.drl.curriculum import CurriculumConfig, CurriculumTrainer
from repro.drl.exploration import EpsilonSchedule
from repro.drl.checkpoints import save_policy, load_policy

__all__ = [
    "PolicyConfig",
    "RecurrentPolicyValueNet",
    "PolicyStepOutput",
    "BatchedPolicyStepOutput",
    "DRLPolicyAgent",
    "Transition",
    "Trajectory",
    "TrajectoryBatch",
    "RolloutCollector",
    "BatchedRolloutCollector",
    "ParallelRolloutCollector",
    "shard_indices",
    "derive_episode_streams",
    "A2CConfig",
    "A2CTrainer",
    "EpochRecord",
    "TrainingHistory",
    "CurriculumConfig",
    "CurriculumTrainer",
    "EpsilonSchedule",
    "save_policy",
    "load_policy",
]
