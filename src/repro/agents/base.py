"""Common interface implemented by every controller (baseline, DRL or FSM)."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.env.observation import Observation
from repro.storage.migration import MigrationAction


class Agent(ABC):
    """A controller that maps observations to migration actions.

    Agents may keep internal state across a trajectory (the recurrent
    DRL policy and the extracted FSM both do); ``reset`` is called at the
    start of every episode.
    """

    name: str = "agent"

    # The batched evaluation engine may run an agent through
    # per-session shallow copies (one replica per lockstep slot, see
    # :class:`repro.engine.backends.AgentBatchBackend`).  That lift is
    # faithful only when ``act`` is deterministic and every piece of
    # per-episode state is *rebound* (not mutated in place) by
    # ``reset``; agents that draw from a shared rng or mutate shared
    # containers must set this to False so routing falls back to the
    # sequential reference path.
    engine_safe: bool = True

    def reset(self) -> None:
        """Clear per-episode state.  Stateless agents need not override."""

    @abstractmethod
    def act(self, observation: Observation) -> MigrationAction:
        """Choose the migration action for the upcoming interval."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
