"""Common interface implemented by every controller (baseline, DRL or FSM)."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.env.observation import Observation
from repro.storage.migration import MigrationAction


class Agent(ABC):
    """A controller that maps observations to migration actions.

    Agents may keep internal state across a trajectory (the recurrent
    DRL policy and the extracted FSM both do); ``reset`` is called at the
    start of every episode.
    """

    name: str = "agent"

    def reset(self) -> None:
        """Clear per-episode state.  Stateless agents need not override."""

    @abstractmethod
    def act(self, observation: Observation) -> MigrationAction:
        """Choose the migration action for the upcoming interval."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
