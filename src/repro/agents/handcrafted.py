"""The domain experts' handcrafted FSM baseline.

Paper Section 4.3.2: "the principle of handcrafted FSM is migrating CPU
cores from the level with the lowest CPU utilization rate to the one
with the highest CPU utilization rate."  The expert controller also has
guard rails a production strategy needs: it only migrates when the
utilisation gap is meaningful, it respects the minimum core count per
level, and it enforces a hold-off after each migration so it does not
thrash (these correspond to the "sanity checks" the paper says white-box
strategies must pass).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import Agent
from repro.env.observation import Observation
from repro.errors import ConfigurationError
from repro.storage.levels import LEVELS
from repro.storage.migration import MigrationAction, action_from_levels


class HandcraftedFSMPolicy(Agent):
    """Two-state expert FSM: Stable <-> Rebalance.

    * **Stable** — utilisation is balanced (max-min gap below
      ``gap_threshold``) or a recent migration is still settling; emit
      no-op.
    * **Rebalance** — the gap is large; migrate one core from the
      lowest-utilisation level to the highest-utilisation level, then
      hold off for ``cooldown`` intervals.
    """

    name = "handcrafted_fsm"

    def __init__(
        self,
        gap_threshold: float = 0.15,
        cooldown: int = 2,
        min_cores_per_level: int = 1,
    ) -> None:
        if not 0.0 <= gap_threshold <= 1.0:
            raise ConfigurationError(
                f"gap_threshold must be in [0, 1], got {gap_threshold}"
            )
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be non-negative, got {cooldown}")
        if min_cores_per_level < 0:
            raise ConfigurationError(
                f"min_cores_per_level must be non-negative, got {min_cores_per_level}"
            )
        self.gap_threshold = gap_threshold
        self.cooldown = cooldown
        self.min_cores_per_level = min_cores_per_level
        self._remaining_cooldown = 0

    def reset(self) -> None:
        self._remaining_cooldown = 0

    @property
    def state(self) -> str:
        """Current FSM state name (``"stable"`` or ``"rebalance"``)."""
        return "stable" if self._remaining_cooldown > 0 else "rebalance-ready"

    def act(self, observation: Observation) -> MigrationAction:
        if self._remaining_cooldown > 0:
            self._remaining_cooldown -= 1
            return MigrationAction.NOOP

        utilization = np.asarray(observation.utilization, dtype=float)
        counts = np.asarray(observation.core_counts, dtype=float)
        order = np.argsort(utilization)
        lowest, highest = int(order[0]), int(order[-1])
        gap = float(utilization[highest] - utilization[lowest])
        if lowest == highest or gap < self.gap_threshold:
            return MigrationAction.NOOP
        # Respect the minimum-cores constraint: find the least-utilised
        # level that can still give up a core.
        source_index = None
        for candidate in order:
            if int(counts[candidate]) > self.min_cores_per_level and int(candidate) != highest:
                source_index = int(candidate)
                break
        if source_index is None:
            return MigrationAction.NOOP
        if utilization[highest] - utilization[source_index] < self.gap_threshold:
            return MigrationAction.NOOP

        self._remaining_cooldown = self.cooldown
        return action_from_levels(LEVELS[source_index], LEVELS[highest])
