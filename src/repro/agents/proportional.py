"""Anticipatory proportional-allocation heuristic.

A stronger expert baseline than the utilisation-gap FSM: instead of
waiting for a utilisation imbalance to appear, it computes the per-level
work implied by the *current workload descriptor* (the S/I/Q vectors in
the observation plus the configured write/cache-miss cost factors) and
migrates one core per interval towards the allocation proportional to
that demand.  It reacts immediately to workload-mix changes and never
migrates when the current allocation is already within one core of the
target, which avoids thrash.

This controller is used as (a) an additional baseline in ablation
benchmarks and (b) the optional behaviour-cloning teacher that warm
starts the DRL policy when the training budget is very small.
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import Agent
from repro.env.observation import Observation
from repro.errors import ConfigurationError
from repro.storage.levels import LEVELS
from repro.storage.migration import MigrationAction, action_from_levels
from repro.storage.simulator import StorageSystemConfig


class ProportionalAllocationPolicy(Agent):
    """Migrate towards core counts proportional to the predicted per-level demand."""

    name = "proportional_allocation"

    def __init__(
        self,
        system_config: StorageSystemConfig | None = None,
        deadband_cores: float = 0.75,
        utilization_guard: float = 0.05,
    ) -> None:
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        if deadband_cores < 0:
            raise ConfigurationError("deadband_cores must be non-negative")
        if not 0.0 <= utilization_guard <= 1.0:
            raise ConfigurationError("utilization_guard must be in [0, 1]")
        self.deadband_cores = float(deadband_cores)
        self.utilization_guard = float(utilization_guard)

    # ------------------------------------------------------------------
    # Demand model
    # ------------------------------------------------------------------
    def predicted_demand(self, observation: Observation) -> np.ndarray:
        """Per-level demand (KB) implied by the observation's workload descriptor."""
        cfg = self.system_config
        read_kb = observation.read_intensity_kb()
        write_kb = observation.write_intensity_kb()
        missed_read_kb = read_kb * cfg.cache_miss_rate
        normal = read_kb + write_kb
        kv = write_kb * cfg.kv_write_factor + missed_read_kb * cfg.kv_read_miss_factor
        rv = write_kb * cfg.rv_write_factor + missed_read_kb * cfg.rv_read_miss_factor
        return np.array([normal, kv, rv], dtype=float)

    def target_allocation(self, observation: Observation) -> np.ndarray:
        """Fractional core counts proportional to predicted demand."""
        demand = self.predicted_demand(observation)
        total_cores = float(self.system_config.total_cores)
        min_cores = float(self.system_config.min_cores_per_level)
        if demand.sum() <= 0:
            return np.asarray(observation.core_counts, dtype=float)
        share = demand / demand.sum()
        target = min_cores + share * (total_cores - 3.0 * min_cores)
        return target

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def act(self, observation: Observation) -> MigrationAction:
        counts = np.asarray(observation.core_counts, dtype=float)
        target = self.target_allocation(observation)
        deficit = target - counts

        # Largest shortfall is the destination; largest surplus the source.
        destination = int(np.argmax(deficit))
        source = int(np.argmin(deficit))
        if destination == source:
            return MigrationAction.NOOP
        if deficit[destination] < self.deadband_cores or -deficit[source] < self.deadband_cores:
            return MigrationAction.NOOP
        if counts[source] <= self.system_config.min_cores_per_level:
            return MigrationAction.NOOP
        # Do not take cores away from a level that is itself saturated.
        utilization = np.asarray(observation.utilization, dtype=float)
        if utilization[source] >= 1.0 - self.utilization_guard and (
            utilization[source] >= utilization[destination]
        ):
            return MigrationAction.NOOP
        return action_from_levels(LEVELS[source], LEVELS[destination])
