"""Greedy utilisation-gap controller (no cooldown, no threshold).

An aggressive variant of the handcrafted strategy used as an additional
baseline and in ablations: it migrates every interval towards the level
with the highest utilisation, which demonstrates why the experts added
a threshold and cooldown (migration penalties make unconditional
rebalancing counter-productive).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import Agent
from repro.env.observation import Observation
from repro.storage.levels import LEVELS
from repro.storage.migration import MigrationAction, action_from_levels


class GreedyUtilizationPolicy(Agent):
    """Always move a core from the least to the most utilised level."""

    name = "greedy_utilization"

    def __init__(self, min_cores_per_level: int = 1) -> None:
        self.min_cores_per_level = min_cores_per_level

    def act(self, observation: Observation) -> MigrationAction:
        utilization = np.asarray(observation.utilization, dtype=float)
        counts = np.asarray(observation.core_counts, dtype=float)
        order = np.argsort(utilization)
        highest = int(order[-1])
        for candidate in order:
            candidate = int(candidate)
            if candidate == highest:
                continue
            if counts[candidate] > self.min_cores_per_level:
                if utilization[highest] > utilization[candidate]:
                    return action_from_levels(LEVELS[candidate], LEVELS[highest])
                break
        return MigrationAction.NOOP
