"""Baseline control policies for the core-allocation problem.

The paper compares four controllers (Figure 4):

* the production **default** setting — never migrate cores;
* a **handcrafted FSM** designed by domain experts — migrate a core from
  the level with the lowest CPU utilisation to the level with the
  highest;
* the **GRU-based DRL** policy (in :mod:`repro.drl`);
* the **extracted FSM** (in :mod:`repro.fsm`).

This package provides the first two plus auxiliary baselines (random and
a greedy utilisation-gap controller) behind a common :class:`Agent`
protocol so the evaluation harness can treat them uniformly.
"""

from repro.agents.base import Agent
from repro.agents.default import DefaultPolicy
from repro.agents.random_agent import RandomPolicy
from repro.agents.handcrafted import HandcraftedFSMPolicy
from repro.agents.greedy import GreedyUtilizationPolicy

__all__ = [
    "Agent",
    "DefaultPolicy",
    "RandomPolicy",
    "HandcraftedFSMPolicy",
    "GreedyUtilizationPolicy",
]
