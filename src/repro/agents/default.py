"""The production default setting: never migrate cores."""

from __future__ import annotations

from repro.agents.base import Agent
from repro.env.observation import Observation
from repro.storage.migration import MigrationAction


class DefaultPolicy(Agent):
    """Keeps the initial static allocation for the whole episode.

    This is the paper's "Default" baseline: "The default setting refers
    to no CPU migration during testing" (Section 4.3.2).
    """

    name = "default"

    def act(self, observation: Observation) -> MigrationAction:
        return MigrationAction.NOOP
