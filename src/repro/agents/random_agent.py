"""Uniformly random controller (sanity-check baseline)."""

from __future__ import annotations

from repro.agents.base import Agent
from repro.env.observation import Observation
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.utils.rng import SeedLike, new_rng


class RandomPolicy(Agent):
    """Chooses one of the seven actions uniformly at random each interval."""

    name = "random"
    # Draws from a shared generator whose consumption order depends on
    # evaluation order — not reproducible through per-slot replicas.
    engine_safe = False

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = new_rng(rng)

    def act(self, observation: Observation) -> MigrationAction:
        return MigrationAction(int(self._rng.integers(NUM_ACTIONS)))
