"""Recurrent layers: a gated recurrent unit cell and a sequence wrapper.

The paper uses a GRU with 128 hidden nodes as the recurrent backbone of
the actor–critic network (Section 4.2).  The cell follows the standard
formulation:

    r_t = sigmoid(x_t W_xr + h_{t-1} W_hr + b_r)
    z_t = sigmoid(x_t W_xz + h_{t-1} W_hz + b_z)
    n_t = tanh   (x_t W_xn + r_t * (h_{t-1} W_hn) + b_n)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.functional import _GEMM_MIN_COLS, matmul_rows_np
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class GRUCell(Module):
    """Single-step gated recurrent unit."""

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ShapeError(
                f"GRUCell requires positive sizes, got input={input_size}, hidden={hidden_size}"
            )
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

        def input_weight() -> Parameter:
            return Parameter(init.xavier_uniform((input_size, hidden_size), rng))

        def hidden_weight() -> Parameter:
            return Parameter(init.orthogonal((hidden_size, hidden_size), rng=rng))

        self.w_xr = input_weight()
        self.w_hr = hidden_weight()
        self.b_r = Parameter(np.zeros(hidden_size))
        self.w_xz = input_weight()
        self.w_hz = hidden_weight()
        self.b_z = Parameter(np.zeros(hidden_size))
        self.w_xn = input_weight()
        self.w_hn = hidden_weight()
        self.b_n = Parameter(np.zeros(hidden_size))

    def initial_state(self, batch_size: Optional[int] = None) -> Tensor:
        """Return an all-zero hidden state (shape (H,) or (B, H))."""
        if batch_size is None:
            return Tensor(np.zeros(self.hidden_size))
        return Tensor(np.zeros((batch_size, self.hidden_size)))

    def forward(self, x: Tensor, h: Optional[Tensor] = None) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.shape[-1] != self.input_size:
            raise ShapeError(
                f"GRUCell expected input dim {self.input_size}, got shape {x.shape}"
            )
        if h is None:
            h = self.initial_state(None if x.ndim == 1 else x.shape[0])
        elif not isinstance(h, Tensor):
            h = Tensor(h)
        if h.shape[-1] != self.hidden_size:
            raise ShapeError(
                f"GRUCell expected hidden dim {self.hidden_size}, got shape {h.shape}"
            )

        reset = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        update = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        candidate = (x @ self.w_xn + reset * (h @ self.w_hn) + self.b_n).tanh()
        return (1.0 - update) * candidate + update * h

    def forward_np(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Inference-only batched step on plain arrays (no autograd graph).

        ``x`` is (B, input_size) and ``h`` is (B, hidden_size); returns the
        next hidden state (B, hidden_size).  All matmuls go through the
        batch-size-stable kernel, so row ``i`` of the result is
        bit-identical no matter how many other sequences share the batch —
        the invariant that makes vectorized rollouts reproduce sequential
        ones exactly.
        """
        if x.ndim != 2 or h.ndim != 2:
            raise ShapeError(
                f"forward_np expects (B, D) input and (B, H) hidden, got {x.shape} / {h.shape}"
            )
        if x.shape[0] >= 2 and self.hidden_size >= _GEMM_MIN_COLS:
            # Buffered in-place variant of the expression below: same
            # operations on the same operands in the same order (gemm for
            # M >= 2 and N >= _GEMM_MIN_COLS is exactly what
            # matmul_rows_np resolves to), with the gate intermediates
            # reused across calls.  Only the returned hidden state is
            # freshly allocated — it escapes to callers.
            return self._forward_np_buffered(x, h)
        pre_r = matmul_rows_np(x, self.w_xr.data) + matmul_rows_np(h, self.w_hr.data) + self.b_r.data
        pre_z = matmul_rows_np(x, self.w_xz.data) + matmul_rows_np(h, self.w_hz.data) + self.b_z.data
        reset = 1.0 / (1.0 + np.exp(-pre_r))
        update = 1.0 / (1.0 + np.exp(-pre_z))
        pre_n = matmul_rows_np(x, self.w_xn.data) + reset * matmul_rows_np(h, self.w_hn.data) + self.b_n.data
        candidate = np.tanh(pre_n)
        return (1.0 - update) * candidate + update * h

    def _forward_np_buffered(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Hot-path GRU step: identical arithmetic, reused gate buffers."""
        batch = x.shape[0]
        buffers = getattr(self, "_np_gate_buffers", None)
        if buffers is None or buffers[0].shape[0] != batch:
            buffers = tuple(
                np.empty((batch, self.hidden_size)) for _ in range(4)
            )
            self._np_gate_buffers = buffers
        gate, carry, blend, scratch = buffers

        # reset gate -> `gate`
        np.matmul(x, self.w_xr.data, out=gate)
        np.matmul(h, self.w_hr.data, out=scratch)
        gate += scratch
        gate += self.b_r.data
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # candidate pre-activation -> `carry` (needs the reset gate)
        np.matmul(h, self.w_hn.data, out=carry)
        carry *= gate
        np.matmul(x, self.w_xn.data, out=scratch)
        scratch += carry
        scratch += self.b_n.data
        np.tanh(scratch, out=scratch)
        # update gate -> `gate` (reset no longer needed)
        np.matmul(x, self.w_xz.data, out=gate)
        np.matmul(h, self.w_hz.data, out=carry)
        gate += carry
        gate += self.b_z.data
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # blend: (1 - z) * n + z * h, freshly allocated result
        np.subtract(1.0, gate, out=blend)
        blend *= scratch
        gate *= h
        return blend + gate


class GRU(Module):
    """Unrolls a :class:`GRUCell` over a sequence.

    Input shape is (T, input_size) for a single sequence or
    (T, B, input_size) for a batch of sequences; the output is the stack
    of hidden states with matching leading dimensions.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def initial_state(self, batch_size: Optional[int] = None) -> Tensor:
        return self.cell.initial_state(batch_size)

    def forward(
        self, sequence: Tensor, h0: Optional[Tensor] = None
    ) -> Tuple[Tensor, Tensor]:
        """Return (all hidden states stacked over time, final hidden state)."""
        if not isinstance(sequence, Tensor):
            sequence = Tensor(sequence)
        if sequence.ndim not in (2, 3):
            raise ShapeError(
                f"GRU expects (T, D) or (T, B, D) input, got shape {sequence.shape}"
            )
        steps = sequence.shape[0]
        batch = sequence.shape[1] if sequence.ndim == 3 else None
        h = h0 if h0 is not None else self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            h = self.cell(sequence[t], h)
            outputs.append(h)
        stacked = Tensor.stack(outputs, axis=0)
        return stacked, h
