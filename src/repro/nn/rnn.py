"""Recurrent layers: a gated recurrent unit cell and a sequence wrapper.

The paper uses a GRU with 128 hidden nodes as the recurrent backbone of
the actor–critic network (Section 4.2).  The cell follows the standard
formulation:

    r_t = sigmoid(x_t W_xr + h_{t-1} W_hr + b_r)
    z_t = sigmoid(x_t W_xz + h_{t-1} W_hz + b_z)
    n_t = tanh   (x_t W_xn + r_t * (h_{t-1} W_hn) + b_n)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.functional import _GEMM_MIN_COLS, matmul_rows_np
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class GRUCell(Module):
    """Single-step gated recurrent unit.

    ``kernel`` selects the inference implementation of
    :meth:`forward_np`: ``"numpy"`` (default, bit-compatible with the
    pinned golden traces) or ``"native"`` (the fused C micro-kernel —
    allclose-level agreement, compiled at first use, silently falling
    back to numpy when no compiler is available).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: SeedLike = None,
        kernel: str = "numpy",
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ShapeError(
                f"GRUCell requires positive sizes, got input={input_size}, hidden={hidden_size}"
            )
        if kernel not in ("numpy", "native"):
            raise ShapeError(f"unknown GRU kernel {kernel!r}")
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.kernel = kernel
        self._native = None
        self._native_failed = False
        self._np_packed = None

        def input_weight() -> Parameter:
            return Parameter(init.xavier_uniform((input_size, hidden_size), rng))

        def hidden_weight() -> Parameter:
            return Parameter(init.orthogonal((hidden_size, hidden_size), rng=rng))

        self.w_xr = input_weight()
        self.w_hr = hidden_weight()
        self.b_r = Parameter(np.zeros(hidden_size))
        self.w_xz = input_weight()
        self.w_hz = hidden_weight()
        self.b_z = Parameter(np.zeros(hidden_size))
        self.w_xn = input_weight()
        self.w_hn = hidden_weight()
        self.b_n = Parameter(np.zeros(hidden_size))

    def initial_state(self, batch_size: Optional[int] = None) -> Tensor:
        """Return an all-zero hidden state (shape (H,) or (B, H))."""
        if batch_size is None:
            return Tensor(np.zeros(self.hidden_size))
        return Tensor(np.zeros((batch_size, self.hidden_size)))

    def forward(self, x: Tensor, h: Optional[Tensor] = None) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.shape[-1] != self.input_size:
            raise ShapeError(
                f"GRUCell expected input dim {self.input_size}, got shape {x.shape}"
            )
        if h is None:
            h = self.initial_state(None if x.ndim == 1 else x.shape[0])
        elif not isinstance(h, Tensor):
            h = Tensor(h)
        if h.shape[-1] != self.hidden_size:
            raise ShapeError(
                f"GRUCell expected hidden dim {self.hidden_size}, got shape {h.shape}"
            )

        reset = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        update = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        candidate = (x @ self.w_xn + reset * (h @ self.w_hn) + self.b_n).tanh()
        return (1.0 - update) * candidate + update * h

    def forward_np(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Inference-only batched step on plain arrays (no autograd graph).

        ``x`` is (B, input_size) and ``h`` is (B, hidden_size); returns the
        next hidden state (B, hidden_size).  All matmuls go through the
        batch-size-stable kernel, so row ``i`` of the result is
        bit-identical no matter how many other sequences share the batch —
        the invariant that makes vectorized rollouts reproduce sequential
        ones exactly.
        """
        if x.ndim != 2 or h.ndim != 2:
            raise ShapeError(
                f"forward_np expects (B, D) input and (B, H) hidden, got {x.shape} / {h.shape}"
            )
        if self.kernel == "native":
            native = self._native_kernel()
            if native is not None:
                return native.forward(
                    np.asarray(x, dtype=np.float64), np.asarray(h, dtype=np.float64)
                )
        if x.shape[0] >= 2 and self.hidden_size >= _GEMM_MIN_COLS:
            packed = self._packed_np_weights()
            if packed.use_packed_for(self, x.shape[0]):
                # Two wide gemms instead of six narrow ones, same
                # elementwise gate ops in the same order — bitwise equal
                # to the buffered path wherever the probe confirmed the
                # concatenated-gemm column blocks match the separate
                # gemms for this batch size on this BLAS build (and
                # measurably faster, per the one-off timing race).
                return self._forward_np_packed(x, h, packed)
            # Buffered in-place variant of the expression below: same
            # operations on the same operands in the same order (gemm for
            # M >= 2 and N >= _GEMM_MIN_COLS is exactly what
            # matmul_rows_np resolves to), with the gate intermediates
            # reused across calls.  Only the returned hidden state is
            # freshly allocated — it escapes to callers.
            return self._forward_np_buffered(x, h, packed)
        pre_r = matmul_rows_np(x, self.w_xr.data) + matmul_rows_np(h, self.w_hr.data) + self.b_r.data
        pre_z = matmul_rows_np(x, self.w_xz.data) + matmul_rows_np(h, self.w_hz.data) + self.b_z.data
        reset = 1.0 / (1.0 + np.exp(-pre_r))
        update = 1.0 / (1.0 + np.exp(-pre_z))
        pre_n = matmul_rows_np(x, self.w_xn.data) + reset * matmul_rows_np(h, self.w_hn.data) + self.b_n.data
        candidate = np.tanh(pre_n)
        return (1.0 - update) * candidate + update * h

    def __getstate__(self):
        # ctypes handles and shape-keyed buffers don't cross process
        # boundaries; they rebuild lazily on first use after unpickling.
        state = self.__dict__.copy()
        state["_native"] = None
        state["_native_failed"] = False
        state["_np_packed"] = None
        state.pop("_np_gate_buffers", None)
        state.pop("_np_packed_buffers", None)
        return state

    def _native_kernel(self):
        """The fused C kernel for this cell, or ``None`` (graceful fallback)."""
        if self._native is not None:
            return self._native
        if self._native_failed:
            return None
        from repro.nn import native

        if not native.native_available():
            self._native_failed = True
            return None
        self._native = native.NativeGRUKernel(self)
        return self._native

    def _packed_np_weights(self) -> "_PackedGateWeights":
        """Pre-packed [r | z | n] gate weights, revalidated by version.

        Weight-delta broadcasts in the persistent worker pool (and
        optimizer steps, and ``load_state_dict``) bump the parameters'
        versions, so the packed copies rebuild lazily on the next call.
        """
        packed = self._np_packed
        versions = (
            self.w_xr.version, self.w_hr.version,
            self.w_xz.version, self.w_hz.version,
            self.w_xn.version, self.w_hn.version,
        )
        if packed is None or packed.versions != versions:
            packed = _PackedGateWeights(self, versions)
            self._np_packed = packed
        return packed

    def _forward_np_packed(
        self, x: np.ndarray, h: np.ndarray, packed: "_PackedGateWeights"
    ) -> np.ndarray:
        """Gate stack over the packed gemms (bit-equal where probed stable)."""
        hidden = self.hidden_size
        batch = x.shape[0]
        buffers = getattr(self, "_np_packed_buffers", None)
        if buffers is None or buffers[0].shape[0] != batch:
            buffers = (
                np.empty((batch, 3 * hidden)),
                np.empty((batch, 3 * hidden)),
                np.empty((batch, hidden)),
                np.empty((batch, hidden)),
                np.empty((batch, hidden)),
                np.empty((batch, hidden)),
            )
            self._np_packed_buffers = buffers
        xa, ha, gate, carry, blend, scratch = buffers
        np.matmul(x, packed.wx, out=xa)
        np.matmul(h, packed.wh, out=ha)
        r, z, n = slice(0, hidden), slice(hidden, 2 * hidden), slice(2 * hidden, None)
        # reset gate -> `gate` (same elementwise sequence as the buffered path)
        np.add(xa[:, r], ha[:, r], out=gate)
        gate += self.b_r.data
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # candidate pre-activation -> `scratch` (needs the reset gate)
        np.multiply(ha[:, n], gate, out=carry)
        np.add(xa[:, n], carry, out=scratch)
        scratch += self.b_n.data
        np.tanh(scratch, out=scratch)
        # update gate -> `gate` (reset no longer needed)
        np.add(xa[:, z], ha[:, z], out=gate)
        gate += self.b_z.data
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # blend: (1 - z) * n + z * h, freshly allocated result
        np.subtract(1.0, gate, out=blend)
        blend *= scratch
        gate *= h
        return blend + gate

    def _forward_np_buffered(
        self, x: np.ndarray, h: np.ndarray, refs: "Optional[_PackedGateWeights]" = None
    ) -> np.ndarray:
        """Hot-path GRU step: identical arithmetic, reused gate buffers."""
        batch = x.shape[0]
        buffers = getattr(self, "_np_gate_buffers", None)
        if buffers is None or buffers[0].shape[0] != batch:
            buffers = tuple(
                np.empty((batch, self.hidden_size)) for _ in range(4)
            )
            self._np_gate_buffers = buffers
        gate, carry, blend, scratch = buffers
        if refs is None:
            refs = self._packed_np_weights()
        w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, w_hn, b_n = refs.refs

        # reset gate -> `gate`
        np.matmul(x, w_xr, out=gate)
        np.matmul(h, w_hr, out=scratch)
        gate += scratch
        gate += b_r
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # candidate pre-activation -> `carry` (needs the reset gate)
        np.matmul(h, w_hn, out=carry)
        carry *= gate
        np.matmul(x, w_xn, out=scratch)
        scratch += carry
        scratch += b_n
        np.tanh(scratch, out=scratch)
        # update gate -> `gate` (reset no longer needed)
        np.matmul(x, w_xz, out=gate)
        np.matmul(h, w_hz, out=carry)
        gate += carry
        gate += b_z
        np.negative(gate, out=gate)
        np.exp(gate, out=gate)
        gate += 1.0
        np.divide(1.0, gate, out=gate)
        # blend: (1 - z) * n + z * h, freshly allocated result
        np.subtract(1.0, gate, out=blend)
        blend *= scratch
        gate *= h
        return blend + gate


# Shared across cells: whether the packed two-gemm path beats the
# buffered six-gemm path for a given (input, hidden, batch) shape class.
# Keyed by shape only — both contenders are bitwise identical whenever
# the stability probe passes, so the pick affects speed, never results.
_PACKED_RACE_RESULTS: dict = {}


class _PackedGateWeights:
    """Cached gate-weight views for the pure-numpy inference path.

    Holds two things, both revalidated against parameter versions by
    :meth:`GRUCell._packed_np_weights`:

    * ``refs`` — direct references to the nine parameter arrays, so the
      hot loop skips nine property lookups per step;
    * ``wx``/``wh`` — column-concatenated [r | z | n] copies feeding the
      packed two-gemm path.

    The packed path is only eligible where a concatenated gemm's column
    blocks are *bitwise* equal to the separate gemms (the repo's
    bit-identity contract).  Probing this box showed that holds for some
    (batch, width) combinations and not others (e.g. H=12 differs while
    8/16/128 match), and the BLAS kernel chosen depends on shape, not
    data — so a one-off probe with synthetic operands per batch size
    decides eligibility, and a one-off timing race then picks whichever
    eligible implementation is actually faster for the shape (wide gemms
    lose to six narrow ones on some BLAS builds).
    """

    def __init__(self, cell: GRUCell, versions: tuple) -> None:
        hidden = cell.hidden_size
        self.versions = versions
        self.refs = (
            cell.w_xr.data, cell.w_hr.data, cell.b_r.data,
            cell.w_xz.data, cell.w_hz.data, cell.b_z.data,
            cell.w_xn.data, cell.w_hn.data, cell.b_n.data,
        )
        self.wx = np.empty((cell.input_size, 3 * hidden))
        self.wh = np.empty((hidden, 3 * hidden))
        for packed, r, z, n in (
            (self.wx, cell.w_xr, cell.w_xz, cell.w_xn),
            (self.wh, cell.w_hr, cell.w_hz, cell.w_hn),
        ):
            packed[:, 0:hidden] = r.data
            packed[:, hidden:2 * hidden] = z.data
            packed[:, 2 * hidden:3 * hidden] = n.data
        self._input_size = cell.input_size
        self._hidden_size = hidden
        self._stable_by_batch: dict = {}

    def use_packed_for(self, cell: GRUCell, batch: int) -> bool:
        if not self.stable_for(batch):
            return False
        # Race outcomes are a perf heuristic (both contenders are
        # bitwise identical once stable_for passed), so the key buckets
        # the batch size by power of two: a rollout batch draining from
        # B=16 to B=1 pays a handful of races, not one per size.
        key = (self._input_size, self._hidden_size, (batch - 1).bit_length())
        wins = _PACKED_RACE_RESULTS.get(key)
        if wins is None:
            wins = self._race(cell, batch)
            _PACKED_RACE_RESULTS[key] = wins
        return wins

    def stable_for(self, batch: int) -> bool:
        stable = self._stable_by_batch.get(batch)
        if stable is None:
            stable = self._probe(batch)
            self._stable_by_batch[batch] = stable
        return stable

    def _probe(self, batch: int) -> bool:
        """Bitwise-compare packed vs separate gemms on synthetic operands.

        Gemm kernels run the same fma schedule for a given shape
        regardless of operand values (selection is by shape/stride), so
        one synthetic probe decides the whole (batch, width) class.
        """
        hidden = self._hidden_size
        rng = np.random.default_rng(0xC0FFEE)
        x = rng.standard_normal((batch, self._input_size))
        h = rng.standard_normal((batch, hidden))
        for operand, packed in ((x, self.wx), (h, self.wh)):
            wide = operand @ packed
            for block in range(3):
                narrow = operand @ np.ascontiguousarray(
                    packed[:, block * hidden:(block + 1) * hidden]
                )
                if not np.array_equal(
                    wide[:, block * hidden:(block + 1) * hidden], narrow
                ):
                    return False
        return True

    def _race(self, cell: GRUCell, batch: int) -> bool:
        """Time both bit-identical implementations once; packed must win
        by a clear margin (ties keep the long-standing buffered path)."""
        import time

        rng = np.random.default_rng(0xBEEF)
        x = rng.standard_normal((batch, self._input_size))
        h = rng.standard_normal((batch, self._hidden_size))
        calls = max(2, min(16, 2048 // max(1, batch * self._hidden_size // 16)))
        best = {"buffered": float("inf"), "packed": float("inf")}
        contenders = (
            ("buffered", lambda: cell._forward_np_buffered(x, h, self)),
            ("packed", lambda: cell._forward_np_packed(x, h, self)),
        )
        for name, fn in contenders:
            fn()  # warm buffers
        for _ in range(2):
            for name, fn in contenders:
                start = time.perf_counter()
                for _ in range(calls):
                    fn()
                best[name] = min(best[name], time.perf_counter() - start)
        return best["packed"] < 0.95 * best["buffered"]


class GRU(Module):
    """Unrolls a :class:`GRUCell` over a sequence.

    Input shape is (T, input_size) for a single sequence or
    (T, B, input_size) for a batch of sequences; the output is the stack
    of hidden states with matching leading dimensions.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def initial_state(self, batch_size: Optional[int] = None) -> Tensor:
        return self.cell.initial_state(batch_size)

    def forward(
        self, sequence: Tensor, h0: Optional[Tensor] = None
    ) -> Tuple[Tensor, Tensor]:
        """Return (all hidden states stacked over time, final hidden state)."""
        if not isinstance(sequence, Tensor):
            sequence = Tensor(sequence)
        if sequence.ndim not in (2, 3):
            raise ShapeError(
                f"GRU expects (T, D) or (T, B, D) input, got shape {sequence.shape}"
            )
        steps = sequence.shape[0]
        batch = sequence.shape[1] if sequence.ndim == 3 else None
        h = h0 if h0 is not None else self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            h = self.cell(sequence[t], h)
            outputs.append(h)
        stacked = Tensor.stack(outputs, axis=0)
        return stacked, h
