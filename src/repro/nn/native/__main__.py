"""Build the fused GRU kernel ahead of first use.

``PYTHONPATH=src python -m repro.nn.native`` compiles the shared object
into the kernel cache (CI calls this so test runs don't pay the compile)
and prints its path; exits non-zero when no compiler can produce it.
"""

from repro.nn.native import build

if __name__ == "__main__":
    print(build())
