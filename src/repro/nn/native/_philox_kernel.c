/* Fused Philox4x32-10 idle sampler for the counter-based RNG family.
 *
 * One call draws every multi-core (slot, level) cell's uniform from the
 * lane's (episode, cursor) counter stream and inverts the Poisson CDF on
 * the cells whose uniform clears the k=0 term, writing the clamped idle
 * counts.  This replaces ~30 tiny-array numpy dispatches per simulator
 * interval with one C call, which is what makes the Philox family
 * competitive at small batch sizes.
 *
 * BIT-EXACTNESS CONTRACT: unlike the GRU kernel (allclose budget), this
 * file must reproduce the pure-numpy sampler bit for bit — Philox golden
 * traces are pinned against the numpy path and native availability must
 * not change trajectories.  Everything here is exactly-rounded IEEE
 * arithmetic in the numpy path's operation order:
 *
 *   - the keystream is pure integer math;
 *   - the double construction (high * 2^26 + low) * 2^-53 is exact;
 *   - exp(-lam) is NOT computed here (numpy's exp may differ from libm
 *     by an ulp) — callers pass the numpy-computed term matrix in;
 *   - the inversion loop performs the same divide/multiply/add sequence
 *     per element as rng._poisson_from_uniform, with the same global
 *     iteration cap over the firing cells.
 *
 * The build therefore must NOT use -ffast-math/-funsafe-math flags, and
 * uses -ffp-contract=off so no FMA contraction changes roundings.  As a
 * final guard, rng._native_idle_kernel() probes the compiled sampler
 * against the numpy reference at load time and disables it on any
 * mismatch, so a miscompiled build degrades to the numpy path instead of
 * corrupting pinned streams.
 */

#include <math.h>
#include <stdint.h>

#define PHILOX_M0 0xD2511F53u
#define PHILOX_M1 0xCD9E8D57u
#define PHILOX_W0 0x9E3779B9u
#define PHILOX_W1 0xBB67AE85u
#define PHILOX_ROUNDS 10

/* (high 27 bits) * 2^26 + (low 26 bits), scaled by 2^-53: exact, same
 * construction as rng._philox_uniforms. */
static double philox_uniform(uint64_t episode, uint64_t counter,
                             const uint32_t *kr0, const uint32_t *kr1) {
    uint32_t c0 = (uint32_t)(counter & 0xFFFFFFFFu);
    uint32_t c1 = (uint32_t)(counter >> 32);
    uint32_t c2 = (uint32_t)(episode & 0xFFFFFFFFu);
    uint32_t c3 = (uint32_t)(episode >> 32);
    for (int r = 0; r < PHILOX_ROUNDS; r++) {
        uint64_t p0 = (uint64_t)PHILOX_M0 * c0;
        uint64_t p1 = (uint64_t)PHILOX_M1 * c2;
        c0 = (uint32_t)(p1 >> 32) ^ c1 ^ kr0[r];
        c1 = (uint32_t)(p1 & 0xFFFFFFFFu);
        c2 = (uint32_t)(p0 >> 32) ^ c3 ^ kr1[r];
        c3 = (uint32_t)(p0 & 0xFFFFFFFFu);
    }
    double high = (double)(c0 >> 5);
    double low = (double)(c1 >> 6);
    return (high * 67108864.0 + low) * (1.0 / 9007199254740992.0);
}

/* Idle sampling for n lanes x `levels` levels.
 *
 * Inputs: per-lane episode ids and start cursors; per-cell core counts,
 * lam = idle_rate * count, and term = exp(-lam) (numpy-computed).  Cells
 * with count <= 1 draw nothing, exactly like the scalar simulator skip;
 * eligible cells consume consecutive cursor values in level order.
 *
 * Outputs: idle[cell] = min(poisson_inverse(u, lam), count - 1) for
 * firing cells, 0 elsewhere (fully written); ndraws[i] = uniforms lane i
 * consumed (callers advance cursors by this); uscratch is caller-provided
 * workspace of n*levels doubles.  Returns the number of firing cells.
 */
long repro_philox_idle(const uint64_t *episodes, const uint64_t *cursors,
                       uint64_t *ndraws, const int64_t *counts,
                       const double *lam, const double *term, int64_t *idle,
                       double *uscratch, uint64_t key0, uint64_t key1,
                       long n, long levels) {
    uint32_t kr0[PHILOX_ROUNDS], kr1[PHILOX_ROUNDS];
    for (int r = 0; r < PHILOX_ROUNDS; r++) {
        kr0[r] = (uint32_t)(key0 + (uint64_t)r * PHILOX_W0);
        kr1[r] = (uint32_t)(key1 + (uint64_t)r * PHILOX_W1);
    }
    long fired = 0;
    double max_lam = 0.0;
    for (long i = 0; i < n; i++) {
        uint64_t rank = 0;
        for (long v = 0; v < levels; v++) {
            long cell = i * levels + v;
            idle[cell] = 0;
            uscratch[cell] = -1.0; /* sentinel: cell did not fire */
            if (counts[cell] > 1) {
                double u =
                    philox_uniform(episodes[i], cursors[i] + rank, kr0, kr1);
                rank++;
                if (u >= term[cell]) {
                    uscratch[cell] = u;
                    fired++;
                    if (lam[cell] > max_lam) {
                        max_lam = lam[cell];
                    }
                }
            }
        }
        ndraws[i] = rank;
    }
    if (fired == 0) {
        return 0;
    }
    /* Same global cap as _poisson_from_uniform: max lam over the firing
     * subset (sqrt is correctly rounded, the cast truncates — both match
     * Python's float arithmetic and int()). */
    long cap = (long)(max_lam + 10.0 * sqrt(max_lam) + 64.0);
    for (long cell = 0; cell < n * levels; cell++) {
        double u = uscratch[cell];
        if (u < 0.0) {
            continue;
        }
        double lam_c = lam[cell];
        double p = term[cell];
        double cdf = p;
        long k = 0;
        /* Transcription of `while u >= cdf: k += 1; p *= lam/k; cdf += p`
         * — per element the numpy loop runs this exact rounding
         * sequence, so k matches bitwise. */
        while (u >= cdf && k < cap) {
            k++;
            p *= lam_c / (double)k;
            cdf += p;
        }
        int64_t clamp = counts[cell] - 1;
        idle[cell] = (k < clamp) ? k : clamp;
    }
    return fired;
}
