/* Fused GRU micro-kernel for the rollout/serving hot path.
 *
 * One pass computes the full gate stack (both gemms, sigmoid/tanh gates,
 * hidden blend) and optionally the policy/value heads with log-softmax,
 * over caller-preallocated buffers.  Weights arrive pre-transposed and
 * packed by the Python wrapper:
 *
 *   wx    (D, Np)  input-to-gates,  gate blocks [r | z | n], columns
 *                  zero-padded to Np = roundup(3H, 16);
 *   wh    (H, Np)  hidden-to-gates, same layout;
 *   bias  (Np)     summed gate biases [b_r | b_z | b_n], zero-padded;
 *   whead ((A+1), H)  policy head rows then the value head row;
 *   bhead (A+1)    policy biases then the value bias.
 *
 * The inner gemm keeps a 4x16 accumulator tile in registers via GCC
 * vector extensions (plain double[16] locals spill to the stack, which
 * measured ~3x slower on AVX-512); the generic scalar fallback compiles
 * everywhere else.  N must be a multiple of 16 — guaranteed by the
 * packer's zero padding, so no edge paths exist in the hot loop.
 */
#include <math.h>
#include <string.h>

#if defined(__GNUC__) || defined(__clang__)
typedef double v8d __attribute__((vector_size(64), aligned(8)));
#define HAVE_V8D 1
#endif

/* C (B,N) = A (B,K) @ W (K,N) + bias (N).  N % 16 == 0; bias may be NULL. */
static void gemm_bias(const double* restrict a, const double* restrict w,
                      const double* restrict bias, double* restrict c,
                      long B, long K, long N)
{
#ifdef HAVE_V8D
    long i0 = 0;
    for (; i0 + 4 <= B; i0 += 4) {
        const double* a0 = a + (i0 + 0) * K;
        const double* a1 = a + (i0 + 1) * K;
        const double* a2 = a + (i0 + 2) * K;
        const double* a3 = a + (i0 + 3) * K;
        for (long j0 = 0; j0 < N; j0 += 16) {
            v8d c00, c01, c10, c11, c20, c21, c30, c31;
            if (bias) {
                v8d b0, b1;
                memcpy(&b0, bias + j0, 64); memcpy(&b1, bias + j0 + 8, 64);
                c00 = b0; c01 = b1; c10 = b0; c11 = b1;
                c20 = b0; c21 = b1; c30 = b0; c31 = b1;
            } else {
                c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = (v8d){0};
            }
            for (long k = 0; k < K; k++) {
                v8d w0, w1;
                memcpy(&w0, w + k * N + j0, 64);
                memcpy(&w1, w + k * N + j0 + 8, 64);
                const double v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
                c00 += v0 * w0; c01 += v0 * w1;
                c10 += v1 * w0; c11 += v1 * w1;
                c20 += v2 * w0; c21 += v2 * w1;
                c30 += v3 * w0; c31 += v3 * w1;
            }
            memcpy(c + (i0 + 0) * N + j0, &c00, 64); memcpy(c + (i0 + 0) * N + j0 + 8, &c01, 64);
            memcpy(c + (i0 + 1) * N + j0, &c10, 64); memcpy(c + (i0 + 1) * N + j0 + 8, &c11, 64);
            memcpy(c + (i0 + 2) * N + j0, &c20, 64); memcpy(c + (i0 + 2) * N + j0 + 8, &c21, 64);
            memcpy(c + (i0 + 3) * N + j0, &c30, 64); memcpy(c + (i0 + 3) * N + j0 + 8, &c31, 64);
        }
    }
    for (; i0 < B; i0++) {
        const double* a0 = a + i0 * K;
        for (long j0 = 0; j0 < N; j0 += 16) {
            v8d c00, c01;
            if (bias) { memcpy(&c00, bias + j0, 64); memcpy(&c01, bias + j0 + 8, 64); }
            else { c00 = c01 = (v8d){0}; }
            for (long k = 0; k < K; k++) {
                v8d w0, w1;
                memcpy(&w0, w + k * N + j0, 64);
                memcpy(&w1, w + k * N + j0 + 8, 64);
                const double v0 = a0[k];
                c00 += v0 * w0; c01 += v0 * w1;
            }
            memcpy(c + i0 * N + j0, &c00, 64); memcpy(c + i0 * N + j0 + 8, &c01, 64);
        }
    }
#else
    for (long i = 0; i < B; i++) {
        double* ci = c + i * N;
        if (bias) memcpy(ci, bias, N * sizeof(double));
        else memset(ci, 0, N * sizeof(double));
        const double* ai = a + i * K;
        for (long k = 0; k < K; k++) {
            const double v = ai[k];
            const double* restrict wr = w + k * N;
            for (long j = 0; j < N; j++) ci[j] += v * wr[j];
        }
    }
#endif
}

/* Gate stack for one batch row: acc/hacc hold the x- and h-gemm results
 * (gate blocks [r | z | n]); writes the blended hidden state to ho. */
static void gru_gates_row(double* restrict ab, const double* restrict hb,
                          const double* restrict hin, double* restrict ho,
                          long H)
{
    for (long j = 0; j < 2 * H; j++) ab[j] += hb[j];
    for (long j = 0; j < 2 * H; j++) ab[j] = 1.0 / (1.0 + exp(-ab[j]));
    for (long j = 0; j < H; j++) ab[2 * H + j] += ab[j] * hb[2 * H + j];
    for (long j = 0; j < H; j++) ab[2 * H + j] = tanh(ab[2 * H + j]);
    for (long j = 0; j < H; j++)
        ho[j] = (1.0 - ab[H + j]) * ab[2 * H + j] + ab[H + j] * hin[j];
}

/* GRU step only (drop-in for GRUCell.forward_np).  scratch is (B, 2*Np). */
void repro_gru_forward(
    const double* restrict x, const double* restrict h,
    const double* restrict wx, const double* restrict wh,
    const double* restrict bias,
    double* restrict h_out, double* restrict scratch,
    long B, long D, long H, long Np)
{
    double* restrict acc = scratch;            /* (B, Np) */
    double* restrict hacc = scratch + B * Np;  /* (B, Np) */
    gemm_bias(x, wx, bias, acc, B, D, Np);
    gemm_bias(h, wh, 0, hacc, B, H, Np);
    for (long b = 0; b < B; b++)
        gru_gates_row(acc + b * Np, hacc + b * Np, h + b * H, h_out + b * H, H);
}

/* Fused GRU + policy/value heads + log-softmax (drop-in for the policy's
 * forward_np / act_batch forward).  A <= 256.  scratch is (B, 2*Np). */
void repro_gru_policy_forward(
    const double* restrict x, const double* restrict h,
    const double* restrict wx, const double* restrict wh,
    const double* restrict bias,
    const double* restrict whead, const double* restrict bhead,
    double* restrict h_out, double* restrict logits,
    double* restrict log_probs, double* restrict probs,
    double* restrict values, double* restrict scratch,
    long B, long D, long H, long A, long Np)
{
    double* restrict acc = scratch;            /* (B, Np) */
    double* restrict hacc = scratch + B * Np;  /* (B, Np) */

    gemm_bias(x, wx, bias, acc, B, D, Np);
    gemm_bias(h, wh, 0, hacc, B, H, Np);

    for (long b = 0; b < B; b++) {
        const double* restrict hin = h + b * H;
        double* restrict ho = h_out + b * H;
        gru_gates_row(acc + b * Np, hacc + b * Np, hin, ho, H);
        /* Heads: A policy rows then the value row, while ho is hot. */
        double m = -1e308;
        double lg[256];
        for (long a = 0; a <= A; a++) {
            const double* restrict wr = whead + a * H;
            double s = bhead[a];
            for (long j = 0; j < H; j++) s += ho[j] * wr[j];
            if (a < A) { lg[a] = s; if (s > m) m = s; }
            else values[b] = s;
        }
        double lse = 0.0;
        for (long a = 0; a < A; a++) lse += exp(lg[a] - m);
        lse = log(lse);
        double* restrict lo = logits + b * A;
        double* restrict lp = log_probs + b * A;
        double* restrict pp = probs + b * A;
        double ps = 0.0;
        for (long a = 0; a < A; a++) {
            lo[a] = lg[a];
            lp[a] = lg[a] - m - lse;
            pp[a] = exp(lp[a]);
            ps += pp[a];
        }
        for (long a = 0; a < A; a++) pp[a] /= ps;
    }
}
