"""Compile-at-first-use loader for the fused GRU micro-kernel.

The C source lives next to this module and is compiled into a per-user
cache directory the first time a native kernel is requested (or when
:func:`build` is invoked explicitly, e.g. from CI).  Everything degrades
gracefully: no compiler, a failed compile, or ``REPRO_DISABLE_NATIVE=1``
simply makes :func:`native_available` return ``False`` and callers fall
back to the pure-numpy paths — the native kernel is an opt-in
acceleration, never a correctness dependency.

Numerical contract: the fused kernel computes the same GRU/head
arithmetic in a different summation order than the numpy path, so its
results agree to ~1e-12 relative (verified by the differential harness)
but are **not** bit-identical.  Configurations that must replay the
pinned golden traces keep ``kernel="numpy"``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

_SOURCE = Path(__file__).with_name("_gru_kernel.c")
_PHILOX_SOURCE = Path(__file__).with_name("_philox_kernel.c")
_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_UINT64_P = ctypes.POINTER(ctypes.c_uint64)
_INT64_P = ctypes.POINTER(ctypes.c_int64)

# Flag sets tried in order; the first compile that succeeds wins.  The
# leading set relies on the kernel using no unsafe constructs (finite
# gate pre-activations only feed exp/tanh after clamping by sigmoid's
# range) — the conservative sets keep slower boxes working.
_FLAG_SETS = (
    # The unsafe-math trio is what lets GCC vectorize the exp/tanh gate
    # loops through libmvec (measured ~2x on the whole fused step); the
    # kernel feeds those functions finite pre-activations only, and the
    # native path's contract is allclose, not bit-identity, so the
    # reassociation freedom is within budget.
    ["-O3", "-march=native", "-mprefer-vector-width=512", "-fno-math-errno",
     "-ffinite-math-only", "-funsafe-math-optimizations", "-fno-trapping-math",
     "-fPIC", "-shared"],
    ["-O3", "-fno-math-errno", "-fPIC", "-shared"],
    ["-O2", "-fPIC", "-shared"],
)

# The Philox sampler's contract is BIT-IDENTITY with the numpy streams
# (golden traces are pinned on them), so its translation unit must not
# see any unsafe-math flag and disables FP contraction — an FMA changes
# roundings.  The contract-free fallback set exists for compilers without
# -ffp-contract; rng's load-time self-check rejects any build that
# deviates, so a reordering compiler degrades to numpy, never to wrong
# streams.
_PHILOX_FLAG_SETS = (
    ["-O2", "-ffp-contract=off", "-fPIC", "-shared"],
    ["-O2", "-fPIC", "-shared"],
)

_lib: Optional[ctypes.CDLL] = None
_load_failed: Optional[str] = None
_philox_lib: Optional[ctypes.CDLL] = None
_philox_load_failed: Optional[str] = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def _compile(
    source: Path,
    cache: Path,
    flag_sets=_FLAG_SETS,
    stem: str = "gru_kernel",
) -> Path:
    # Compile and link are SEPARATE steps on purpose: passing any
    # unsafe-math flag to the *link* makes GCC pull in crtfastmath.o,
    # whose load-time constructor flips the process-wide FTZ/DAZ bits —
    # dlopen'ing the kernel would silently change denormal arithmetic in
    # every numpy op afterwards.  Optimization flags only ever apply to
    # the object-file step; the link step is flag-free.
    text = source.read_bytes()
    compilers = [c for c in (os.environ.get("CC"), "cc", "gcc", "clang") if c]
    errors = []
    for compiler in compilers:
        for flags in flag_sets:
            compile_flags = [f for f in flags if f != "-shared"]
            tag = hashlib.sha256(
                text + repr((compiler, flags, "split-link")).encode()
            ).hexdigest()[:16]
            target = cache / f"{stem}_{tag}.so"
            if target.exists():
                return target
            cache.mkdir(parents=True, exist_ok=True)
            fd, tmp_obj = tempfile.mkstemp(suffix=".o", dir=cache)
            os.close(fd)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
            os.close(fd)
            steps = (
                [compiler, *compile_flags, "-c", "-o", tmp_obj, str(source)],
                [compiler, "-shared", "-o", tmp, tmp_obj, "-lm"],
            )
            failed = None
            for cmd in steps:
                try:
                    proc = subprocess.run(
                        cmd, capture_output=True, text=True, timeout=120
                    )
                except (OSError, subprocess.TimeoutExpired) as exc:
                    failed = f"{compiler}: {exc}"
                    break
                if proc.returncode != 0:
                    failed = f"{' '.join(cmd)}: {proc.stderr.strip()[:500]}"
                    break
            os.unlink(tmp_obj)
            if failed is not None:
                errors.append(failed)
                os.unlink(tmp)
                continue
            os.replace(tmp, target)  # atomic: concurrent builders agree
            return target
    raise RuntimeError(
        f"no compiler produced the {stem}; tried:\n" + "\n".join(errors)
    )


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    # ctypes defaults integer args to c_int — explicit signatures are
    # load-bearing (c_long mismatches segfault, they don't error).
    lib.repro_gru_forward.restype = None
    lib.repro_gru_forward.argtypes = [_DOUBLE_P] * 7 + [ctypes.c_long] * 4
    lib.repro_gru_policy_forward.restype = None
    lib.repro_gru_policy_forward.argtypes = [_DOUBLE_P] * 13 + [ctypes.c_long] * 5
    return lib


def _bind_philox(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_philox_idle.restype = ctypes.c_long
    lib.repro_philox_idle.argtypes = [
        _UINT64_P, _UINT64_P, _UINT64_P,  # episodes, cursors, ndraws
        _INT64_P, _DOUBLE_P, _DOUBLE_P,   # counts, lam, term
        _INT64_P, _DOUBLE_P,              # idle, uscratch
        ctypes.c_uint64, ctypes.c_uint64, ctypes.c_long, ctypes.c_long,
    ]
    return lib


def build(force: bool = False) -> Path:
    """Compile the kernels now (CI hook); returns the GRU shared-object path."""
    cache = _cache_dir()
    if force:
        for stale in cache.glob("gru_kernel_*.so"):
            stale.unlink()
        for stale in cache.glob("philox_kernel_*.so"):
            stale.unlink()
    _compile(_PHILOX_SOURCE, cache, _PHILOX_FLAG_SETS, "philox_kernel")
    return _compile(_SOURCE, cache)


def load_kernel() -> Optional[ctypes.CDLL]:
    """The bound shared library, or ``None`` when native is unavailable."""
    global _lib, _load_failed
    if os.environ.get("REPRO_DISABLE_NATIVE") == "1":
        return None
    if _lib is not None:
        return _lib
    if _load_failed is not None:
        return None
    try:
        _lib = _bind(ctypes.CDLL(str(_compile(_SOURCE, _cache_dir()))))
    except (RuntimeError, OSError) as exc:
        _load_failed = str(exc)
        return None
    return _lib


def load_philox_kernel() -> Optional[ctypes.CDLL]:
    """The strict-float Philox sampler library, or ``None`` if unavailable.

    Gated by the same ``REPRO_DISABLE_NATIVE`` switch as the GRU kernel.
    Callers (``repro.utils.rng``) additionally run a bit-identity
    self-check before trusting it.
    """
    global _philox_lib, _philox_load_failed
    if os.environ.get("REPRO_DISABLE_NATIVE") == "1":
        return None
    if _philox_lib is not None:
        return _philox_lib
    if _philox_load_failed is not None:
        return None
    try:
        _philox_lib = _bind_philox(
            ctypes.CDLL(
                str(
                    _compile(
                        _PHILOX_SOURCE,
                        _cache_dir(),
                        _PHILOX_FLAG_SETS,
                        "philox_kernel",
                    )
                )
            )
        )
    except (RuntimeError, OSError) as exc:
        _philox_load_failed = str(exc)
        return None
    return _philox_lib


def native_available() -> bool:
    return load_kernel() is not None


def native_unavailable_reason() -> Optional[str]:
    if os.environ.get("REPRO_DISABLE_NATIVE") == "1":
        return "REPRO_DISABLE_NATIVE=1"
    load_kernel()
    return _load_failed


def _ptr(array: np.ndarray):
    return array.ctypes.data_as(_DOUBLE_P)


def _padded_width(hidden: int) -> int:
    return ((3 * hidden + 15) // 16) * 16


class NativeGRUKernel:
    """Packed-weight wrapper for the GRU-only entry point.

    Owns the packed ``wx``/``wh``/``bias`` copies for one
    :class:`~repro.nn.rnn.GRUCell` and revalidates them against the
    cell's parameter versions on every call, so weight updates (optimizer
    steps, ``load_state_dict``, worker-pool delta broadcasts) repack
    lazily without any explicit invalidation hook.

    Repacking writes *in place* into packed arrays allocated once: the
    per-batch workspaces below cache raw ctypes pointers into them
    (pointer extraction measured ~2us per array per call, which at 13
    arrays rivalled the kernel itself), and in-place repacks keep every
    cached pointer valid.
    """

    def __init__(self, cell) -> None:
        self._cell = cell
        self._lib = load_kernel()
        if self._lib is None:
            raise RuntimeError(
                f"native kernel unavailable: {native_unavailable_reason()}"
            )
        hidden = cell.hidden_size
        self._padded = _padded_width(hidden)
        self._wx = np.zeros((cell.input_size, self._padded))
        self._wh = np.zeros((hidden, self._padded))
        self._bias = np.zeros(self._padded)
        self._versions: Optional[Tuple[int, ...]] = None
        self._workspaces: dict = {}
        self._repack()

    def _parameter_versions(self) -> Tuple[int, ...]:
        cell = self._cell
        return (
            cell.w_xr.version, cell.w_hr.version, cell.b_r.version,
            cell.w_xz.version, cell.w_hz.version, cell.b_z.version,
            cell.w_xn.version, cell.w_hn.version, cell.b_n.version,
        )

    def _repack(self) -> None:
        cell = self._cell
        hidden = cell.hidden_size
        for packed, r, z, n in (
            (self._wx, cell.w_xr, cell.w_xz, cell.w_xn),
            (self._wh, cell.w_hr, cell.w_hz, cell.w_hn),
        ):
            packed[:, 0:hidden] = r.data
            packed[:, hidden:2 * hidden] = z.data
            packed[:, 2 * hidden:3 * hidden] = n.data
        self._bias[0:hidden] = cell.b_r.data
        self._bias[hidden:2 * hidden] = cell.b_z.data
        self._bias[2 * hidden:3 * hidden] = cell.b_n.data
        self._versions = self._parameter_versions()

    def _ensure_packed(self) -> None:
        if self._versions != self._parameter_versions():
            self._repack()

    def _workspace(self, batch: int) -> "_GRUWorkspace":
        workspace = self._workspaces.get(batch)
        if workspace is None:
            workspace = _GRUWorkspace(self, batch)
            self._workspaces[batch] = workspace
        return workspace

    def forward(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        self._ensure_packed()
        workspace = self._workspace(h.shape[0])
        np.copyto(workspace.x, x)
        np.copyto(workspace.h, h)
        self._lib.repro_gru_forward(*workspace.args)
        return workspace.h_out.copy()


class _GRUWorkspace:
    """Staging buffers + prebuilt ctypes args for one batch size."""

    def __init__(self, kernel: NativeGRUKernel, batch: int) -> None:
        cell = kernel._cell
        self.x = np.empty((batch, cell.input_size))
        self.h = np.empty((batch, cell.hidden_size))
        self.h_out = np.empty((batch, cell.hidden_size))
        self.scratch = np.empty((batch, 2 * kernel._padded))
        self.args = (
            _ptr(self.x), _ptr(self.h),
            _ptr(kernel._wx), _ptr(kernel._wh), _ptr(kernel._bias),
            _ptr(self.h_out), _ptr(self.scratch),
            batch, cell.input_size, cell.hidden_size, kernel._padded,
        )


class NativeGRUPolicyKernel:
    """Packed-weight wrapper for the fused GRU + heads entry point.

    Packs the policy head and value head into one ``(A+1, H)`` row block
    behind the GRU gate weights; one call returns logits, log-probs,
    normalised probabilities, values and the next hidden state for the
    whole batch.  Inputs are staged into per-batch-size workspaces with
    prebuilt argument lists; outputs are copied out fresh (they escape
    into trajectories and session tables).
    """

    def __init__(self, policy) -> None:
        self._policy = policy
        self._gru = NativeGRUKernel(policy.gru)
        self._lib = self._gru._lib
        num_actions = policy.config.num_actions
        if num_actions > 256:
            raise RuntimeError(
                f"fused kernel supports at most 256 actions, got {num_actions}"
            )
        hidden = policy.config.hidden_size
        self._whead = np.zeros((num_actions + 1, hidden))
        self._bhead = np.zeros(num_actions + 1)
        self._versions: Optional[Tuple[int, ...]] = None
        self._workspaces: dict = {}
        self._repack_heads()

    def _head_versions(self) -> Tuple[int, ...]:
        policy = self._policy
        return (
            policy.policy_head.weight.version, policy.policy_head.bias.version,
            policy.value_head.weight.version, policy.value_head.bias.version,
        )

    def _repack_heads(self) -> None:
        policy = self._policy
        num_actions = policy.config.num_actions
        self._whead[:num_actions] = policy.policy_head.weight.data.T
        self._whead[num_actions:] = policy.value_head.weight.data.T
        self._bhead[:num_actions] = policy.policy_head.bias.data
        self._bhead[num_actions:] = policy.value_head.bias.data
        self._versions = self._head_versions()

    def _workspace(self, batch: int) -> "_PolicyWorkspace":
        workspace = self._workspaces.get(batch)
        if workspace is None:
            workspace = _PolicyWorkspace(self, batch)
            self._workspaces[batch] = workspace
        return workspace

    def forward(
        self, observations: np.ndarray, hiddens: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(logits, log_probs, probs, values, next_hiddens)``."""
        self._gru._ensure_packed()
        if self._versions != self._head_versions():
            self._repack_heads()
        workspace = self._workspace(hiddens.shape[0])
        np.copyto(workspace.x, observations)
        np.copyto(workspace.h, hiddens)
        self._lib.repro_gru_policy_forward(*workspace.args)
        return (
            workspace.logits.copy(),
            workspace.log_probs.copy(),
            workspace.probs.copy(),
            workspace.values.copy(),
            workspace.h_out.copy(),
        )


class _PolicyWorkspace:
    """Staging buffers + prebuilt ctypes args for one batch size."""

    def __init__(self, kernel: NativeGRUPolicyKernel, batch: int) -> None:
        policy = kernel._policy
        gru = kernel._gru
        obs_dim = policy.config.observation_dim
        hidden = policy.config.hidden_size
        num_actions = policy.config.num_actions
        self.x = np.empty((batch, obs_dim))
        self.h = np.empty((batch, hidden))
        self.h_out = np.empty((batch, hidden))
        self.logits = np.empty((batch, num_actions))
        self.log_probs = np.empty((batch, num_actions))
        self.probs = np.empty((batch, num_actions))
        self.values = np.empty(batch)
        self.scratch = np.empty((batch, 2 * gru._padded))
        self.args = (
            _ptr(self.x), _ptr(self.h),
            _ptr(gru._wx), _ptr(gru._wh), _ptr(gru._bias),
            _ptr(kernel._whead), _ptr(kernel._bhead),
            _ptr(self.h_out), _ptr(self.logits), _ptr(self.log_probs),
            _ptr(self.probs), _ptr(self.values), _ptr(self.scratch),
            batch, obs_dim, hidden, num_actions, gru._padded,
        )


class NativePhiloxIdleKernel:
    """ctypes wrapper for the fused Philox idle sampler.

    Stateless between calls apart from per-shape output workspaces; the
    keystream key travels with each call, so one wrapper serves every
    :class:`~repro.utils.rng.PhiloxStreams` instance in the process.
    Returned arrays are workspace views, valid until the next call with
    the same shape — callers copy (or scatter) before returning.
    """

    def __init__(self) -> None:
        lib = load_philox_kernel()
        if lib is None:
            raise RuntimeError(
                f"philox sampler unavailable: {_philox_load_failed}"
            )
        self._lib = lib
        self._workspaces: dict = {}

    def _workspace(self, n: int, levels: int) -> "_PhiloxIdleWorkspace":
        workspace = self._workspaces.get((n, levels))
        if workspace is None:
            workspace = _PhiloxIdleWorkspace(n, levels)
            self._workspaces[(n, levels)] = workspace
        return workspace

    def sample(
        self,
        episodes: np.ndarray,
        cursors: np.ndarray,
        counts: np.ndarray,
        lam: np.ndarray,
        term: np.ndarray,
        key0: int,
        key1: int,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Returns ``(idle_draws, ndraws, fired)`` for the given lanes.

        ``episodes``/``cursors`` are per-lane uint64 vectors; ``counts``
        (int64), ``lam`` and ``term = exp(-lam)`` are ``(n, levels)``
        cell matrices.  ``idle_draws`` holds the clamped Poisson draws
        (zero where the cell didn't fire), ``ndraws`` the uniforms each
        lane consumed.
        """
        n, levels = counts.shape
        workspace = self._workspace(n, levels)
        np.copyto(workspace.episodes, episodes)
        np.copyto(workspace.cursors, cursors)
        np.copyto(workspace.counts, counts)
        np.copyto(workspace.lam, lam)
        np.copyto(workspace.term, term)
        fired = self._lib.repro_philox_idle(*workspace.args, key0, key1, n, levels)
        return workspace.idle, workspace.ndraws, int(fired)


class _PhiloxIdleWorkspace:
    """Staging/output buffers + cached pointers for one (lanes, levels).

    Pointer extraction (~1-2us per array per call) rivals the sampler
    itself at rollout batch sizes, so inputs are staged into fixed
    buffers whose ctypes pointers are built once; only the two key words
    travel per call.
    """

    def __init__(self, n: int, levels: int) -> None:
        self.episodes = np.empty(n, dtype=np.uint64)
        self.cursors = np.empty(n, dtype=np.uint64)
        self.counts = np.empty((n, levels), dtype=np.int64)
        self.lam = np.empty((n, levels))
        self.term = np.empty((n, levels))
        self.idle = np.empty((n, levels), dtype=np.int64)
        self.ndraws = np.empty(n, dtype=np.uint64)
        self.uscratch = np.empty((n, levels))
        self.args = (
            self.episodes.ctypes.data_as(_UINT64_P),
            self.cursors.ctypes.data_as(_UINT64_P),
            self.ndraws.ctypes.data_as(_UINT64_P),
            self.counts.ctypes.data_as(_INT64_P),
            _ptr(self.lam),
            _ptr(self.term),
            self.idle.ctypes.data_as(_INT64_P),
            _ptr(self.uscratch),
        )
